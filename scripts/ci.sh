#!/usr/bin/env bash
# CI gauntlet: build, test, formatting, lints. Run from anywhere; exits
# non-zero on the first failure. Pass extra cargo flags (e.g. --offline)
# via CARGO_FLAGS.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

# Smoke artifacts are gitignored; remove them even when a gate between
# their creation and the explicit cleanup fails.
cleanup() {
    rm -f results/ci-smoke.json results/ci-smoke.trace.jsonl \
        results/ci-smoke.trace.stream.json
}
trap cleanup EXIT

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release ${CARGO_FLAGS}
run cargo test -q ${CARGO_FLAGS}
run cargo fmt --check
run cargo clippy --workspace --all-targets ${CARGO_FLAGS} -- -D warnings

# Documentation gate: every intra-doc link must resolve and every public
# item stay documented; warnings are promoted to errors.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ${CARGO_FLAGS}

# Concurrency gates: the workspace lint (raw-lock ban, telemetry phase
# vocabulary, no unwrap in live hot paths) must be clean, and a bounded
# model-check over the scaled-down headend scenarios must find every
# seeded bug and none in the fixed protocols. Fixed seed, bounded
# schedules: deterministic and well under 30 s.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-check --bin oddci-check -- lint
run cargo run -q --release ${CARGO_FLAGS} -p oddci-check --bin oddci-check -- \
    model --seed 11 --schedules 400

# Streamed-trace smoke: run one small scenario with the streaming sink
# attached, then let schema_check validate the streamed JSONL + Chrome
# artifacts alongside the metrics envelopes.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    --scenario small --seed 7 \
    --out results/ci-smoke.json --stream results/ci-smoke.trace.jsonl
run cargo run -q --release ${CARGO_FLAGS} -p oddci-bench --bin schema_check

echo "==> CI green"
