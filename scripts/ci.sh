#!/usr/bin/env bash
# CI gauntlet: build, test, formatting, lints. Run from anywhere; exits
# non-zero on the first failure. Pass extra cargo flags (e.g. --offline)
# via CARGO_FLAGS.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

# Smoke artifacts are gitignored; remove them even when a gate between
# their creation and the explicit cleanup fails. PNA processes from the
# wire smoke are reaped too, so a failed headend never leaks children.
PNA_PIDS=""
HEADEND_PIDS=""
cleanup() {
    for pid in ${PNA_PIDS} ${HEADEND_PIDS}; do
        kill "${pid}" 2>/dev/null || true
    done
    rm -f results/ci-smoke.json results/ci-smoke.trace.jsonl \
        results/ci-smoke.trace.stream.json results/ci-wire-smoke.json \
        results/ci-smoke-bin.json results/ci-smoke-bin.trace.bin \
        results/ci-smoke-bin.trace.jsonl results/ci-smoke-bin.trace.stream.json \
        results/ci-top.json results/ci-help.txt results/ci-autoscale.json \
        results/ci-failover-primary.json results/ci-failover-standby.json \
        results/ci-failover-pna-201.json results/ci-failover-pna-202.json \
        results/ci-failover-pna-203.json
    rm -rf results/ci-failover-snap
}
trap cleanup EXIT

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release ${CARGO_FLAGS}
run cargo test -q ${CARGO_FLAGS}
run cargo fmt --check
run cargo clippy --workspace --all-targets ${CARGO_FLAGS} -- -D warnings

# Documentation gate: every intra-doc link must resolve and every public
# item stay documented; warnings are promoted to errors.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ${CARGO_FLAGS}

# Concurrency gates: the workspace lint (raw-lock ban, telemetry phase
# vocabulary, no unwrap in live hot paths) must be clean, and a bounded
# model-check over the scaled-down headend scenarios must find every
# seeded bug and none in the fixed protocols — including the autoscale
# trim race (scale-down-vs-heartbeat and its seeded-bug twin). Fixed
# seed, bounded schedules: deterministic and well under 30 s.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-check --bin oddci-check -- lint
run cargo run -q --release ${CARGO_FLAGS} -p oddci-check --bin oddci-check -- \
    model --seed 11 --schedules 400

# Streamed-trace smoke: run one small scenario with the streaming sink
# attached, then let schema_check validate the streamed JSONL + Chrome
# artifacts alongside the metrics envelopes.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    --scenario small --seed 7 \
    --out results/ci-smoke.json --stream results/ci-smoke.trace.jsonl

# Binary-trace round trip: stream the same scenario through the binary
# sink (must drop nothing), convert the artifact back to JSONL + Chrome
# offline, then let schema_check validate the binary header alongside
# the converted text artifacts.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    --scenario small --seed 7 --binary \
    --out results/ci-smoke-bin.json --stream results/ci-smoke-bin.trace.bin
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    convert results/ci-smoke-bin.trace.bin
run cargo run -q --release ${CARGO_FLAGS} -p oddci-bench --bin schema_check

# Wire smoke: one real multi-process run of the socket-backed live plane —
# a headend process plus three PNA processes complete an alignment job
# over loopback TCP, and the headend's accounting must balance exactly.
ODDCI_BIN=target/release/oddci
WIRE_PORT=${WIRE_PORT:-7841}
echo "==> wire smoke: headend + 3 pna processes on 127.0.0.1:${WIRE_PORT}"
"${ODDCI_BIN}" headend --listen "127.0.0.1:${WIRE_PORT}" \
    --pnas 3 --target 3 --queries 9 --timeout 60 --json \
    > results/ci-wire-smoke.json &
HEADEND_PID=$!
sleep 1
# Live-stats smoke: poll the running headend's metrics plane over the
# same socket. StatsQuery is answered without a Hello handshake, so the
# monitoring connection never consumes a node identity.
"${ODDCI_BIN}" top --connect "127.0.0.1:${WIRE_PORT}" --count 1 --json \
    > results/ci-top.json
python3 - <<'EOF'
import json
with open("results/ci-top.json") as f:
    snap = json.load(f)
assert snap["registry"]["counters"], snap
print("    live stats: non-empty metrics registry from the running headend")
EOF
for seed in 101 102 103; do
    "${ODDCI_BIN}" pna --connect "127.0.0.1:${WIRE_PORT}" --seed "${seed}" \
        > /dev/null &
    PNA_PIDS="${PNA_PIDS} $!"
done
wait "${HEADEND_PID}"
for pid in ${PNA_PIDS}; do
    wait "${pid}"
done
PNA_PIDS=""
python3 - <<'EOF'
import json
with open("results/ci-wire-smoke.json") as f:
    report = json.load(f)
assert report["tasks_completed"] == 9, report
assert report["tasks_unaccounted"] == 0, report
assert report["threads_failed"] == 0, report
assert report["wire"]["multi_chunk_tx"] >= 1, report
assert report["wire"]["checksum_rejects"] == 0, report
print("    wire smoke: 9 tasks over loopback, accounting balanced")
EOF

# Failover smoke: a snapshotting primary plus three reconnecting PNAs;
# SIGKILL the primary mid-job (no goodbye — the listener just dies),
# boot a standby from the latest snapshot on the same port, and require
# the job to finish with zero tasks lost and every PNA re-acked at the
# bumped fencing epoch.
FAILOVER_PORT=${FAILOVER_PORT:-7842}
FAILOVER_SNAP=results/ci-failover-snap
rm -rf "${FAILOVER_SNAP}"
echo "==> failover smoke: SIGKILL primary, standby adoption on 127.0.0.1:${FAILOVER_PORT}"
"${ODDCI_BIN}" headend --listen "127.0.0.1:${FAILOVER_PORT}" \
    --pnas 3 --target 3 --queries 96 --db-len 500000 --timeout 60 \
    --snapshot-dir "${FAILOVER_SNAP}" --snapshot-interval-ms 50 --json \
    > results/ci-failover-primary.json &
HEADEND_PIDS="$!"
for seed in 201 202 203; do
    "${ODDCI_BIN}" pna --connect "127.0.0.1:${FAILOVER_PORT}" --seed "${seed}" \
        --reconnect-ms 30000 --json > "results/ci-failover-pna-${seed}.json" &
    PNA_PIDS="${PNA_PIDS} $!"
done
# Pull the plug only once a snapshot exists (otherwise there is nothing
# to adopt) and a beat of work has flowed through the instance.
for _ in $(seq 1 100); do
    [ -f "${FAILOVER_SNAP}/headend.snap" ] && break
    sleep 0.05
done
sleep 0.4
kill -9 ${HEADEND_PIDS} || true
wait ${HEADEND_PIDS} 2>/dev/null || true
HEADEND_PIDS=""
"${ODDCI_BIN}" headend --listen "127.0.0.1:${FAILOVER_PORT}" \
    --standby "${FAILOVER_SNAP}" --pnas 3 --timeout 60 --json \
    > results/ci-failover-standby.json
for pid in ${PNA_PIDS}; do
    wait "${pid}"
done
PNA_PIDS=""
python3 - <<'EOF'
import json
with open("results/ci-failover-standby.json") as f:
    standby = json.load(f)
assert standby["epoch"] == 1, standby
assert standby["adopted_jobs"] >= 1, standby
assert standby["tasks_completed"] == 96, standby
assert standby["tasks_unaccounted"] == 0, standby
assert standby["threads_failed"] == 0, standby
for seed in (201, 202, 203):
    with open(f"results/ci-failover-pna-{seed}.json") as f:
        pna = json.load(f)
    assert pna["epoch"] == 1, (seed, pna)
print("    failover smoke: standby adopted at epoch 1, 96 tasks, none lost")
EOF
rm -rf "${FAILOVER_SNAP}"

# Autoscale smoke: the elastic-sizing drill on a fixed seed. The drill
# submits one backlog at the minimum instance size and fails by itself
# unless the reconciler scaled up at least once, trimmed back down at
# least once, replaced the revoked membership, and lost no work; the
# assertions below re-check that verdict from the JSON artifact so CI
# output records the evidence, not just the exit code.
echo "==> autoscale smoke: elastic drill, spot-like revocation, fixed seed"
"${ODDCI_BIN}" autoscale --seed 42 --json > results/ci-autoscale.json
python3 - <<'EOF'
import json
with open("results/ci-autoscale.json") as f:
    drill = json.load(f)
assert drill["scale_ups"] >= 1, drill
assert drill["scale_downs"] >= 1, drill
assert drill["tasks_lost"] == 0, drill
assert drill["tasks_unaccounted"] == 0, drill
assert drill["threads_failed"] == 0, drill
assert drill["tasks_completed"] == drill["queries"], drill
print(
    "    autoscale smoke: {} up / {} down / {} replace, "
    "{} tasks, none lost".format(
        drill["scale_ups"], drill["scale_downs"],
        drill["replacements"], drill["tasks_completed"],
    )
)
EOF

# Docs gates: every relative markdown cross-reference must resolve, and
# every `--flag` the operator runbook documents must exist in `oddci
# help` (so the runbook cannot drift from the CLI).
echo "==> docs: markdown link check + runbook flag check"
"${ODDCI_BIN}" help > results/ci-help.txt
python3 - <<'EOF'
import os, re

bad = []
for root, dirs, files in os.walk("."):
    dirs[:] = [d for d in dirs if d not in (".git", "target", "vendor", "results")]
    for name in files:
        if not name.endswith(".md"):
            continue
        path = os.path.join(root, name)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for m in re.finditer(r"\[[^\]]*\]\(([^)\s]+)\)", text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                bad.append(f"{path}: broken link -> {m.group(1)}")
assert not bad, "\n".join(bad)
print("    docs: every relative markdown link resolves")

with open("results/ci-help.txt", encoding="utf-8") as f:
    known = set(re.findall(r"--[a-z][a-z0-9-]*", f.read()))
# Cargo's own flags show up in runbook build/test instructions.
known |= {"--release", "--offline", "--workspace"}
with open("OPERATIONS.md", encoding="utf-8") as f:
    ops = f.read()
# Link targets (e.g. anchors like `#6-durability--failover`) are not
# documented flags — drop them before scanning.
ops = re.sub(r"\]\([^)]*\)", "]", ops)
missing = sorted({f for f in re.findall(r"--[a-z][a-z0-9-]*", ops) if f not in known})
assert not missing, f"OPERATIONS.md documents flags `oddci help` does not know: {missing}"
print(f"    docs: every OPERATIONS.md flag appears in `oddci help`")
EOF

echo "==> CI green"
