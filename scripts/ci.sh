#!/usr/bin/env bash
# CI gauntlet: build, test, formatting, lints. Run from anywhere; exits
# non-zero on the first failure. Pass extra cargo flags (e.g. --offline)
# via CARGO_FLAGS.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

# Smoke artifacts are gitignored; remove them even when a gate between
# their creation and the explicit cleanup fails. PNA processes from the
# wire smoke are reaped too, so a failed headend never leaks children.
PNA_PIDS=""
cleanup() {
    for pid in ${PNA_PIDS}; do
        kill "${pid}" 2>/dev/null || true
    done
    rm -f results/ci-smoke.json results/ci-smoke.trace.jsonl \
        results/ci-smoke.trace.stream.json results/ci-wire-smoke.json \
        results/ci-smoke-bin.json results/ci-smoke-bin.trace.bin \
        results/ci-smoke-bin.trace.jsonl results/ci-smoke-bin.trace.stream.json \
        results/ci-top.json
}
trap cleanup EXIT

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release ${CARGO_FLAGS}
run cargo test -q ${CARGO_FLAGS}
run cargo fmt --check
run cargo clippy --workspace --all-targets ${CARGO_FLAGS} -- -D warnings

# Documentation gate: every intra-doc link must resolve and every public
# item stay documented; warnings are promoted to errors.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ${CARGO_FLAGS}

# Concurrency gates: the workspace lint (raw-lock ban, telemetry phase
# vocabulary, no unwrap in live hot paths) must be clean, and a bounded
# model-check over the scaled-down headend scenarios must find every
# seeded bug and none in the fixed protocols. Fixed seed, bounded
# schedules: deterministic and well under 30 s.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-check --bin oddci-check -- lint
run cargo run -q --release ${CARGO_FLAGS} -p oddci-check --bin oddci-check -- \
    model --seed 11 --schedules 400

# Streamed-trace smoke: run one small scenario with the streaming sink
# attached, then let schema_check validate the streamed JSONL + Chrome
# artifacts alongside the metrics envelopes.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    --scenario small --seed 7 \
    --out results/ci-smoke.json --stream results/ci-smoke.trace.jsonl

# Binary-trace round trip: stream the same scenario through the binary
# sink (must drop nothing), convert the artifact back to JSONL + Chrome
# offline, then let schema_check validate the binary header alongside
# the converted text artifacts.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    --scenario small --seed 7 --binary \
    --out results/ci-smoke-bin.json --stream results/ci-smoke-bin.trace.bin
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    convert results/ci-smoke-bin.trace.bin
run cargo run -q --release ${CARGO_FLAGS} -p oddci-bench --bin schema_check

# Wire smoke: one real multi-process run of the socket-backed live plane —
# a headend process plus three PNA processes complete an alignment job
# over loopback TCP, and the headend's accounting must balance exactly.
ODDCI_BIN=target/release/oddci
WIRE_PORT=${WIRE_PORT:-7841}
echo "==> wire smoke: headend + 3 pna processes on 127.0.0.1:${WIRE_PORT}"
"${ODDCI_BIN}" headend --listen "127.0.0.1:${WIRE_PORT}" \
    --pnas 3 --target 3 --queries 9 --timeout 60 --json \
    > results/ci-wire-smoke.json &
HEADEND_PID=$!
sleep 1
# Live-stats smoke: poll the running headend's metrics plane over the
# same socket. StatsQuery is answered without a Hello handshake, so the
# monitoring connection never consumes a node identity.
"${ODDCI_BIN}" top --connect "127.0.0.1:${WIRE_PORT}" --count 1 --json \
    > results/ci-top.json
python3 - <<'EOF'
import json
with open("results/ci-top.json") as f:
    snap = json.load(f)
assert snap["registry"]["counters"], snap
print("    live stats: non-empty metrics registry from the running headend")
EOF
for seed in 101 102 103; do
    "${ODDCI_BIN}" pna --connect "127.0.0.1:${WIRE_PORT}" --seed "${seed}" \
        > /dev/null &
    PNA_PIDS="${PNA_PIDS} $!"
done
wait "${HEADEND_PID}"
for pid in ${PNA_PIDS}; do
    wait "${pid}"
done
PNA_PIDS=""
python3 - <<'EOF'
import json
with open("results/ci-wire-smoke.json") as f:
    report = json.load(f)
assert report["tasks_completed"] == 9, report
assert report["tasks_unaccounted"] == 0, report
assert report["threads_failed"] == 0, report
assert report["wire"]["multi_chunk_tx"] >= 1, report
assert report["wire"]["checksum_rejects"] == 0, report
print("    wire smoke: 9 tasks over loopback, accounting balanced")
EOF

echo "==> CI green"
