#!/usr/bin/env bash
# CI gauntlet: build, test, formatting, lints. Run from anywhere; exits
# non-zero on the first failure. Pass extra cargo flags (e.g. --offline)
# via CARGO_FLAGS.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release ${CARGO_FLAGS}
run cargo test -q ${CARGO_FLAGS}
run cargo fmt --check
run cargo clippy --workspace ${CARGO_FLAGS} -- -D warnings

# Documentation gate: every intra-doc link must resolve and every public
# item stay documented; warnings are promoted to errors.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ${CARGO_FLAGS}

# Telemetry gates: the Chrome-trace integration test must stay green and
# every checked-in results/*.metrics.json must match the schema.
run cargo test -q ${CARGO_FLAGS} --test telemetry_trace

# Streamed-trace smoke: run one small scenario with the streaming sink
# attached, then let schema_check validate the streamed JSONL + Chrome
# artifacts alongside the metrics envelopes. The smoke files are
# gitignored and removed after validation.
run cargo run -q --release ${CARGO_FLAGS} -p oddci-cli --bin oddci -- trace \
    --scenario small --seed 7 \
    --out results/ci-smoke.json --stream results/ci-smoke.trace.jsonl
run cargo run -q --release ${CARGO_FLAGS} -p oddci-bench --bin schema_check
rm -f results/ci-smoke.json results/ci-smoke.trace.jsonl results/ci-smoke.trace.stream.json

echo "==> CI green"
