#!/usr/bin/env bash
# CI gauntlet: build, test, formatting, lints. Run from anywhere; exits
# non-zero on the first failure. Pass extra cargo flags (e.g. --offline)
# via CARGO_FLAGS.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release ${CARGO_FLAGS}
run cargo test -q ${CARGO_FLAGS}
run cargo fmt --check
run cargo clippy --workspace ${CARGO_FLAGS} -- -D warnings

# Documentation gate: every intra-doc link must resolve and every public
# item stay documented; warnings are promoted to errors.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ${CARGO_FLAGS}

# Telemetry gates: the Chrome-trace integration test must stay green and
# every checked-in results/*.metrics.json must match the schema.
run cargo test -q ${CARGO_FLAGS} --test telemetry_trace
run cargo run -q --release ${CARGO_FLAGS} -p oddci-bench --bin schema_check

echo "==> CI green"
