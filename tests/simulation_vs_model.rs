//! Cross-validation: the discrete-event simulator against the paper's
//! closed-form models.
//!
//! The simulator contains none of the analytical expressions — wakeup
//! latency emerges from carousel geometry, makespan from event timing —
//! so agreement between the two is evidence both are right.

use oddci::analytics::{makespan_integer_rounds, wakeup_mean, InstanceParams};
use oddci::core::{World, WorldConfig};
use oddci::types::{Bandwidth, DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;

mod common;
use common::fast_policy;

/// Makespan: simulation within a modest envelope of equation (1)'s
/// integer-rounds variant across a parameter grid.
#[test]
fn makespan_tracks_equation_1() {
    for (tasks, target, cost_s) in [(400u64, 100u64, 60u64), (1000, 100, 30), (300, 50, 120)] {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 1_000;
        cfg.policy = fast_policy();
        cfg.controller_tick = SimDuration::from_secs(15);

        let image = DataSize::from_megabytes(2);
        let job = JobGenerator::homogeneous(
            image,
            DataSize::from_bytes(500),
            DataSize::from_bytes(500),
            SimDuration::from_secs(cost_s),
            tasks ^ target,
        )
        .generate(tasks);
        let profile = job.profile();

        let mut sim = World::simulation(cfg, 99);
        let request = sim.submit_job(job, target);
        let report = sim
            .run_request(request, SimTime::from_secs(14 * 24 * 3600))
            .expect("completes");

        let params = InstanceParams::paper(target);
        let predicted = makespan_integer_rounds(&profile, &params);
        let ratio = report.makespan.as_secs_f64() / predicted.as_secs_f64();
        // The simulator adds: probabilistic sizing (instance forms over a
        // couple of broadcasts), direct-channel latency, controller lag.
        // It can also be *faster* than the model when the carousel attach
        // is favourable. Keep a generous but meaningful envelope.
        assert!(
            (0.5..2.5).contains(&ratio),
            "tasks={tasks} target={target} cost={cost_s}: sim {} vs model {} (ratio {ratio:.2})",
            report.makespan,
            predicted
        );
    }
}

/// Wakeup: staggered power-ons spread attach phases over the carousel
/// cycle, and the mean acquisition latency approaches `1.5·I/β` of the
/// *wire* cycle (within framing overhead).
#[test]
fn wakeup_latency_matches_1_5_law_with_staggered_attach() {
    use oddci::broadcast::carousel::{CarouselFile, ObjectCarousel};
    use oddci::broadcast::tsmux::TransportMux;

    // Direct carousel-level check with uniform attach phases.
    let image = DataSize::from_megabytes(10);
    let beta = Bandwidth::from_mbps(1.0);
    let carousel = ObjectCarousel::new(
        TransportMux::new(beta),
        vec![CarouselFile::sized("image", image)],
        SimTime::ZERO,
    );
    let cycle = carousel.cycle_duration().as_secs_f64();
    let samples = 2_000;
    let mean: f64 = (0..samples)
        .map(|i| {
            let attach = SimTime::from_secs_f64(cycle * 7.3 * i as f64 / samples as f64);
            (carousel.acquisition_complete(0, attach) - attach).as_secs_f64()
        })
        .sum::<f64>()
        / samples as f64;

    let predicted = wakeup_mean(image, beta).as_secs_f64();
    // The carousel transmits framed bits, so its cycle is ~5% longer than
    // the raw I/β the closed form uses.
    let ratio = mean / predicted;
    assert!(
        (1.0..1.10).contains(&ratio),
        "mean {mean:.1}s vs closed form {predicted:.1}s (ratio {ratio:.3})"
    );
}

/// Efficiency: measured throughput relative to ideal matches equation (2)
/// qualitatively — high-suitability jobs run near ideal, low-suitability
/// jobs measurably below.
#[test]
fn efficiency_ordering_matches_equation_2() {
    let run_eff = |cost: SimDuration, moved_bytes: u64| -> f64 {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 500;
        cfg.policy = fast_policy();
        let target = 100u64;
        let n_tasks = 1_000u64;
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(moved_bytes / 2),
            DataSize::from_bytes(moved_bytes / 2),
            cost,
            5,
        )
        .generate(n_tasks);
        let p = job.profile();
        let mut sim = World::simulation(cfg, 7);
        let request = sim.submit_job(job, target);
        let report = sim
            .run_request(request, SimTime::from_secs(30 * 24 * 3600))
            .expect("completes");
        // E = n·p / (M·N)
        n_tasks as f64 * p.mean_cost.as_secs_f64() / (report.makespan.as_secs_f64() * target as f64)
    };

    // High suitability: 10-minute tasks moving 1 KB.
    let high = run_eff(SimDuration::from_secs(600), 1_000);
    // Low suitability: 5-second tasks moving 100 KB.
    let low = run_eff(SimDuration::from_secs(5), 100_000);

    assert!(high > 0.7, "high-suitability efficiency {high:.3}");
    assert!(low < 0.5, "low-suitability efficiency {low:.3}");
    assert!(high > low * 1.5, "ordering: high {high:.3} vs low {low:.3}");
}
