//! End-to-end tests of the socket-backed live plane: a headend listening
//! on loopback TCP and PNA clients running the full §3.2 protocol —
//! wakeup (image streamed in chunks), boot, task fetch, result upload,
//! heartbeats and shutdown — over real sockets.

use oddci::faults::{FaultClass, FaultPlan, FaultSpec};
use oddci::live::wire::{run_wire_pna, WirePnaConfig};
use oddci::live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

fn loopback() -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
}

fn socket_config(nodes: u64) -> LiveConfig {
    LiveConfig {
        nodes,
        heartbeat_interval: Duration::from_millis(60),
        controller_tick: Duration::from_millis(80),
        mode: HeadendMode::Socket {
            listen: loopback(),
            shards: 2,
            dispatch: 2,
            batch: 4,
        },
        ..Default::default()
    }
}

fn tiny_image() -> AlignmentImage {
    AlignmentImage {
        db_len: 20_000,
        ..AlignmentImage::small_demo()
    }
}

/// Spawns `n` in-process PNAs against `addr` (each the same code a
/// standalone `oddci pna` process runs) and returns their join handles.
fn spawn_pnas(
    addr: SocketAddr,
    n: u64,
    faults: FaultPlan,
) -> Vec<std::thread::JoinHandle<oddci::live::WirePnaReport>> {
    (0..n)
        .map(|i| {
            let faults = faults.clone();
            std::thread::spawn(move || {
                let mut cfg = WirePnaConfig::new(addr);
                cfg.seed = 1000 + i;
                cfg.heartbeat_interval = Duration::from_millis(60);
                cfg.faults = faults;
                run_wire_pna(cfg).expect("pna runs to shutdown")
            })
        })
        .collect()
}

#[test]
fn socket_job_completes_over_loopback() {
    let live = LiveOddci::start(socket_config(3));
    let addr = live.wire_addr().expect("socket mode exposes its address");
    let pnas = spawn_pnas(addr, 3, FaultPlan::none());

    let outcome = live
        .run_alignment_job(tiny_image(), 10, 3, Duration::from_secs(60))
        .expect("socket-backed job completes");
    assert_eq!(outcome.scores.len(), 10);
    assert_eq!(outcome.report.tasks_completed, 10);
    // Planted homologs (even task ids) must outscore random noise (odd):
    // proof the computation really ran on the remote side of the wire.
    let planted_min = outcome
        .scores
        .iter()
        .filter(|(t, _)| t.raw() % 2 == 0)
        .map(|(_, &s)| s)
        .min()
        .expect("planted scores");
    let noise_max = outcome
        .scores
        .iter()
        .filter(|(t, _)| t.raw() % 2 == 1)
        .map(|(_, &s)| s)
        .max()
        .expect("noise scores");
    assert!(
        planted_min > noise_max,
        "planted_min={planted_min} noise_max={noise_max}"
    );

    let stats = live.wire_stats().expect("socket mode exposes stats");
    assert!(
        stats.multi_chunk_tx >= 1,
        "the wakeup image must stream in more than one chunk (got {})",
        stats.multi_chunk_tx
    );
    assert_eq!(stats.checksum_rejects, 0, "clean run rejects nothing");

    let report = live.shutdown();
    assert_eq!(report.tasks_unaccounted, 0);
    assert_eq!(report.threads_failed, 0);

    for pna in pnas {
        let r = pna.join().expect("pna thread exits cleanly");
        assert!(
            r.stats.rx_messages > 0,
            "node {} heard the headend",
            r.node.raw()
        );
    }
}

#[test]
fn socket_plane_survives_wire_faults() {
    // Every frame class misbehaves at a low rate on both directions; the
    // envelope layer must reject garbage (never deliver it) and the
    // protocol's retries must still finish the job.
    let plan = FaultPlan::none()
        .with(FaultSpec::new(FaultClass::FrameCorrupt, 0.03))
        .with(FaultSpec::new(FaultClass::FrameTruncate, 0.02))
        .with(FaultSpec::new(FaultClass::FrameReorder, 0.08));
    let config = LiveConfig {
        faults: plan.clone(),
        ..socket_config(3)
    };
    let live = LiveOddci::start(config);
    let addr = live.wire_addr().expect("address");
    let pnas = spawn_pnas(addr, 3, plan);
    // Let every PNA finish its (retried, possibly mangled) handshake
    // before the wakeup goes out — a short job must not shut the plane
    // down while a straggler is still mid-hello.
    std::thread::sleep(Duration::from_millis(500));

    let outcome = live
        .run_alignment_job(tiny_image(), 8, 2, Duration::from_secs(120))
        .expect("job completes despite mangled frames");
    assert_eq!(outcome.report.tasks_completed, 8);

    let server = live.wire_stats().expect("stats");
    let report = live.shutdown();
    assert_eq!(report.tasks_unaccounted, 0);
    assert_eq!(report.threads_failed, 0);
    let mut mangled = server.mangled_corrupt + server.mangled_truncate + server.mangled_reorder;
    for pna in pnas {
        let r = pna.join().expect("pna exits");
        // A corrupted inbound frame must be rejected by the checksum,
        // not delivered: rejects counted, garbage never decoded.
        assert!(r.stats.rx_messages + r.stats.checksum_rejects > 0);
        mangled += r.stats.mangled_corrupt + r.stats.mangled_truncate + r.stats.mangled_reorder;
    }
    assert!(mangled > 0, "the injector actually fired somewhere");
}

#[test]
fn late_pnas_join_via_rebroadcast() {
    // PNAs that connect after the wakeup went out still catch it on the
    // carousel's next pass — the paper's repeated-broadcast behavior.
    let live = LiveOddci::start(socket_config(2));
    let addr = live.wire_addr().expect("address");

    // Submit the job before anyone is listening, then start the fleet:
    // the carousel re-broadcasts until the instance fills.
    let mut pnas = Vec::new();
    let outcome = std::thread::scope(|s| {
        let job = s.spawn(|| live.run_alignment_job(tiny_image(), 6, 2, Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(300));
        pnas = spawn_pnas(addr, 2, FaultPlan::none());
        job.join().expect("job thread")
    })
    .expect("job completes");
    assert_eq!(outcome.report.tasks_completed, 6);

    let report = live.shutdown();
    assert_eq!(report.tasks_unaccounted, 0);
    assert_eq!(report.threads_failed, 0);
    for pna in pnas {
        pna.join().expect("pna exits");
    }
}
