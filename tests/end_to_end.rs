//! End-to-end scenario tests across the whole stack.

use oddci::core::{ChurnConfig, World, WorldConfig};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::{Distribution, JobGenerator};

mod common;
use common::fast_policy;

fn base_config(nodes: u64) -> WorldConfig {
    let mut cfg = WorldConfig::default();
    cfg.nodes = nodes;
    cfg.policy = fast_policy();
    cfg.controller_tick = SimDuration::from_secs(15);
    cfg
}

fn homogeneous_job(tasks: u64, cost_secs: u64, seed: u64) -> oddci::workload::Job {
    JobGenerator::homogeneous(
        DataSize::from_megabytes(1),
        DataSize::from_bytes(400),
        DataSize::from_bytes(400),
        SimDuration::from_secs(cost_secs),
        seed,
    )
    .generate(tasks)
}

#[test]
fn three_sequential_jobs_reuse_the_pool() {
    let mut sim = World::simulation(base_config(300), 31);
    for round in 0..3u64 {
        let mut job = homogeneous_job(150, 20, 100 + round);
        job.id = oddci::types::JobId::new(round);
        let request = sim.submit_job(job, 60);
        let report = sim
            .run_request(request, sim.now() + SimDuration::from_secs(24 * 3600))
            .unwrap_or_else(|| panic!("round {round} completes"));
        assert_eq!(report.tasks_completed, 150, "round {round}");
        // Let the reset propagate so the pool is idle again.
        let settle = sim.now() + SimDuration::from_mins(15);
        sim.run_until(settle);
        assert_eq!(
            sim.world().running_members(report.instance),
            0,
            "round {round} freed"
        );
    }
}

#[test]
fn heterogeneous_bags_complete() {
    let mut cfg = base_config(400);
    cfg.compute = oddci::receiver::ComputeModel::paper_with_jitter(0.15);
    let mut gen = JobGenerator::new(
        DataSize::from_megabytes(2),
        DataSize::from_bytes(2_000),
        DataSize::from_bytes(1_000),
        SimDuration::from_secs(45),
        Distribution::Exponential,
        Distribution::Uniform { spread: 0.8 },
        41,
    );
    let job = gen.generate(500);
    let mut sim = World::simulation(cfg, 43);
    let request = sim.submit_job(job, 100);
    let report = sim
        .run_request(request, SimTime::from_secs(30 * 24 * 3600))
        .expect("heterogeneous job completes");
    assert_eq!(report.tasks_completed, 500);
}

#[test]
fn standby_only_instances_exclude_watching_receivers() {
    use oddci::core::messages::NodeRequirements;

    let mut cfg = base_config(200);
    cfg.in_use_fraction = 0.5;
    let mut sim = World::simulation(cfg, 53);

    // Long-running job so the instance is stable while we inspect it;
    // standby_only keeps watching receivers out.
    let job = homogeneous_job(10_000, 600, 54);
    let request = sim.submit_job_with(
        job,
        200, // ask for everyone; only standby boxes may say yes
        NodeRequirements {
            min_memory: DataSize::ZERO,
            standby_only: true,
        },
    );
    sim.run_until(SimTime::from_secs(2 * 3600));

    let world = sim.world();
    let inst = world.provider().instance_of(request).unwrap();
    // Only ~half the population is standby; all members must be standby.
    let members = world.controller().instance(inst).unwrap().members.clone();
    assert!(!members.is_empty(), "some standby nodes joined");
    for m in &members {
        assert_eq!(
            world.node(*m).usage,
            oddci::receiver::UsageMode::Standby,
            "{m} is watching TV yet joined a standby-only instance"
        );
    }
    // And the instance can never exceed the standby population.
    let standby_total = (0..200)
        .filter(|&i| {
            world.node(oddci::types::NodeId::new(i)).usage == oddci::receiver::UsageMode::Standby
        })
        .count() as u64;
    assert!(members.len() as u64 <= standby_total);
}

#[test]
fn severe_churn_still_finishes_every_task() {
    let mut cfg = base_config(500);
    cfg.churn = Some(ChurnConfig {
        mean_on: SimDuration::from_mins(20),
        mean_off: SimDuration::from_mins(10),
    });
    let mut sim = World::simulation(cfg, 61);
    let request = sim.submit_job(homogeneous_job(400, 90, 62), 100);
    let report = sim
        .run_request(request, SimTime::from_secs(30 * 24 * 3600))
        .expect("completes under severe churn");
    assert_eq!(report.tasks_completed, 400);
    assert!(
        report.requeues > 0,
        "20/10-minute churn against 90 s tasks must orphan something"
    );
}

#[test]
fn metrics_snapshot_is_consistent() {
    let mut sim = World::simulation(base_config(100), 71);
    let request = sim.submit_job(homogeneous_job(100, 10, 72), 50);
    sim.run_request(request, SimTime::from_secs(24 * 3600))
        .expect("completes");
    let snap = sim.world().metrics().snapshot();
    assert_eq!(snap.tasks_completed, 100);
    assert!(
        snap.joins >= 45,
        "at least ~target joins, got {}",
        snap.joins
    );
    assert!(snap.wakeup_latency.count == snap.joins);
    assert!(snap.heartbeats_delivered > 0);
}
