//! Integration tests across the broadcast + receiver substrates: carousel
//! timing, AIT signalling, and the Xlet middleware reacting to it.

use oddci::broadcast::ait::{AitEntry, AppControlCode};
use oddci::broadcast::carousel::{CarouselFile, ObjectCarousel};
use oddci::broadcast::tsmux::TransportMux;
use oddci::broadcast::BroadcastChannel;
use oddci::receiver::middleware::ApplicationManager;
use oddci::receiver::XletState;
use oddci::types::{Bandwidth, ChannelId, DataSize, SimTime};

fn pna_entry(code: AppControlCode) -> AitEntry {
    AitEntry {
        app_id: 1,
        name: "pna".into(),
        base_file: "pna.xlet".into(),
        control_code: code,
    }
}

#[test]
fn receiver_lifecycle_follows_channel_signalling() {
    let mut channel = BroadcastChannel::new(
        ChannelId::new(1),
        Bandwidth::from_mbps(1.0),
        vec![CarouselFile::sized(
            "pna.xlet",
            DataSize::from_kilobytes(256),
        )],
        SimTime::ZERO,
    );
    let mut am = ApplicationManager::new();

    // Nothing signalled yet: nothing starts.
    assert!(am.apply_ait(channel.ait()).is_empty());

    // AUTOSTART published → the Xlet starts on the next AIT application.
    channel.publish_ait(vec![pna_entry(AppControlCode::Autostart)]);
    assert_eq!(am.apply_ait(channel.ait()), vec![1]);
    assert_eq!(am.xlet(1).unwrap().state(), XletState::Started);

    // The same table version repeats every carousel cycle: idempotent.
    assert!(am.apply_ait(channel.ait()).is_empty());

    // KILL published → destroyed.
    channel.publish_ait(vec![pna_entry(AppControlCode::Kill)]);
    am.apply_ait(channel.ait());
    assert_eq!(am.xlet(1).unwrap().state(), XletState::Destroyed);

    // AUTOSTART again (new version) → relaunched fresh.
    channel.publish_ait(vec![pna_entry(AppControlCode::Autostart)]);
    assert_eq!(am.apply_ait(channel.ait()), vec![1]);
    assert_eq!(am.xlet(1).unwrap().state(), XletState::Started);
}

#[test]
fn carousel_update_restarts_acquisitions_from_new_epoch() {
    let mut channel = BroadcastChannel::new(
        ChannelId::new(1),
        Bandwidth::from_mbps(1.0),
        vec![CarouselFile::sized("image-v1", DataSize::from_megabytes(4))],
        SimTime::ZERO,
    );
    let before = channel
        .acquisition_complete("image-v1", SimTime::from_secs(10))
        .expect("v1 on air");

    // Controller swaps the carousel at t=100.
    channel.publish(
        vec![CarouselFile::sized("image-v2", DataSize::from_megabytes(4))],
        vec![],
        SimTime::from_secs(100),
    );
    assert!(channel
        .acquisition_complete("image-v1", SimTime::from_secs(100))
        .is_none());
    let after = channel
        .acquisition_complete("image-v2", SimTime::from_secs(100))
        .expect("v2 on air");
    // Attaching exactly at the new epoch is the best case: one cycle.
    let cycle = channel.carousel().cycle_duration();
    assert_eq!(after - SimTime::from_secs(100), cycle);
    assert!(before < after);
}

#[test]
fn file_order_determines_acquisition_order_at_epoch() {
    let carousel = ObjectCarousel::new(
        TransportMux::new(Bandwidth::from_mbps(1.0)),
        vec![
            CarouselFile::sized("config", DataSize::from_bytes(512)),
            CarouselFile::sized("image", DataSize::from_megabytes(8)),
            CarouselFile::sized("trailer", DataSize::from_kilobytes(16)),
        ],
        SimTime::ZERO,
    );
    let t = SimTime::ZERO;
    let config = carousel.acquisition_complete_by_name("config", t).unwrap();
    let image = carousel.acquisition_complete_by_name("image", t).unwrap();
    let trailer = carousel.acquisition_complete_by_name("trailer", t).unwrap();
    assert!(config < image && image < trailer);

    // A receiver that just finished the config can read the image in the
    // same pass: the image completes exactly when a seamless read would.
    let chained = carousel
        .acquisition_complete_by_name("image", config)
        .unwrap();
    // Equal up to microsecond clock rounding at the phase boundary.
    assert!(
        chained.as_micros().abs_diff(image.as_micros()) <= 10,
        "config → image reads chain without re-waiting: {chained} vs {image}"
    );
}

#[test]
fn acquisition_latency_is_insensitive_to_listener_count() {
    // The defining property of broadcast: acquisition time depends only on
    // the attach phase, never on how many receivers listen. (Contrast with
    // the desktop-grid baseline where staging scales linearly.)
    let carousel = ObjectCarousel::new(
        TransportMux::new(Bandwidth::from_mbps(1.0)),
        vec![CarouselFile::sized("image", DataSize::from_megabytes(2))],
        SimTime::ZERO,
    );
    let t = SimTime::from_secs_f64(3.21);
    let one = carousel.acquisition_complete(0, t);
    // "A million receivers" = the same query a million times; the answer
    // must be identical and O(1) each.
    for _ in 0..1000 {
        assert_eq!(carousel.acquisition_complete(0, t), one);
    }
}

#[test]
fn integrity_digests_survive_the_channel() {
    use oddci::crypto::Sha256;
    let payload = b"xlet-bytecode-and-manifest".to_vec();
    let expected = Sha256::digest(&payload);
    let channel = BroadcastChannel::new(
        ChannelId::new(1),
        Bandwidth::from_mbps(1.0),
        vec![CarouselFile::new("pna.xlet", payload)],
        SimTime::ZERO,
    );
    let file = channel.carousel().file("pna.xlet").unwrap();
    assert_eq!(file.digest(), expected, "receiver-side integrity check");
}
