//! Scale smoke tests and fault injection across the stack.

use oddci::core::{World, WorldConfig};
use oddci::types::{Bandwidth, DataSize, DirectChannelConfig, SimDuration, SimTime};
use oddci::workload::JobGenerator;

mod common;
use common::fast_policy;

/// A 20k-receiver channel forms a 2k-node instance from one broadcast.
/// (Debug-build friendly; the benches push this to 10⁵–10⁶ in release.)
#[test]
fn twenty_thousand_receivers_one_broadcast() {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 20_000;
    cfg.policy.heartbeat.interval = SimDuration::from_secs(300); // keep event volume sane
    cfg.controller_tick = SimDuration::from_secs(120);

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(4),
        DataSize::ZERO, // parametric tasks: t.s = 0
        DataSize::from_bytes(100),
        SimDuration::from_secs(1_800),
        1,
    )
    .generate(100_000);

    let mut sim = World::simulation(cfg, 2026);
    let request = sim.submit_job(job, 2_000);
    sim.run_until(SimTime::from_secs(1_200));

    let world = sim.world();
    let inst = world.provider().instance_of(request).unwrap();
    let size = world.controller().instance_size(inst);
    // One binomial broadcast: expected 2000, sd ≈ 44. Allow ±5 sd plus
    // trimming (which only cuts down to exactly 2000).
    assert!(
        (1_780..=2_000).contains(&size),
        "instance size {size} after one wakeup + trimming"
    );
    // Wakeup latency is independent of the population size: mean within
    // the [1, 2]× envelope of the 4 MB image cycle.
    let cycle = DataSize::from_megabytes(4)
        .transfer_time(Bandwidth::from_mbps(1.0))
        .as_secs_f64();
    let mean = world.metrics().wakeup_latency.stats().mean();
    assert!(
        mean > 0.9 * cycle && mean < 2.2 * cycle,
        "mean wakeup {mean:.1}s vs image cycle {cycle:.1}s"
    );
}

/// Direct-channel loss slows jobs but never corrupts completion counts.
#[test]
fn lossy_direct_channels_only_cost_time() {
    let run = |loss: f64| {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 200;
        cfg.policy = fast_policy();
        cfg.direct = DirectChannelConfig {
            delta: Bandwidth::from_kbps(150.0),
            latency: SimDuration::from_millis(50),
            loss_rate: loss,
        };
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_kilobytes(20),
            DataSize::from_kilobytes(20),
            SimDuration::from_secs(10),
            9,
        )
        .generate(200);
        let mut sim = World::simulation(cfg, 33);
        let request = sim.submit_job(job, 50);
        let report = sim
            .run_request(request, SimTime::from_secs(30 * 24 * 3600))
            .expect("completes despite loss");
        assert_eq!(report.tasks_completed, 200, "loss={loss}");
        report.makespan.as_secs_f64()
    };
    let clean = run(0.0);
    let lossy = run(0.25);
    assert!(
        lossy > clean,
        "25% loss must inflate makespan: clean {clean:.0}s vs lossy {lossy:.0}s"
    );
}

/// Tiny direct channels (δ → dial-up) shift the bottleneck to transfers;
/// everything still completes and the makespan ordering follows δ.
#[test]
fn delta_bandwidth_ordering() {
    let run = |kbps: f64| {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 150;
        cfg.policy = fast_policy();
        cfg.direct.delta = Bandwidth::from_kbps(kbps);
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_kilobytes(50),
            DataSize::from_kilobytes(50),
            SimDuration::from_secs(5),
            4,
        )
        .generate(300);
        let mut sim = World::simulation(cfg, 77);
        let request = sim.submit_job(job, 50);
        sim.run_request(request, SimTime::from_secs(30 * 24 * 3600))
            .expect("completes")
            .makespan
            .as_secs_f64()
    };
    let slow = run(56.0); // dial-up
    let adsl = run(150.0); // the paper's lower bound
    let fast = run(1_000.0);
    assert!(
        slow > adsl && adsl > fast,
        "δ ordering: {slow:.0} > {adsl:.0} > {fast:.0}"
    );
}

/// Zero-input (parametric) tasks skip the input transfer entirely.
#[test]
fn parametric_tasks_have_no_input_cost() {
    let run = |input_bytes: u64| {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 100;
        cfg.policy = fast_policy();
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(input_bytes),
            DataSize::from_bytes(100),
            SimDuration::from_secs(5),
            6,
        )
        .generate(400);
        let mut sim = World::simulation(cfg, 21);
        let request = sim.submit_job(job, 50);
        sim.run_request(request, SimTime::from_secs(30 * 24 * 3600))
            .expect("completes")
            .makespan
            .as_secs_f64()
    };
    let parametric = run(0);
    let heavy_input = run(200_000); // 200 KB over 150 Kbps ≈ 10.7 s per task
    assert!(
        heavy_input > parametric * 1.5,
        "input transfers must dominate: {heavy_input:.0}s vs {parametric:.0}s"
    );
}
