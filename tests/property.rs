//! Property-based tests over the whole stack.

use oddci::analytics::{makespan, wakeup_mean, InstanceParams};
use oddci::core::{World, WorldConfig};
use oddci::crypto::{MessageAuthenticator, Sha256};
use oddci::faults::{FaultClass, FaultPlan, FaultSpec};
use oddci::sim::{SeedForge, Welford};
use oddci::types::{Bandwidth, DataSize, Probability, SimDuration, SimTime};
use oddci::workload::{JobGenerator, JobProfile};
use proptest::prelude::*;

mod common;
use common::fast_policy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SHA-256 streaming equals one-shot for arbitrary inputs and splits.
    #[test]
    fn sha256_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    split in 0usize..512) {
        let split = split.min(data.len());
        let one_shot = Sha256::digest(&data);
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), one_shot);
    }

    /// MAC verification accepts the real tag and rejects any single-bit flip.
    #[test]
    fn mac_rejects_bit_flips(key in proptest::collection::vec(any::<u8>(), 1..64),
                             msg in proptest::collection::vec(any::<u8>(), 0..128),
                             flip_byte in 0usize..32, flip_bit in 0u8..8) {
        let auth = MessageAuthenticator::from_key(&key);
        let mut tag = auth.sign(&msg);
        prop_assert!(auth.verify(&msg, &tag));
        tag[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!auth.verify(&msg, &tag));
    }

    /// Transfer-time dimensional sanity: time scales linearly in size and
    /// inversely in bandwidth.
    #[test]
    fn transfer_time_scaling(bits in 1u64..10_000_000, mbps in 1u32..100) {
        let bw = Bandwidth::from_mbps(f64::from(mbps));
        let t1 = DataSize::from_bits(bits).transfer_time(bw);
        let t2 = DataSize::from_bits(bits * 2).transfer_time(bw);
        let t_fast = DataSize::from_bits(bits).transfer_time(Bandwidth::from_mbps(f64::from(mbps) * 2.0));
        // Allow microsecond rounding.
        prop_assert!(t2.as_micros().abs_diff(t1.as_micros() * 2) <= 2);
        prop_assert!(t_fast.as_micros().abs_diff(t1.as_micros() / 2) <= 2);
    }

    /// Makespan (eq. 1) is monotone: more nodes never hurt, bigger images
    /// never help.
    #[test]
    fn makespan_monotonicity(tasks in 1u64..100_000,
                             nodes in 1u64..10_000,
                             cost_ms in 1u64..3_600_000) {
        let profile = |img_mb: u64| JobProfile {
            image_size: DataSize::from_megabytes(img_mb),
            task_count: tasks,
            mean_input: DataSize::from_bytes(500),
            mean_result: DataSize::from_bytes(500),
            mean_cost: SimDuration::from_millis(cost_ms),
        };
        let m_small = makespan(&profile(1), &InstanceParams::paper(nodes));
        let m_big = makespan(&profile(100), &InstanceParams::paper(nodes));
        prop_assert!(m_big >= m_small);
        let m_more_nodes = makespan(&profile(1), &InstanceParams::paper(nodes * 2));
        prop_assert!(m_more_nodes <= m_small);
    }

    /// Wakeup mean stays within its own envelope for any image/β.
    #[test]
    fn wakeup_mean_in_envelope(img_kb in 1u64..100_000, kbps in 100u32..100_000) {
        let image = DataSize::from_kilobytes(img_kb);
        let beta = Bandwidth::from_kbps(f64::from(kbps));
        let mean = wakeup_mean(image, beta);
        let cycle = image.transfer_time(beta);
        prop_assert!(mean >= cycle && mean <= cycle * 2);
    }

    /// Probability::for_target never exceeds 1 and hits the exact ratio
    /// when feasible.
    #[test]
    fn probability_sizing(target in 0u64..1_000_000, pool in 1u64..1_000_000) {
        let p = Probability::for_target(target, pool);
        prop_assert!(p.value() <= 1.0);
        if target <= pool {
            prop_assert!((p.value() - target as f64 / pool as f64).abs() < 1e-12);
        }
    }

    /// SeedForge: distinct (label, index) pairs give distinct seeds, and
    /// derivation is pure.
    #[test]
    fn seed_forge_properties(master in any::<u64>(), a in 0u64..10_000, b in 0u64..10_000) {
        let forge = SeedForge::new(master);
        prop_assert_eq!(forge.indexed_seed("x", a), forge.indexed_seed("x", a));
        if a != b {
            prop_assert_ne!(forge.indexed_seed("x", a), forge.indexed_seed("x", b));
        }
        prop_assert_ne!(forge.indexed_seed("x", a), forge.indexed_seed("y", a));
    }

    /// Welford merge is associative-enough: merging any split equals the
    /// sequential result.
    #[test]
    fn welford_merge_split_invariance(xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                      split in 0usize..200) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.add(x); }
        let mut l = Welford::new();
        let mut r = Welford::new();
        for &x in &xs[..split] { l.add(x); }
        for &x in &xs[split..] { r.add(x); }
        l.merge(&r);
        prop_assert_eq!(l.count(), whole.count());
        prop_assert!((l.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((l.variance() - whole.variance()).abs()
                     <= 1e-5 * (1.0 + whole.variance().abs()));
    }
}

proptest! {
    // Whole-world property runs are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any small world completes any small job, exactly once per task.
    #[test]
    fn world_always_completes_small_jobs(seed in any::<u64>(),
                                         tasks in 20u64..120,
                                         target in 5u64..60) {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 200;
        cfg.policy = fast_policy();
        cfg.controller_tick = SimDuration::from_secs(15);
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(200),
            DataSize::from_bytes(200),
            SimDuration::from_secs(10),
            seed,
        ).generate(tasks);

        let mut sim = World::simulation(cfg, seed);
        let request = sim.submit_job(job, target);
        let report = sim.run_request(request, SimTime::from_secs(14 * 24 * 3600));
        prop_assert!(report.is_some(), "seed={seed} tasks={tasks} target={target}");
        prop_assert_eq!(report.unwrap().tasks_completed, tasks);
    }

    /// Identical seed + identical `FaultPlan` ⇒ byte-identical simulation
    /// trace (and identical makespan, event count and metric counters).
    /// Fault injection is a pure function of (seed, class, node, instant),
    /// so replaying a chaotic run must reproduce it exactly.
    #[test]
    fn fault_plan_runs_are_reproducible(seed in any::<u64>(),
                                        intensity in 0.0f64..2.0,
                                        loss_rate in 0.0f64..0.3,
                                        crash_rate in 0.0f64..0.05) {
        let plan = FaultPlan::standard_mix()
            .scaled(intensity)
            .with(FaultSpec::new(FaultClass::DirectLoss, loss_rate).magnitude(10.0))
            .with(FaultSpec::new(FaultClass::PnaCrash, crash_rate).magnitude(30.0));

        let run = |plan: FaultPlan| {
            let mut cfg = WorldConfig::default();
            cfg.nodes = 150;
            cfg.policy = fast_policy();
            cfg.controller_tick = SimDuration::from_secs(30);
            cfg.trace_capacity = Some(4096);
            cfg.faults = plan;
            let job = JobGenerator::homogeneous(
                DataSize::from_megabytes(1),
                DataSize::from_bytes(300),
                DataSize::from_bytes(300),
                SimDuration::from_secs(15),
                seed ^ 0xDDC1,
            ).generate(60);
            let mut sim = World::simulation(cfg, seed);
            let request = sim.submit_job(job, 40);
            let report = sim.run_request(request, SimTime::from_secs(14 * 24 * 3600));
            let trace: Vec<(SimTime, String)> =
                sim.world().trace().entries().to_vec();
            (
                report.map(|r| (r.tasks_completed, r.makespan)),
                sim.events_processed(),
                sim.world().metrics().snapshot(),
                trace,
            )
        };

        let a = run(plan.clone());
        let b = run(plan);
        prop_assert_eq!(&a.0, &b.0, "completion report diverged");
        prop_assert_eq!(a.1, b.1, "event count diverged");
        prop_assert_eq!(&a.2, &b.2, "metric counters diverged");
        prop_assert_eq!(&a.3, &b.3, "trace diverged");
        // The job must also actually finish — determinism of a wedged run
        // would be a hollow property.
        prop_assert!(a.0.is_some(), "job completes under the generated plan");
        prop_assert_eq!(a.0.unwrap().0, 60);
    }
}
