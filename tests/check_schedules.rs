//! Pinned-schedule regression tests for the concurrency model checker.
//!
//! Each test explores one of the scaled-down headend scenarios under a
//! fixed scheduler seed, takes the failing interleaving the explorer
//! finds, and replays its schedule string — asserting the same failure
//! class reproduces. The seeded DFS is fully deterministic, so these
//! pin both halves of the tool: the *detector* (the bug is still found)
//! and the *replayer* (a printed schedule still reproduces it). If a
//! protocol model changes shape, the explore step re-derives a current
//! failing schedule, so the pins do not rot when yield structure drifts.
//!
//! The clean-scenario tests are the other half of the contract: the
//! fixed versions of the same protocols must survive every explored
//! interleaving, and the run must report a replayable schedule string.

use oddci::check::explore::Explorer;
use oddci::check::scenarios;

/// Explore `name` at `seed`, demand a failure, replay it, and demand the
/// replay reproduces a failure mentioning `marker`.
fn pin_failure(name: &str, seed: u64, schedules: usize, marker: &str) {
    let s = scenarios::by_name(name).expect("scenario registered");
    assert!(!s.expect_clean, "{name} is a seeded-bug scenario");
    let result = Explorer::new(seed)
        .max_schedules(schedules)
        .explore(s.setup);
    let failure = result.failure.unwrap_or_else(|| {
        panic!(
            "sensitivity regression: {name} not caught within {} schedule(s)",
            result.schedules
        )
    });
    assert!(
        failure.message.contains(marker),
        "{name}: expected failure mentioning `{marker}`, got: {}",
        failure.message
    );
    let outcome = Explorer::new(seed).replay(&failure.schedule, s.setup);
    let replayed = outcome
        .failure
        .unwrap_or_else(|| panic!("{name}: schedule {} did not replay", failure.schedule));
    assert!(
        replayed.contains(marker),
        "{name}: replay diverged — expected `{marker}`, got: {replayed}"
    );
}

/// Explore `name` at `seed` and demand it stays clean over every
/// interleaving in the bound, with a well-formed last-schedule string.
fn pin_clean(name: &str, seed: u64, schedules: usize) {
    let s = scenarios::by_name(name).expect("scenario registered");
    assert!(s.expect_clean, "{name} is a fixed-protocol scenario");
    let result = Explorer::new(seed)
        .max_schedules(schedules)
        .explore(s.setup);
    if let Some(f) = &result.failure {
        panic!(
            "{name} failed under schedule {} — fix the protocol or the model:\n{}",
            f.schedule, f.message
        );
    }
    assert!(
        result.last_schedule.starts_with(&format!("s{seed}:")),
        "schedule strings must carry their seed: {}",
        result.last_schedule
    );
}

#[test]
fn torn_sink_stats_snapshot_is_pinned() {
    // The in-PR bug: SinkStats::in_flight computed `emitted - persisted
    // - dropped` from three independent Relaxed loads; a snapshot torn
    // across a writer's persist underflows. Fixed with saturating_sub
    // (crates/telemetry/src/sink.rs).
    pin_failure("sink-stats-snapshot-torn", 11, 400, "underflow");
}

#[test]
fn lossy_sink_shutdown_is_pinned() {
    // Closing the lane while the producer still holds events: a send
    // that fails after the control check must be counted as a drop or
    // the emitted == persisted + dropped accounting breaks.
    pin_failure("shutdown-under-active-sink-lossy", 11, 400, "");
}

#[test]
fn heartbeat_recompose_toctou_is_pinned() {
    // Heartbeat checks membership, drops the lock, then inserts into
    // the ledger — a recomposition between the two strands a dead node
    // in the ledger.
    pin_failure("heartbeat-vs-recompose-toctou", 11, 400, "");
}

#[test]
fn hasty_dispatcher_drain_is_pinned() {
    // Workers that exit on an empty queue (try_recv → None) instead of
    // waiting for close lose queued tasks at shutdown.
    pin_failure("dispatcher-drain-hasty", 11, 400, "");
}

#[test]
fn split_trim_stranding_is_pinned() {
    // The autoscale trim race: requeueing a trimmed member's tasks and
    // dropping it from the membership in separate critical sections lets
    // a concurrent heartbeat fetch assign a fresh task to the victim —
    // stranded forever. The live shard handler does both under one hub
    // lock.
    pin_failure("scale-down-vs-heartbeat-stranded", 11, 400, "stranded");
}

#[test]
fn fixed_protocols_survive_exploration() {
    pin_clean("shutdown-under-active-sink", 11, 200);
    pin_clean("heartbeat-vs-recompose", 11, 200);
    pin_clean("dispatcher-drain", 11, 200);
    pin_clean("sink-stats-snapshot", 11, 200);
    pin_clean("scale-down-vs-heartbeat", 11, 200);
}
