//! The elastic-Provider reconciliation gauntlet.
//!
//! Property tests drive the pure [`Reconciler`] over arbitrary gauge
//! trajectories and check its three contract clauses — bounds, cooldown
//! fencing, and convergence — then a live sharded headend runs a real
//! job under spot-like airtime revocation plus node churn and must lose
//! nothing while the loop replaces the evicted capacity.

use oddci::core::{AutoscalePolicy, Reconciler, ScaleDecision, ScaleInputs};
use oddci::faults::FaultPlan;
use oddci::live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use oddci::types::{SimDuration, SimTime};
use proptest::prelude::*;
use std::time::Duration;

/// A self-consistent policy with the latency signals off, so the queue
/// gauge is the only scaling input the properties have to model.
fn arb_policy() -> impl Strategy<Value = AutoscalePolicy> {
    (1usize..=4, 0usize..=10, 1usize..=8, 0u32..90, 1u64..=30).prop_map(
        |(min, extra, slo, hyst, cooldown)| AutoscalePolicy {
            min_size: min,
            max_size: min + extra,
            slo_queue_depth: slo,
            slo_fetch_p99: 0.0,
            slo_heartbeat_lag: 0.0,
            hysteresis: f64::from(hyst) / 100.0,
            cooldown: SimDuration::from_secs(cooldown),
        },
    )
}

/// One observed reconcile tick: how far the clock advanced (ms), the
/// Backend queue depth, and whether the broadcaster revoked airtime
/// just before the sample.
fn arb_trajectory() -> impl Strategy<Value = Vec<(u64, usize, bool)>> {
    proptest::collection::vec(
        (
            1u64..40_000,
            0usize..400,
            (0u32..100).prop_map(|roll| roll < 15),
        ),
        1..60,
    )
}

fn inputs(queue_depth: usize, current_size: usize) -> ScaleInputs {
    ScaleInputs {
        queue_depth,
        current_size,
        ..ScaleInputs::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The desired size never leaves `[min_size, max_size]`, no matter
    /// what the gauges claim, and a revocation is always answered by a
    /// `Replace` on the very next tick — never deferred by cooldown.
    #[test]
    fn desired_always_respects_policy_bounds(policy in arb_policy(),
                                             steps in arb_trajectory()) {
        let mut r = Reconciler::new(policy, 1);
        let mut now = SimTime::ZERO;
        for (dt_ms, queue, revoked) in steps {
            now += SimDuration::from_millis(dt_ms);
            if revoked {
                r.observe_revocation();
            }
            let current = r.desired();
            let decision = r.tick(now, &inputs(queue, current));
            if revoked {
                prop_assert!(
                    matches!(decision, ScaleDecision::Replace { .. }),
                    "revocation answered with {decision:?} instead of Replace"
                );
            }
            prop_assert!(
                (policy.min_size..=policy.max_size).contains(&r.desired()),
                "desired {} escaped [{}, {}]",
                r.desired(), policy.min_size, policy.max_size
            );
        }
    }

    /// Cooldown fencing: between any two capacity *changes* (scale-up or
    /// scale-down) at least one full cooldown elapses, counted from the
    /// last action of any kind — so the loop can never flap more than
    /// once per window. Replacements are exempt by design (lost capacity
    /// is restored, not rate-limited) but still arm the fence.
    #[test]
    fn at_most_one_scaling_action_per_cooldown_window(policy in arb_policy(),
                                                      steps in arb_trajectory()) {
        let mut r = Reconciler::new(policy, 1);
        let mut now = SimTime::ZERO;
        let mut last_action: Option<SimTime> = None;
        for (dt_ms, queue, revoked) in steps {
            now += SimDuration::from_millis(dt_ms);
            if revoked {
                r.observe_revocation();
            }
            let current = r.desired();
            let decision = r.tick(now, &inputs(queue, current));
            if matches!(
                decision,
                ScaleDecision::ScaleUp { .. } | ScaleDecision::ScaleDown { .. }
            ) {
                if let Some(prev) = last_action {
                    prop_assert!(
                        now.since(prev) >= policy.cooldown,
                        "{decision:?} only {:?} after the previous action, cooldown {:?}",
                        now.since(prev), policy.cooldown
                    );
                }
            }
            if decision.acted() {
                last_action = Some(now);
            }
        }
    }

    /// Convergence: under constant load the loop reaches a fixed point
    /// within one tick — desired jumps straight to the clamped target
    /// (or holds inside the hysteresis band) and every later tick is a
    /// `Hold` at the same desired size. No oscillation, ever.
    #[test]
    fn constant_load_settles_after_one_action(policy in arb_policy(),
                                              queue in 0usize..500,
                                              start in 1usize..12) {
        let mut r = Reconciler::new(policy, start);
        let mut now = SimTime::ZERO;
        // Space ticks past the cooldown so fencing never masks a flap.
        let step = SimDuration::from_micros(policy.cooldown.as_micros() + 1_000_000);
        let mut actions = 0u32;
        let mut settled = r.desired();
        for tick in 0..12 {
            now += step;
            let current = r.desired();
            let decision = r.tick(now, &inputs(queue, current));
            if decision.acted() {
                actions += 1;
            }
            if tick == 0 {
                settled = r.desired();
            } else {
                prop_assert!(
                    matches!(decision, ScaleDecision::Hold),
                    "tick {tick} still moving under constant load: {decision:?}"
                );
                prop_assert_eq!(r.desired(), settled, "desired drifted after settling");
            }
        }
        prop_assert!(actions <= 1, "constant load took {actions} actions to settle");
    }
}

/// The live gauntlet: a sharded headend starts a job at the policy
/// floor, the queue forces a scale-up, a 100%-rate `airtime-revoked`
/// window evicts the whole membership mid-job, and low-grade `pna-crash`
/// churn runs throughout. The job must still complete with every task
/// accounted for, and the reconciler must have both grown the instance
/// and replaced the revoked capacity.
#[test]
fn elastic_sharded_headend_survives_revocation_and_churn() {
    let policy = AutoscalePolicy {
        min_size: 1,
        max_size: 4,
        slo_queue_depth: 4,
        cooldown: SimDuration::from_millis(250),
        ..AutoscalePolicy::default()
    };
    let live = LiveOddci::start(LiveConfig {
        nodes: 4,
        heartbeat_interval: Duration::from_millis(60),
        controller_tick: Duration::from_millis(80),
        faults: FaultPlan::parse("airtime-revoked=1.0@0.15..0.45,pna-crash=0.03:0.3@0..30")
            .expect("valid plan"),
        mode: HeadendMode::Sharded {
            shards: 2,
            dispatch: 2,
            batch: 4,
        },
        autoscale: Some(policy),
        autoscale_interval: Duration::from_millis(25),
        ..Default::default()
    });

    let image = AlignmentImage {
        db_len: 400_000,
        ..AlignmentImage::small_demo()
    };
    let outcome = live
        .run_alignment_job(image, 24, policy.min_size as u64, Duration::from_secs(120))
        .expect("job completes despite revocation and churn");
    assert_eq!(outcome.scores.len(), 24, "every task produced a score");

    let export = live
        .autoscale_state()
        .expect("autoscale config enables the reconciler");
    assert!(
        export.scale_ups >= 1,
        "24 queued tasks against slo_queue_depth=4 must force a scale-up: {export:?}"
    );
    let revocations = live
        .telemetry()
        .registry()
        .counter("faults.airtime_revoked")
        .get();
    assert!(
        revocations >= 1,
        "the 100%-rate window must revoke at least once"
    );
    assert!(
        export.replacements >= 1,
        "every revocation is answered by a Replace: {export:?}"
    );

    let report = live.shutdown();
    assert_eq!(
        report.tasks_unaccounted, 0,
        "zero task loss under reclamation"
    );
    assert_eq!(report.threads_failed, 0);
}
