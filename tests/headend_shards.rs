//! Integration tests of the sharded live headend: membership partitioning,
//! loss detection under sharding, and clean shutdown with full task
//! accounting.

use oddci::core::controller::ControllerOutput;
use oddci::core::{
    shard_of, ControllerPolicy, Heartbeat, InstanceRequest, PnaStateKind, ShardedController,
};
use oddci::live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use oddci::telemetry::{sink::read_jsonl_events, EventKind, StreamingSink, Telemetry, TraceSink};
use oddci::types::{DataSize, ImageId, NodeId, SimTime};
use std::time::Duration;

fn sharded_config(nodes: u64, shards: usize) -> LiveConfig {
    LiveConfig {
        nodes,
        heartbeat_interval: Duration::from_millis(60),
        controller_tick: Duration::from_millis(80),
        mode: HeadendMode::Sharded {
            shards,
            dispatch: 2,
            batch: 8,
        },
        ..Default::default()
    }
}

fn tiny_image() -> AlignmentImage {
    AlignmentImage {
        db_len: 20_000,
        ..AlignmentImage::small_demo()
    }
}

/// Every node belongs to exactly one shard, deterministically, and no
/// shard is starved: the membership function is a partition of the fleet.
#[test]
fn shard_membership_is_a_partition() {
    for shards in [1usize, 2, 4, 8, 64] {
        let mut owned = vec![0u64; shards];
        for n in 0..4096u64 {
            let s = shard_of(NodeId::new(n), shards);
            assert!(s < shards, "shard index out of range");
            assert_eq!(
                s,
                shard_of(NodeId::new(n), shards),
                "membership must be deterministic"
            );
            owned[s] += 1;
        }
        assert_eq!(owned.iter().sum::<u64>(), 4096, "no node dropped");
        for (i, &count) in owned.iter().enumerate() {
            assert!(count > 0, "shard {i}/{shards} owns no nodes");
        }
    }
}

/// A node that reappears claiming a *different* instance (PNA crash +
/// reboot inside the miss budget) must surface `NodeLost` for its old
/// membership even when controllers are sharded — the orphaned-task fix
/// must not regress under sharding.
#[test]
fn instance_transition_heartbeat_fires_node_lost_under_sharding() {
    let mut c = ShardedController::new(b"shard-test-key", ControllerPolicy::default(), 4);
    let request = InstanceRequest {
        image: ImageId::new(9),
        image_size: DataSize::from_megabytes(4),
        target: 8,
        requirements: Default::default(),
    };
    let (a, _) = c.create_instance(request, SimTime::ZERO);
    let (b, _) = c.create_instance(request, SimTime::ZERO);
    let hb = |inst, t| Heartbeat {
        node: NodeId::new(5),
        state: PnaStateKind::Busy,
        instance: Some(inst),
        sent_at: SimTime::from_secs(t),
    };
    c.on_heartbeat(hb(a, 1), SimTime::from_secs(1));
    let out = c.on_heartbeat(hb(b, 2), SimTime::from_secs(2));
    assert!(
        out.contains(&ControllerOutput::NodeLost {
            node: NodeId::new(5),
            instance: a,
        }),
        "expected NodeLost for the abandoned instance, got {out:?}"
    );
}

/// A sharded run completes jobs correctly at several shard counts: planted
/// homolog queries outscore random noise, proving the distributed
/// computation really ran through the sharded dispatch path.
#[test]
fn sharded_headend_completes_jobs_at_every_shard_count() {
    for shards in [1usize, 2, 8] {
        let live = LiveOddci::start(sharded_config(4, shards));
        let outcome = live
            .run_alignment_job(tiny_image(), 10, 3, Duration::from_secs(60))
            .unwrap_or_else(|| panic!("job completes with {shards} shards"));
        assert_eq!(outcome.scores.len(), 10, "{shards} shards");
        let planted_min = outcome
            .scores
            .iter()
            .filter(|(t, _)| t.raw() % 2 == 0)
            .map(|(_, &s)| s)
            .min()
            .unwrap();
        let noise_max = outcome
            .scores
            .iter()
            .filter(|(t, _)| t.raw() % 2 == 1)
            .map(|(_, &s)| s)
            .max()
            .unwrap();
        assert!(
            planted_min > noise_max,
            "{shards} shards: planted {planted_min} vs noise {noise_max}"
        );
        let report = live.shutdown();
        assert_eq!(report.tasks_unaccounted, 0, "{shards} shards");
    }
}

/// Shutdown joins every thread (the call only returns once carousel,
/// shards, dispatch workers and nodes are all joined) and the Backend's
/// final ledger accounts for every task of every job ever submitted.
#[test]
fn shutdown_joins_all_threads_with_no_task_unaccounted() {
    let live = LiveOddci::start(sharded_config(3, 4));
    for _ in 0..2 {
        live.run_alignment_job(tiny_image(), 6, 2, Duration::from_secs(60))
            .expect("job completes");
    }
    let report = live.shutdown();
    assert_eq!(report.tasks_unaccounted, 0);
}

/// Even a shutdown with no job ever submitted — and one racing an idle
/// fleet — is clean: no thread hangs, nothing leaks.
#[test]
fn idle_sharded_shutdown_is_clean() {
    let live = LiveOddci::start(sharded_config(2, 2));
    let report = live.shutdown();
    assert_eq!(report.tasks_unaccounted, 0);
}

/// Shutdown under an *active* streaming sink: the runtime flushes the
/// sink after joining every thread but before reporting
/// `tasks_unaccounted`, so by the time `shutdown()` returns the on-disk
/// trace is complete — the accounting identity holds, every span is
/// balanced, and `finish()` writes nothing further.
#[test]
fn shutdown_flushes_active_sink_before_reporting() {
    let path = std::env::temp_dir().join(format!(
        "oddci-shards-shutdown-{}.trace.jsonl",
        std::process::id()
    ));
    let shards = 4usize;
    let dispatch = 2usize;
    let sink = StreamingSink::builder()
        .jsonl(&path)
        .lanes(1 + shards + dispatch)
        .start()
        .expect("open shutdown stream");
    let mut cfg = sharded_config(3, shards);
    cfg.telemetry = Telemetry::recording().with_sink(sink.clone());
    let live = LiveOddci::start(cfg);
    live.run_alignment_job(tiny_image(), 8, 2, Duration::from_secs(60))
        .expect("job completes");

    let report = live.shutdown();
    assert_eq!(report.tasks_unaccounted, 0);

    // shutdown() already flushed: everything emitted is either durable or
    // counted as dropped, with nothing still in flight.
    let stats = sink.stats();
    assert_eq!(
        stats.emitted,
        stats.persisted + stats.dropped,
        "flush barrier must settle the accounting before shutdown returns"
    );
    assert_eq!(stats.dropped, 0, "this tiny run must not shed events");
    assert!(stats.emitted > 0, "the run produced events");

    // The file already holds every persisted event *before* finish(): the
    // final flush writes nothing new.
    let text = std::fs::read_to_string(&path).expect("trace readable after shutdown");
    let (_, events) = read_jsonl_events(&text).expect("trace parses after shutdown");
    assert_eq!(events.len() as u64, stats.persisted);

    let summary = sink.finish().expect("stream closes");
    assert_eq!(
        summary.stats.persisted, stats.persisted,
        "no events may be written after the shutdown flush"
    );
    let text_after = std::fs::read_to_string(&path).expect("trace readable after finish");
    let (_, events_after) = read_jsonl_events(&text_after).expect("trace parses after finish");
    let _ = std::fs::remove_file(&path);
    assert_eq!(events_after.len(), events.len());

    // Spans survive the multi-threaded run balanced per (track, phase).
    let mut opens: std::collections::HashMap<(u64, oddci::telemetry::Phase), i64> =
        std::collections::HashMap::new();
    for ev in &events_after {
        match ev.kind {
            EventKind::Begin => *opens.entry((ev.track, ev.phase)).or_insert(0) += 1,
            EventKind::End => *opens.entry((ev.track, ev.phase)).or_insert(0) -= 1,
            EventKind::Instant => {}
        }
    }
    assert!(
        opens.values().all(|&n| n == 0),
        "unbalanced spans in post-shutdown trace: {opens:?}"
    );
}
