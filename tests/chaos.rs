//! Chaos scenarios: every fault class the `oddci-faults` subsystem can
//! inject, exercised one at a time and in combination, always with the
//! same acceptance bar — **the job completes and every task is accounted
//! for**, faults are paid in retries/requeues/makespan, never in lost or
//! double-counted work.

use oddci::core::{World, WorldConfig};
use oddci::faults::{FaultClass, FaultPlan, FaultSpec};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;

mod common;
use common::fast_policy;

const TASKS: u64 = 120;

/// A small world with short control-plane intervals and the given plan.
fn chaos_config(plan: FaultPlan) -> WorldConfig {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 200;
    cfg.policy = fast_policy();
    cfg.controller_tick = SimDuration::from_secs(30);
    cfg.faults = plan;
    cfg
}

/// Runs one job under `plan` and returns the world's metrics snapshot
/// after asserting completion with all tasks accounted for.
fn run_job(plan: FaultPlan, seed: u64) -> oddci::core::world::MetricsSnapshot {
    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(1),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs(20),
        seed ^ 0x1234,
    )
    .generate(TASKS);
    let mut sim = World::simulation(chaos_config(plan), seed);
    let request = sim.submit_job(job, 50);
    let report = sim
        .run_request(request, SimTime::from_secs(14 * 24 * 3600))
        .expect("job completes under injected faults");
    assert_eq!(report.tasks_completed, TASKS, "all tasks accounted for");
    sim.world().metrics().snapshot()
}

#[test]
fn carousel_corruption_costs_extra_passes_not_tasks() {
    let plan = FaultPlan::none()
        .with(FaultSpec::new(FaultClass::CarouselCorruption, 0.3))
        .with(FaultSpec::new(FaultClass::CarouselTruncation, 0.1));
    let snap = run_job(plan, 101);
    assert!(
        snap.faults.carousel_corruptions > 0,
        "corruption fired: {:?}",
        snap.faults
    );
    assert!(snap.faults.carousel_truncations > 0, "truncation fired");
    // A failed read re-reads from the still-cycling carousel: joins happen.
    assert!(snap.joins > 0);
}

#[test]
fn direct_loss_bursts_are_retried_through() {
    let plan = FaultPlan::none().with(FaultSpec::new(FaultClass::DirectLoss, 0.25).magnitude(15.0));
    let snap = run_job(plan, 102);
    assert!(
        snap.faults.direct_losses > 0,
        "losses fired: {:?}",
        snap.faults
    );
    assert!(
        snap.task_fetch_retries > 0,
        "lost fetches retried with backoff: {snap:?}"
    );
}

#[test]
fn heartbeat_drops_stay_within_the_miss_budget_or_recover() {
    let plan = FaultPlan::none().with(FaultSpec::new(FaultClass::HeartbeatDrop, 0.3));
    let snap = run_job(plan, 103);
    assert!(
        snap.faults.heartbeat_drops > 0,
        "drops fired: {:?}",
        snap.faults
    );
    // Dropped beats can push nodes over the miss threshold; the Backend
    // re-queues and the Controller recomposes — work is never lost either way.
    assert!(snap.heartbeats_delivered > 0);
}

#[test]
fn pna_crashes_orphan_tasks_that_get_requeued() {
    let plan = FaultPlan::none().with(FaultSpec::new(FaultClass::PnaCrash, 0.05).magnitude(40.0));
    let snap = run_job(plan, 104);
    assert!(
        snap.faults.pna_crashes > 0,
        "crashes fired: {:?}",
        snap.faults
    );
    // A crash mid-task silently orphans it; the heartbeat-transition path
    // must hand it back to the queue.
    assert!(
        snap.tasks_orphaned == 0 || snap.requeues > 0,
        "orphaned work was re-queued: {snap:?}"
    );
}

#[test]
fn backend_stalls_delay_fetches_with_backoff() {
    let plan =
        FaultPlan::none().with(FaultSpec::new(FaultClass::BackendStall, 0.4).magnitude(15.0));
    let snap = run_job(plan, 105);
    assert!(
        snap.faults.backend_stalls > 0,
        "stalls fired: {:?}",
        snap.faults
    );
    assert!(
        snap.task_fetch_retries > 0,
        "stalled fetches retried with backoff: {snap:?}"
    );
}

#[test]
fn partitions_and_latency_spikes_are_survivable() {
    let plan = FaultPlan::none()
        .with(FaultSpec::new(FaultClass::Partition, 0.05).magnitude(25.0))
        .with(FaultSpec::new(FaultClass::LatencySpike, 0.2).magnitude(4.0));
    let snap = run_job(plan, 106);
    assert!(
        snap.faults.partitions > 0 || snap.faults.latency_spikes > 0,
        "network faults fired: {:?}",
        snap.faults
    );
}

/// The acceptance scenario: five classes at moderate rates, end to end.
#[test]
fn combined_moderate_faults_complete_with_visible_recovery() {
    let snap = run_job(FaultPlan::standard_mix(), 107);
    let distinct = FaultClass::ALL
        .iter()
        .filter(|&&c| snap.faults.get(c) > 0)
        .count();
    assert!(
        distinct >= 3,
        "at least three fault classes actually fired: {:?}",
        snap.faults
    );
    assert!(
        snap.requeues + snap.task_fetch_retries > 0,
        "recovery machinery visible in the snapshot: {snap:?}"
    );
}

/// Identical seed and identical plan ⇒ identical run; a different plan
/// under the same seed diverges.
#[test]
fn same_seed_same_plan_is_deterministic() {
    let run = |plan: FaultPlan, seed| {
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(500),
            DataSize::from_bytes(500),
            SimDuration::from_secs(20),
            7,
        )
        .generate(TASKS);
        let mut sim = World::simulation(chaos_config(plan), seed);
        let request = sim.submit_job(job, 50);
        let report = sim
            .run_request(request, SimTime::from_secs(14 * 24 * 3600))
            .expect("completes");
        (
            report.makespan,
            sim.events_processed(),
            sim.world().metrics().snapshot(),
        )
    };
    let a = run(FaultPlan::standard_mix(), 42);
    let b = run(FaultPlan::standard_mix(), 42);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);

    let calm = run(FaultPlan::none(), 42);
    assert_ne!(a.2.faults, calm.2.faults, "plans actually change the run");
}
