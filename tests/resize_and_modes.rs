//! Instance resizing (§3.2) and the usage-mode heterogeneity effect.

use oddci::core::{World, WorldConfig};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;

mod common;
use common::fast_policy;

fn long_job(seed: u64) -> oddci::workload::Job {
    // Hour-long tasks keep the instance stable while we resize it.
    JobGenerator::homogeneous(
        DataSize::from_megabytes(1),
        DataSize::from_bytes(200),
        DataSize::from_bytes(200),
        SimDuration::from_secs(3_600),
        seed,
    )
    .generate(50_000)
}

#[test]
fn grow_then_shrink_a_running_instance() {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 1_000;
    cfg.policy = fast_policy();
    cfg.controller_tick = SimDuration::from_secs(15);
    let mut sim = World::simulation(cfg, 91);
    let request = sim.submit_job(long_job(92), 100);

    // Let the 100-node instance form.
    sim.run_until(SimTime::from_secs(1_200));
    let inst = sim.world().provider().instance_of(request).unwrap();
    let formed = sim.world().controller().instance_size(inst);
    assert!((90..=100).contains(&formed), "formed at {formed}");

    // Grow to 300: the next recomposition tick broadcasts a top-up wakeup.
    sim.resize_request(request, 300).unwrap();
    sim.run_until(SimTime::from_secs(2_400));
    let grown = sim.world().controller().instance_size(inst);
    assert!((270..=300).contains(&grown), "grew to {grown}");

    // Shrink to 50: heartbeat replies trim the excess within a couple of
    // heartbeat intervals.
    sim.resize_request(request, 50).unwrap();
    sim.run_until(SimTime::from_secs(3_600));
    let shrunk = sim.world().controller().instance_size(inst);
    assert!(shrunk <= 50, "shrunk to {shrunk}");
    assert!(shrunk >= 45, "did not collapse: {shrunk}");
}

#[test]
fn resize_unknown_request_errors() {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 10;
    let mut sim = World::simulation(cfg, 1);
    assert!(sim
        .resize_request(oddci::core::ProviderRequest(99), 5)
        .is_err());
}

/// The usage-mode mix caps throughput below the homogeneous model: an
/// all-standby audience outperforms a 50% in-use audience by ≈ the
/// 1/(0.5 + 0.5/1.65) ≈ 1.24 factor the compute calibration predicts.
#[test]
fn in_use_mix_costs_throughput_as_calibrated() {
    let run = |in_use_fraction: f64| {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 400;
        cfg.policy = fast_policy();
        cfg.in_use_fraction = in_use_fraction;
        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(200),
            DataSize::from_bytes(200),
            SimDuration::from_secs(120),
            7,
        )
        .generate(2_000);
        let mut sim = World::simulation(cfg, 55);
        let request = sim.submit_job(job, 100);
        sim.run_request(request, SimTime::from_secs(30 * 24 * 3600))
            .expect("completes")
            .makespan
            .as_secs_f64()
    };
    let standby_only = run(0.0);
    let mixed = run(0.5);
    let ratio = mixed / standby_only;
    // Expected slowdown ≈ 1 / (0.5 + 0.5/1.65) ≈ 1.245. Allow slack for
    // bag-scheduling effects (fast nodes absorb more tasks) and wakeup
    // overhead diluting the compute-bound part.
    assert!(
        (1.05..1.35).contains(&ratio),
        "mixed/standby makespan ratio {ratio:.3} outside the calibrated band"
    );
}
