//! Integration tests of the live thread-based runtime.

use oddci::live::{AlignmentImage, LiveConfig, LiveOddci};
use std::time::Duration;

fn small_config(nodes: u64) -> LiveConfig {
    LiveConfig {
        nodes,
        heartbeat_interval: Duration::from_millis(60),
        controller_tick: Duration::from_millis(80),
        ..Default::default()
    }
}

fn tiny_image() -> AlignmentImage {
    AlignmentImage {
        db_len: 20_000,
        ..AlignmentImage::small_demo()
    }
}

#[test]
fn live_job_completes_and_scores_separate() {
    let live = LiveOddci::start(small_config(4));
    let outcome = live
        .run_alignment_job(tiny_image(), 10, 3, Duration::from_secs(60))
        .expect("live job completes");
    assert_eq!(outcome.scores.len(), 10);
    assert_eq!(outcome.report.tasks_completed, 10);
    // Planted homologs (even task ids) must outscore random noise (odd).
    let planted_min = outcome
        .scores
        .iter()
        .filter(|(t, _)| t.raw() % 2 == 0)
        .map(|(_, &s)| s)
        .min()
        .unwrap();
    let noise_max = outcome
        .scores
        .iter()
        .filter(|(t, _)| t.raw() % 2 == 1)
        .map(|(_, &s)| s)
        .max()
        .unwrap();
    assert!(
        planted_min > noise_max,
        "planted_min={planted_min} noise_max={noise_max}"
    );
    live.shutdown();
}

#[test]
fn two_jobs_back_to_back() {
    let live = LiveOddci::start(small_config(4));
    let a = live
        .run_alignment_job(tiny_image(), 6, 2, Duration::from_secs(60))
        .expect("first job");
    let b = live
        .run_alignment_job(
            AlignmentImage {
                db_seed: 0xFEED,
                ..tiny_image()
            },
            6,
            2,
            Duration::from_secs(60),
        )
        .expect("second job");
    assert_eq!(a.report.tasks_completed, 6);
    assert_eq!(b.report.tasks_completed, 6);
    assert_ne!(
        a.report.instance, b.report.instance,
        "fresh instance per job"
    );
    live.shutdown();
}

#[test]
fn single_node_system_works() {
    let live = LiveOddci::start(small_config(1));
    let outcome = live
        .run_alignment_job(tiny_image(), 4, 1, Duration::from_secs(60))
        .expect("single node grinds through the bag");
    assert_eq!(outcome.report.tasks_completed, 4);
    live.shutdown();
}

#[test]
fn shutdown_is_clean_even_when_idle() {
    let live = LiveOddci::start(small_config(3));
    // Never submit anything; shutdown must still join every thread.
    std::thread::sleep(Duration::from_millis(200));
    live.shutdown();
}
