//! Telemetry integration: a small world run must emit a well-formed
//! Chrome trace, and turning the recorder on must not change a single
//! reported metric.

use oddci::core::{World, WorldConfig};
use oddci::telemetry::{export, Telemetry};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;
use serde_json::Value;
use std::collections::HashMap;

mod common;
use common::fast_policy;

fn small_world(tele: Telemetry) -> WorldConfig {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 80;
    cfg.policy = fast_policy();
    cfg.controller_tick = SimDuration::from_secs(15);
    cfg.telemetry = tele;
    cfg
}

fn run_small(tele: Telemetry) -> oddci::core::world::MetricsSnapshot {
    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(1),
        DataSize::from_bytes(400),
        DataSize::from_bytes(400),
        SimDuration::from_secs(20),
        7,
    )
    .generate(60);
    let mut sim = World::simulation(small_world(tele), 42);
    let request = sim.submit_job(job, 25);
    sim.run_request(request, SimTime::from_secs(24 * 3600))
        .expect("small world completes");
    sim.world().metrics().snapshot()
}

#[test]
fn small_run_emits_well_formed_chrome_trace() {
    let tele = Telemetry::recording();
    run_small(tele.clone());

    let trace = export::chrome_trace(&tele.events());
    let doc: Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let rows = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(rows.len() > 100, "a real run produces many events");

    // Timestamps are monotonic across the exported stream (metadata rows
    // carry no ts and are skipped).
    let mut last_ts = 0u64;
    let mut opens: HashMap<(u64, String), u64> = HashMap::new();
    let mut phases_seen: Vec<String> = Vec::new();
    for row in rows {
        let ph = row["ph"].as_str().expect("ph field");
        if ph == "M" {
            continue;
        }
        let ts = row["ts"].as_u64().expect("ts field");
        assert!(ts >= last_ts, "timestamps sorted: {ts} after {last_ts}");
        last_ts = ts;

        let tid = row["tid"].as_u64().expect("tid field");
        let name = row["name"].as_str().expect("name field").to_string();
        phases_seen.push(name.clone());
        match ph {
            "B" => *opens.entry((tid, name)).or_insert(0) += 1,
            "E" => {
                let open = opens.entry((tid, name.clone())).or_insert(0);
                assert!(*open > 0, "E without matching B for {name} on tid {tid}");
                *open -= 1;
            }
            "i" => {}
            other => panic!("unexpected event type {other:?}"),
        }
    }
    assert!(
        opens.values().all(|&n| n == 0),
        "every B has a matching E: {opens:?}"
    );

    // The span tree covers the full paper lifecycle: wakeup → DVE boot →
    // task fetch → compute → result upload → heartbeat.
    for required in [
        "carousel.publish",
        "wakeup.wait",
        "dve.boot",
        "task.fetch",
        "task.compute",
        "task.upload",
        "heartbeat",
        "job.run",
    ] {
        assert!(
            phases_seen.iter().any(|p| p == required),
            "lifecycle phase {required} missing from trace"
        );
    }
}

#[test]
fn recording_does_not_change_reported_metrics() {
    let off = run_small(Telemetry::disabled());
    let on = run_small(Telemetry::recording());
    assert_eq!(off, on, "telemetry on/off must not alter MetricsSnapshot");
}

/// One bench-scale run (the X7 calm baseline: 500 receivers, 300×60 s
/// tasks, 100-node instance) under the given telemetry handle.
fn run_bench_scale(tele: Telemetry) {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 500;
    cfg.controller_tick = SimDuration::from_secs(30);
    cfg.telemetry = tele;
    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(2),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs(60),
        23,
    )
    .generate(300);
    let mut sim = World::simulation(cfg, 2024);
    let request = sim.submit_job(job, 100);
    sim.run_request(request, SimTime::from_secs(60 * 24 * 3600))
        .expect("bench-scale world completes");
}

/// Wall-clock cost of the event recorder, measured at bench scale.
/// Ignored by default (timing is machine-dependent); run manually to
/// re-measure:
/// `cargo test --release --test telemetry_trace -- --ignored --nocapture`
#[test]
#[ignore = "manual timing measurement"]
fn recorder_overhead_measurement() {
    use std::time::Instant;
    run_bench_scale(Telemetry::disabled()); // warm-up

    // Interleave on/off reps so allocator warm-up and frequency scaling
    // hit both sides equally.
    const REPS: u32 = 5;
    let mut off = std::time::Duration::ZERO;
    let mut on = std::time::Duration::ZERO;
    for _ in 0..REPS {
        let t = Instant::now();
        run_bench_scale(Telemetry::disabled());
        off += t.elapsed();
        let t = Instant::now();
        run_bench_scale(Telemetry::recording());
        on += t.elapsed();
    }
    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!(
        "recorder off: {off:?}  on: {on:?}  overhead: {:+.2}%",
        overhead * 100.0
    );
}
