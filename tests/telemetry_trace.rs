//! Telemetry integration: a small world run must emit a well-formed
//! Chrome trace, and turning the recorder on must not change a single
//! reported metric.

use oddci::core::{World, WorldConfig};
use oddci::telemetry::sink::read_jsonl_events;
use oddci::telemetry::{export, Event, EventKind, Phase, StreamingSink, Telemetry, TraceSink};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;
use proptest::prelude::*;
use serde_json::Value;
use std::collections::HashMap;

mod common;
use common::fast_policy;

fn small_world(tele: Telemetry) -> WorldConfig {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 80;
    cfg.policy = fast_policy();
    cfg.controller_tick = SimDuration::from_secs(15);
    cfg.telemetry = tele;
    cfg
}

fn run_small(tele: Telemetry) -> oddci::core::world::MetricsSnapshot {
    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(1),
        DataSize::from_bytes(400),
        DataSize::from_bytes(400),
        SimDuration::from_secs(20),
        7,
    )
    .generate(60);
    let mut sim = World::simulation(small_world(tele), 42);
    let request = sim.submit_job(job, 25);
    sim.run_request(request, SimTime::from_secs(24 * 3600))
        .expect("small world completes");
    sim.world().metrics().snapshot()
}

#[test]
fn small_run_emits_well_formed_chrome_trace() {
    let tele = Telemetry::recording();
    run_small(tele.clone());

    let trace = export::chrome_trace(&tele.events());
    let doc: Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let rows = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(rows.len() > 100, "a real run produces many events");

    // Timestamps are monotonic across the exported stream (metadata rows
    // carry no ts and are skipped).
    let mut last_ts = 0u64;
    let mut opens: HashMap<(u64, String), u64> = HashMap::new();
    let mut phases_seen: Vec<String> = Vec::new();
    for row in rows {
        let ph = row["ph"].as_str().expect("ph field");
        if ph == "M" {
            continue;
        }
        let ts = row["ts"].as_u64().expect("ts field");
        assert!(ts >= last_ts, "timestamps sorted: {ts} after {last_ts}");
        last_ts = ts;

        let tid = row["tid"].as_u64().expect("tid field");
        let name = row["name"].as_str().expect("name field").to_string();
        phases_seen.push(name.clone());
        match ph {
            "B" => *opens.entry((tid, name)).or_insert(0) += 1,
            "E" => {
                let open = opens.entry((tid, name.clone())).or_insert(0);
                assert!(*open > 0, "E without matching B for {name} on tid {tid}");
                *open -= 1;
            }
            "i" => {}
            other => panic!("unexpected event type {other:?}"),
        }
    }
    assert!(
        opens.values().all(|&n| n == 0),
        "every B has a matching E: {opens:?}"
    );

    // The span tree covers the full paper lifecycle: wakeup → DVE boot →
    // task fetch → compute → result upload → heartbeat.
    for required in [
        "carousel.publish",
        "wakeup.wait",
        "dve.boot",
        "task.fetch",
        "task.compute",
        "task.upload",
        "heartbeat",
        "job.run",
    ] {
        assert!(
            phases_seen.iter().any(|p| p == required),
            "lifecycle phase {required} missing from trace"
        );
    }
}

#[test]
fn recording_does_not_change_reported_metrics() {
    let off = run_small(Telemetry::disabled());
    let on = run_small(Telemetry::recording());
    assert_eq!(off, on, "telemetry on/off must not alter MetricsSnapshot");
}

/// One bench-scale run (the X7 calm baseline: 500 receivers, 300×60 s
/// tasks, 100-node instance) under the given telemetry handle.
fn run_bench_scale(tele: Telemetry) {
    let mut cfg = WorldConfig::default();
    cfg.nodes = 500;
    cfg.controller_tick = SimDuration::from_secs(30);
    cfg.telemetry = tele;
    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(2),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs(60),
        23,
    )
    .generate(300);
    let mut sim = World::simulation(cfg, 2024);
    let request = sim.submit_job(job, 100);
    sim.run_request(request, SimTime::from_secs(60 * 24 * 3600))
        .expect("bench-scale world completes");
}

/// Fixed event sequence covering every row shape the Chrome exporters
/// produce: a control-track instant, node spans (nested scopes), plain
/// instants and multiple tracks, in timestamp order.
fn golden_events() -> Vec<Event> {
    let ev = |ts_us, phase, kind, track, scope| Event {
        ts_us,
        phase,
        kind,
        track,
        scope,
    };
    use oddci::telemetry::CONTROL_TRACK;
    use EventKind::{Begin, End, Instant};
    vec![
        ev(0, Phase::CarouselPublish, Instant, CONTROL_TRACK, 1),
        ev(100, Phase::WakeupWait, Begin, 3, 1),
        ev(2_100, Phase::WakeupWait, End, 3, 1),
        ev(2_100, Phase::PnaAccept, Instant, 3, 1),
        ev(2_200, Phase::DveBoot, Begin, 3, 1),
        ev(5_200, Phase::DveBoot, End, 3, 1),
        ev(5_300, Phase::TaskFetch, Begin, 7, 2),
        ev(5_400, Phase::TaskFetch, End, 7, 2),
        ev(5_400, Phase::Compute, Begin, 7, 2),
        ev(9_400, Phase::Compute, End, 7, 2),
        ev(9_450, Phase::Heartbeat, Instant, 7, 0),
        ev(9_500, Phase::ResultUpload, Begin, 7, 2),
        ev(9_900, Phase::ResultUpload, End, 7, 2),
        ev(10_000, Phase::JobRun, End, CONTROL_TRACK, 1),
    ]
}

/// Strips run-stamp fields from a streamed Chrome doc's `otherData`
/// (scenario/seed/... vary per run) but keeps the format stamp.
fn normalize_stream_doc(doc: Value) -> Value {
    match doc {
        Value::Object(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| {
                    if k == "otherData" {
                        let kept = match v {
                            Value::Object(inner) => Value::Object(
                                inner
                                    .into_iter()
                                    .filter(|(ik, _)| ik == "oddci_stream")
                                    .collect(),
                            ),
                            other => other,
                        };
                        (k, kept)
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        other => other,
    }
}

/// Compares `actual` (already normalized) against the checked-in golden
/// file; `ODDCI_BLESS=1` rewrites the golden instead.
fn assert_matches_golden(name: &str, actual: &Value) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    let rendered = serde_json::to_string(actual).expect("golden doc serializes");
    if std::env::var("ODDCI_BLESS").is_ok_and(|v| v != "0" && !v.is_empty()) {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, format!("{rendered}\n")).expect("write golden");
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); run with ODDCI_BLESS=1 to generate")
    });
    let golden: Value = serde_json::from_str(&golden_text).expect("golden parses");
    assert_eq!(
        actual, &golden,
        "{name} drifted from the checked-in golden; \
         if the change is intentional re-bless with ODDCI_BLESS=1"
    );
}

/// The batch Chrome exporter's output is locked to a golden file: any
/// change to row fields, metadata rows or document framing must be
/// deliberate (re-blessed), not accidental.
#[test]
fn chrome_batch_exporter_matches_golden() {
    let trace = export::chrome_trace(&golden_events());
    let doc: Value = serde_json::from_str(&trace).expect("batch trace parses");
    assert_matches_golden("chrome_batch.json", &doc);
}

/// Same for the streamed Chrome writer: one lane keeps the drain order
/// deterministic, and run-stamp meta is stripped before comparing.
#[test]
fn chrome_stream_writer_matches_golden() {
    let path = temp_trace_path();
    let chrome_path = path.with_extension("stream.json");
    let sink = StreamingSink::builder()
        .chrome(&chrome_path)
        .lanes(1)
        .meta("scenario", "golden")
        .meta("seed", "42")
        .start()
        .expect("open golden stream");
    for ev in golden_events() {
        assert!(sink.offer(ev, Some(0)), "golden events never dropped");
    }
    sink.finish().expect("golden stream closes");
    let text = std::fs::read_to_string(&chrome_path).expect("read golden stream");
    let _ = std::fs::remove_file(&chrome_path);
    let doc: Value = serde_json::from_str(&text).expect("streamed trace parses");
    // The stamp must be present before normalization strips its peers.
    assert!(
        doc["otherData"]["oddci_stream"].as_u64().is_some()
            || doc["otherData"]["oddci_stream"].as_str().is_some()
    );
    assert_matches_golden("chrome_stream.json", &normalize_stream_doc(doc));
}

/// Fresh temp-file path per proptest case (cases run concurrently).
fn temp_trace_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "oddci-prop-{}-{}.trace.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One generated emission: phase index, track, scope, span-vs-instant,
/// start timestamp and (for spans) duration.
type Op = (usize, u64, u64, bool, u64, u64);

fn emit_ops(tele: &Telemetry, ops: &[Op]) -> u64 {
    let mut emitted = 0u64;
    for &(p, track, scope, is_span, t0, dur) in ops {
        let phase = Phase::ALL[p];
        if is_span {
            tele.span(t0, t0 + dur, phase, track, scope);
            emitted += 2;
        } else {
            tele.instant(t0, phase, track, scope);
            emitted += 1;
        }
    }
    emitted
}

fn event_key(ev: &Event) -> (u64, Phase, EventKind, u64, u64) {
    (ev.ts_us, ev.phase, ev.kind, ev.track, ev.scope)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..Phase::COUNT,
        0u64..6,
        0u64..4,
        any::<bool>(),
        0u64..1_000_000,
        1u64..5_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariants for arbitrary event sequences and ring
    /// capacities: the streamed artifact is a superset of whatever the
    /// ring still holds, every Begin has its End per (track, phase), and
    /// `emitted == persisted + dropped` holds exactly (zero drops at the
    /// default lane capacity).
    #[test]
    fn streamed_trace_is_superset_with_exact_accounting(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        cap_pow in 1u32..10,
    ) {
        // Ring capacity 2..=512, frequently smaller than the emitted
        // count, so the ring routinely wraps while the stream must not.
        let capacity = 1usize << cap_pow;
        let path = temp_trace_path();
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(3)
            .start()
            .expect("open stream");
        let tele = Telemetry::recording_with_capacity(capacity).with_sink(sink.clone());
        let emitted = emit_ops(&tele, &ops);
        let ring = tele.events();
        let summary = sink.finish().expect("stream closes");
        let text = std::fs::read_to_string(&path).expect("read stream back");
        let _ = std::fs::remove_file(&path);

        let stats = summary.stats;
        prop_assert_eq!(stats.emitted, emitted);
        prop_assert_eq!(stats.emitted, stats.persisted + stats.dropped);
        prop_assert_eq!(stats.dropped, 0, "default lane capacity never drops here");
        prop_assert_eq!(tele.events_dropped(), stats.dropped);

        let (header, streamed) = read_jsonl_events(&text)
            .map_err(|e| format!("bad stream: {e}"))?;
        prop_assert_eq!(header.clock, "us");
        prop_assert_eq!(streamed.len() as u64, stats.persisted);

        // Multiset superset: every event the ring retained is on disk at
        // least as many times.
        let mut stream_counts: HashMap<_, i64> = HashMap::new();
        for ev in &streamed {
            *stream_counts.entry(event_key(ev)).or_insert(0) += 1;
        }
        for ev in &ring {
            let n = stream_counts.entry(event_key(ev)).or_insert(0);
            prop_assert!(*n > 0, "ring event {ev:?} missing from streamed trace");
            *n -= 1;
        }

        // Begin/End balance per (track, phase) — spans tee both halves.
        let mut opens: HashMap<(u64, Phase), i64> = HashMap::new();
        for ev in &streamed {
            match ev.kind {
                EventKind::Begin => *opens.entry((ev.track, ev.phase)).or_insert(0) += 1,
                EventKind::End => *opens.entry((ev.track, ev.phase)).or_insert(0) -= 1,
                EventKind::Instant => {}
            }
        }
        prop_assert!(
            opens.values().all(|&n| n == 0),
            "unbalanced Begin/End in streamed trace: {opens:?}"
        );
    }

    /// With deliberately tiny lanes the sink may shed load, but the
    /// accounting identity stays exact: the file holds precisely the
    /// persisted events and `telemetry.events_dropped` equals the sink's
    /// drop counter equals `emitted - persisted`.
    #[test]
    fn tiny_lanes_account_for_every_dropped_event(
        ops in proptest::collection::vec(op_strategy(), 50..250),
    ) {
        let path = temp_trace_path();
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(1)
            .lane_capacity(2)
            .start()
            .expect("open stream");
        let tele = Telemetry::recording_with_capacity(16).with_sink(sink.clone());
        let emitted = emit_ops(&tele, &ops);
        let summary = sink.finish().expect("stream closes");
        let text = std::fs::read_to_string(&path).expect("read stream back");
        let _ = std::fs::remove_file(&path);

        let stats = summary.stats;
        prop_assert_eq!(stats.emitted, emitted);
        prop_assert_eq!(stats.persisted + stats.dropped, emitted);
        prop_assert_eq!(tele.events_dropped(), stats.dropped);
        let (_, streamed) = read_jsonl_events(&text)
            .map_err(|e| format!("bad stream: {e}"))?;
        prop_assert_eq!(streamed.len() as u64, stats.persisted);
        // The per-phase drop breakdown sums to the total.
        let by_phase: u64 = sink.dropped_by_phase().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(by_phase, stats.dropped);
    }
}

/// Wall-clock cost of the event recorder, measured at bench scale.
/// Ignored by default (timing is machine-dependent); run manually to
/// re-measure:
/// `cargo test --release --test telemetry_trace -- --ignored --nocapture`
#[test]
#[ignore = "manual timing measurement"]
fn recorder_overhead_measurement() {
    use std::time::Instant;
    run_bench_scale(Telemetry::disabled()); // warm-up

    // Interleave on/off reps so allocator warm-up and frequency scaling
    // hit both sides equally.
    const REPS: u32 = 5;
    let mut off = std::time::Duration::ZERO;
    let mut on = std::time::Duration::ZERO;
    for _ in 0..REPS {
        let t = Instant::now();
        run_bench_scale(Telemetry::disabled());
        off += t.elapsed();
        let t = Instant::now();
        run_bench_scale(Telemetry::recording());
        on += t.elapsed();
    }
    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!(
        "recorder off: {off:?}  on: {on:?}  overhead: {:+.2}%",
        overhead * 100.0
    );
}
