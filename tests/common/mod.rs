//! Shared helpers for the workspace integration tests.

use oddci::core::ControllerPolicy;
use oddci::types::{HeartbeatConfig, SimDuration};

/// A Controller policy with short intervals so integration tests converge
/// in few simulated minutes instead of hours.
pub fn fast_policy() -> ControllerPolicy {
    ControllerPolicy {
        heartbeat: HeartbeatConfig {
            interval: SimDuration::from_secs(15),
            miss_threshold: 3,
            message_bytes: 128,
        },
        sizing_slack: 1.0,
        recompose_threshold: 0.95,
        assumed_audience: 0, // overwritten by WorldConfig
        recompose_requires_idle: false,
    }
}
