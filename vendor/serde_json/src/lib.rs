//! Offline stand-in for `serde_json`.
//!
//! Renders the serde stand-in's [`Value`] tree to JSON text and parses
//! JSON text back into it. Covers the workspace's surface: artifact
//! writing (`to_string_pretty`), CLI `--json` output (`json!`), and
//! test-side parsing (`from_str`).

#![forbid(unsafe_code)]

pub use serde::{Number, Value};

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// A serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

/// Rebuilds a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                // Keep floats recognizably floats in the output.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error::new(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Validate only
                    // this scalar's bytes: validating the whole remaining
                    // buffer here made string parsing O(n²) per document.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8 in string")),
                    };
                    let scalar = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    let c = std::str::from_utf8(scalar)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?
                        .chars()
                        .next()
                        .expect("non-empty validated scalar");
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::F(text.parse::<f64>().map_err(|e| Error::new(format!("bad float: {e}")))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            Number::I(text.parse::<i64>().map_err(|e| Error::new(format!("bad int: {e}")))?)
        } else {
            Number::U(text.parse::<u64>().map_err(|e| Error::new(format!("bad int: {e}")))?)
        };
        Ok(Value::Number(number))
    }
}

/// Builds a [`Value`] literal. Supports objects, arrays, `null`, and
/// arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::__json_object!(__entries; $($entries)*);
        $crate::Value::Object(__entries)
    }};
    ([ $($items:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::__json_array!(__items; $($items)*);
        $crate::Value::Array(__items)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}

/// Internal muncher for `json!` object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($entries:ident;) => {};
    ($entries:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::Value::Null));
        $crate::__json_object!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::json!({ $($inner)* })));
        $crate::__json_object!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::json!([ $($inner)* ])));
        $crate::__json_object!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $entries.push((($key).to_string(), $crate::json!($value)));
        $crate::__json_object!($entries; $($rest)*);
    };
    ($entries:ident; $key:literal : $value:expr) => {
        $entries.push((($key).to_string(), $crate::json!($value)));
    };
}

/// Internal muncher for `json!` array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($items:ident;) => {};
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::__json_array!($items; $($($rest)*)?);
    };
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::__json_array!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::__json_array!($items; $($($rest)*)?);
    };
    ($items:ident; $value:expr , $($rest:tt)*) => {
        $items.push($crate::json!($value));
        $crate::__json_array!($items; $($rest)*);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::json!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = json!({
            "name": "oddci",
            "count": 3,
            "ratio": 0.5,
            "neg": -7,
            "flag": true,
            "nothing": null,
            "list": [1, 2, 3],
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["count"], 3);
        assert_eq!(back["ratio"], 0.5);
        assert_eq!(back["neg"], -7);
        assert_eq!(back["name"], "oddci");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\nb\t\"c\" é"}"#).unwrap();
        assert_eq!(v["s"], "a\nb\t\"c\" é");
    }

    #[test]
    fn parses_two_three_and_four_byte_scalars() {
        // One scalar per UTF-8 width, exercising the length-dispatched
        // fast path (the old path validated the whole remaining buffer
        // per character, which was quadratic).
        let v: Value = from_str(r#""é € 🚀""#).unwrap();
        assert_eq!(v, "é € 🚀");
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let text = to_string(&json!({"x": 2.0})).unwrap();
        assert!(text.contains("2.0"), "{text}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{nope}").is_err());
        assert!(from_str::<Value>("[1, 2,").is_err());
    }
}
