//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<[u8]>`. Unlike upstream it has no zero-copy slicing, which this
//! workspace never uses.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// An immutable shared byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice (copied; upstream borrows it).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies an arbitrary slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let s = Bytes::from_static(b"hello");
        assert_eq!(&s[..2], b"he");
        assert_eq!(s.clone(), s);
    }
}
