//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` MPMC API over `std::sync` primitives
//! with faithful disconnect semantics: `send` fails once every receiver is
//! gone, `recv` fails once every sender is gone and the queue has drained.
//! `bounded` channels never block on send (the capacity is advisory) —
//! the workspace only uses them as one-shot reply slots.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel poisoned");
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Iterator draining whatever is queued right now (non-blocking).
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.state.lock().expect("channel poisoned").queue.is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.state.lock().expect("channel poisoned").queue.len()
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    fn new_channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel()
    }

    /// A "bounded" MPMC channel. The capacity is advisory in this
    /// stand-in: sends never block.
    pub fn bounded<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_channel()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_disconnects_when_senders_gone() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout_expires_on_empty_channel() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(1);
            let handle = std::thread::spawn(move || tx.send(41).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(41));
            handle.join().unwrap();
        }
    }
}
