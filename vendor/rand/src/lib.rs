//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this minimal implementation. It covers exactly the API
//! surface the OddCI reproduction uses: `Rng::{random, random_range,
//! random_bool}`, `SeedableRng::seed_from_u64`, and `rngs::SmallRng`.
//!
//! The generator is a splitmix64 counter stream — statistically sound for
//! simulation workloads (and for the repo's statistical unit tests), not
//! bit-compatible with upstream `SmallRng` and not cryptographic.

#![forbid(unsafe_code)]

/// Low-level uniform-bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random ([`Rng::random`]).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for i128 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        u128::draw(rng) as i128
    }
}

impl StandardUniform for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`. The single
/// generic [`SampleRange`] impl below keeps integer-literal inference
/// working the way upstream `rand` does (`range: Range<T>` pins `T`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl RngCore + ?Sized))
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut (impl RngCore + ?Sized),
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128
                    + u128::from(inclusive);
                let offset = (u128::from(rng.next_u64()) % span) as $wide;
                (lo as $wide).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_between(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Self {
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Self {
        lo + f32::draw(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy — here a fixed arbitrary seed,
    /// since the stand-in targets deterministic simulations only.
    fn from_os_rng() -> Self {
        Self::seed_from_u64(0x6f64_6463_695f_7365)
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Generator namespaces, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small fast generator: a splitmix64-scrambled Weyl sequence.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            splitmix64(self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: splitmix64(seed) }
        }
    }

    /// Alias so `StdRng` call sites keep compiling; same generator.
    pub type StdRng = SmallRng;
}

/// Distribution traits namespace (subset).
pub mod distr {
    pub use super::{SampleRange, StandardUniform};
}

/// The commonly-imported prelude.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_streams() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.random_range(0..4usize);
            assert!(i < 4);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
