//! Offline stand-in for `serde_derive`.
//!
//! The workspace's serde stand-in models serialization as conversion to and
//! from a single [`serde::Value`] tree, so the derives here emit
//! `impl serde::Serialize` / `impl serde::Deserialize` in terms of
//! `to_value` / `from_value`. The macro is written against raw
//! `proc_macro::TokenStream` (no `syn`/`quote` in the offline container):
//! it parses the item shape by hand and assembles the impl as source text.
//!
//! Supported shapes — everything this workspace derives on:
//! - structs with named fields (object), honoring `#[serde(transparent)]`
//!   and per-field `#[serde(default)]` (a missing key deserializes via
//!   `Default` instead of erroring — version-tolerant payloads)
//! - tuple structs: arity 1 is a newtype (inner value), arity ≥2 an array
//! - unit structs (null)
//! - enums, externally tagged: unit variants as strings, newtype variants
//!   as `{"Variant": value}`, tuple variants as `{"Variant": [..]}`,
//!   struct variants as `{"Variant": {..}}`
//!
//! Generics are intentionally unsupported (the workspace derives none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    NamedStruct { name: String, fields: Vec<Field>, transparent: bool },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// One named field and the `#[serde(...)]` switches it carries.
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing key deserializes via `Default`.
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("serde_derive: generated impl must parse")
}

// ---------------------------------------------------------------- parsing

/// The `#[serde(...)]` switches this stand-in honors.
#[derive(Clone, Copy, Default)]
struct SerdeAttrs {
    transparent: bool,
    default: bool,
}

/// The serde switches named inside one `#[serde(...)]` attribute group
/// (the group content, i.e. the tokens between the brackets).
fn serde_attrs(group: &proc_macro::Group) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return attrs,
    }
    if let Some(TokenTree::Group(inner)) = tokens.next() {
        for tree in inner.stream() {
            if let TokenTree::Ident(i) = &tree {
                match i.to_string().as_str() {
                    "transparent" => attrs.transparent = true,
                    "default" => attrs.default = true,
                    _ => {}
                }
            }
        }
    }
    attrs
}

/// Consumes a run of `#[...]` attributes from the front of `tokens`,
/// returning the union of serde switches they named.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> SerdeAttrs {
    let mut acc = SerdeAttrs::default();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let attrs = serde_attrs(&g);
                        acc.transparent |= attrs.transparent;
                        acc.default |= attrs.default;
                    }
                    other => panic!("serde_derive: expected [...] after '#', got {other:?}"),
                }
            }
            _ => return acc,
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let transparent = skip_attrs(&mut tokens).transparent;
    skip_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum keyword, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item::NamedStruct { name, fields, transparent }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parses `field: Type, ...` field names (with their serde switches),
/// skipping visibility and the types themselves (commas inside `<...>` or
/// nested groups do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => return fields,
            Some(TokenTree::Ident(i)) => fields.push(Field {
                name: i.to_string(),
                default: attrs.default,
            }),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field name, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => return fields,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        tokens.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut in_field = false;
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    in_field = false;
                    continue;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                }
            }
            _ => {}
        }
        if !in_field {
            in_field = true;
            arity += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            None => return variants,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional explicit discriminant, then the separating comma.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, shape });
    }
}

// ---------------------------------------------------------------- codegen

fn render_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields, transparent } => {
            let body = if *transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        let f = &f.name;
                        format!(
                            "__fields.push((\"{f}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{f})));"
                        )
                    })
                    .collect();
                format!(
                    "let mut __fields = ::std::vec::Vec::new(); {pushes} \
                     ::serde::Value::Object(__fields)"
                )
            };
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let pushes: String = (0..*arity)
                    .map(|i| format!("__items.push(::serde::Serialize::to_value(&self.{i}));"))
                    .collect();
                format!(
                    "let mut __items = ::std::vec::Vec::new(); {pushes} \
                     ::serde::Value::Array(__items)"
                )
            };
            impl_serialize(name, &body)
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let pushes: String = binders
                                .iter()
                                .map(|b| {
                                    format!("__items.push(::serde::Serialize::to_value({b}));")
                                })
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {{ \
                                 let mut __items = ::std::vec::Vec::new(); {pushes} \
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Array(__items))]) }},",
                                binders.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "__fields.push((\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{vn} {{ {} }} => {{ \
                                 let mut __fields = ::std::vec::Vec::new(); {pushes} \
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Object(__fields))]) }},",
                                binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn render_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields, transparent } => {
            let body = if *transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::from_value(__value)? }})",
                    fields[0].name
                )
            } else {
                let inits: String =
                    fields.iter().map(|f| field_init(name, "__value", f)).collect();
                format!("::std::result::Result::Ok({name} {{ {inits} }})")
            };
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                )
            } else {
                let elems: String = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(__value.element({i}).ok_or_else(\
                             || ::serde::de::Error::missing_element(\"{name}\", {i}))?)?,"
                        )
                    })
                    .collect();
                format!("::std::result::Result::Ok({name}({elems}))")
            };
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings; payload variants as
            // single-key objects.
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => return ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let elems: String = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         __payload.element({i}).ok_or_else(|| \
                                         ::serde::de::Error::missing_element(\"{name}\", {i}))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}({elems})),"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| field_init(name, "__payload", f))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "if let ::serde::Value::String(__s) = __value {{ \
                     match __s.as_str() {{ {unit_arms} _ => {{}} }} \
                 }} \
                 if let ::std::option::Option::Some((__tag, __payload)) = __value.single_entry() {{ \
                     match __tag {{ {payload_arms} _ => {{}} }} \
                 }} \
                 ::std::result::Result::Err(::serde::de::Error::unknown_variant(\"{name}\"))"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// One `field: <expr>,` initializer reading out of the object bound to
/// `source`. `#[serde(default)]` fields fall back to `Default::default()`
/// when the key is absent; all others are an error.
fn field_init(name: &str, source: &str, field: &Field) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match {source}.field(\"{f}\") {{ \
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
             ::std::option::Option::None => ::std::default::Default::default(), \
             }},"
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::from_value(\
             {source}.field(\"{f}\").ok_or_else(|| \
             ::serde::de::Error::missing_field(\"{name}\", \"{f}\"))?)?,"
        )
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} }}"
    )
}
