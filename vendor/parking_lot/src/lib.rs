//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free,
//! non-poisoning API surface (the subset this workspace uses).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
