//! Offline stand-in for `criterion`.
//!
//! Benches compile and run as plain timing loops: each benchmark executes
//! a short calibrated burst and prints mean time per iteration. There is
//! no statistical analysis, HTML report, or baseline comparison — the
//! workspace's tier-1 gate only needs bench targets to build and run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal multiple display.
    BytesDecimal(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the measured closure; runs the timing loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { iters_done: 0, elapsed: Duration::ZERO, budget }
    }

    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup/calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Fit the remaining iterations into the budget.
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotates subsequent benchmarks with a throughput (display-only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored; the stand-in auto-calibrates).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    /// Sets the warm-up time (ignored).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs a named benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline runs quick; benches here are smoke-level.
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; the stand-in accepts anything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        if bencher.iters_done > 0 {
            let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
            println!("bench: {name:<50} {:>12.0} ns/iter ({} iters)", per_iter, bencher.iters_done);
        } else {
            println!("bench: {name:<50} (no measurement)");
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        c.bench_function("toy/add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut g = c.benchmark_group("toy/group");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        toy(&mut c);
    }
}
