//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `serde` to this minimal implementation. Instead of the real
//! visitor-based Serializer/Deserializer machinery, serialization is
//! modeled as conversion to and from one JSON-like [`Value`] tree:
//!
//! - [`Serialize::to_value`] renders a type into a [`Value`]
//! - [`Deserialize::from_value`] rebuilds a type from a [`Value`]
//!
//! The companion `serde_json` stand-in renders [`Value`] to text and
//! parses text back, which together covers everything the workspace needs
//! (artifact files, `--json` CLI output, config round-trips).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree. Object fields keep insertion order so derived
/// output is stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its natural machine representation so `u64`
/// counters and seeds survive a round trip losslessly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed (negative) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64` if representable exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64` if representable exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl Value {
    /// Object field lookup.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Alias for [`field`](Self::field), mirroring `serde_json::Value::get`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.field(name)
    }

    /// Array element lookup.
    pub fn element(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// For externally-tagged enums: the single `(tag, payload)` entry.
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing fields yield `Null` like `serde_json`.
    fn index(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.field(name).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.element(index).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_partial_eq_num {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::$variant(*other as $cast))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_partial_eq_num!(
    u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64, usize => U as u64,
    i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64, isize => I as i64,
    f32 => F as f64, f64 => F as f64
);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Serialization: render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization: rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `value`.
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}

/// Deserialization error support.
pub mod de {
    /// A deserialization error with a plain-text message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Error {
        /// New error from any message.
        pub fn custom(msg: impl std::fmt::Display) -> Self {
            Error(msg.to_string())
        }

        /// Missing object field.
        pub fn missing_field(ty: &str, field: &str) -> Self {
            Error(format!("{ty}: missing field `{field}`"))
        }

        /// Missing array element.
        pub fn missing_element(ty: &str, index: usize) -> Self {
            Error(format!("{ty}: missing element {index}"))
        }

        /// No variant matched.
        pub fn unknown_variant(ty: &str) -> Self {
            Error(format!("{ty}: unknown or malformed variant"))
        }

        /// Type mismatch.
        pub fn expected(what: &str) -> Self {
            Error(format!("expected {what}"))
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Alias so `serde::de::DeserializeOwned` bounds keep compiling.
    pub use super::Deserialize as DeserializeOwned;
}

/// `serde::ser` namespace alias.
pub mod ser {
    pub use super::Serialize;
}

// -------------------------------------------------------- impls: Serialize

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                value
                    .as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| de::Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Number(Number::U(v as u64)) } else { Value::Number(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                value
                    .as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| de::Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(f64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                value.as_f64().map(|f| f as $t).ok_or_else(|| de::Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        value.as_bool().ok_or_else(|| de::Error::expected("bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        value.as_str().map(str::to_string).ok_or_else(|| de::Error::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| de::Error::custom(format!("expected {N} elements, got {}", v.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                Ok(($(
                    $t::from_value(
                        value.element($n).ok_or_else(|| de::Error::expected("tuple element"))?,
                    )?,
                )+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse().map_err(|_| de::Error::custom(format!("bad map key `{k}`")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(de::Error::expected("object")),
        }
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse().map_err(|_| de::Error::custom(format!("bad map key `{k}`")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(de::Error::expected("object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_index_and_eq() {
        let v = Value::Object(vec![
            ("x".into(), Value::Number(Number::U(1))),
            ("s".into(), Value::String("hi".into())),
        ]);
        assert_eq!(v["x"], 1);
        assert_eq!(v["s"], "hi");
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v = vec![Some(1u64), None, Some(3)].to_value();
        let back: Vec<Option<u64>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, vec![Some(1), None, Some(3)]);
    }

    #[test]
    fn numbers_compare_across_kinds() {
        assert_eq!(Number::U(5), Number::F(5.0));
        assert_eq!(Number::I(-2), Number::F(-2.0));
        assert!(Number::U(5) != Number::U(6));
    }
}
