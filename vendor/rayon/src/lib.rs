//! Offline stand-in for `rayon`.
//!
//! `par_iter()` here returns the plain sequential iterator. The
//! workspace's uses are embarrassingly parallel maps whose results are
//! identical either way; only wall-clock time differs in the offline
//! container.

#![forbid(unsafe_code)]

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    /// Sequential stand-in for `rayon`'s `par_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type (a plain sequential iterator here).
        type Iter: Iterator;

        /// "Parallel" iteration over `&self` — sequential in this stand-in.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        C: 'data,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon`'s `into_par_iter()`.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator;

        /// "Parallel" by-value iteration — sequential in this stand-in.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Iter = C::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_sequential_iter() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: u64 = (0u64..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }
}
