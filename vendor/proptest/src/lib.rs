//! Offline stand-in for `proptest`.
//!
//! Implements the sampling side of proptest — `proptest!`, strategies,
//! `prop_assert*` — without shrinking: a failing case reports its case
//! number and message and panics immediately. Case generation is
//! deterministic per test (fixed seed), so failures reproduce.

#![forbid(unsafe_code)]

/// Deterministic test RNG (splitmix64 stream).
pub mod test_runner {
    /// The RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// New generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9e3779b97f4a7c15 }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample an index from an empty range");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Strategies: deterministic samplers for test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the produced value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each produced value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy (trait-object convenience).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Boxed strategy handle.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `Strategy::prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    pub struct OneOf<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let idx = rng.index(self.0.len());
            self.0[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, moderately sized — arbitrary bit patterns would be
            // mostly NaN/Inf noise for simulation code.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for any [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let len = self.len.start + rng.index(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The glob-imported prelude.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...)` body runs
/// `cases` times with fresh sampled inputs; `prop_assert*` failures panic
/// with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            // Per-test deterministic seed from the test name.
            let mut __seed: u64 = 0xcbf29ce484222325;
            for __b in stringify!($name).as_bytes() {
                __seed ^= u64::from(*__b);
                __seed = __seed.wrapping_mul(0x100000001b3);
            }
            let mut __rng = $crate::test_runner::TestRng::new(__seed);
            let __strategies = ($($strategy,)+);
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", __l, __r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`: {} ({}:{})",
                __l, __r, format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})", __l, __r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} != {:?}`: {} ({}:{})",
                __l, __r, format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy a
/// precondition. This stand-in skips the case without drawing a
/// replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(b || !b);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn flat_map_dependent_sampling((len, idx) in (1usize..10).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(idx < len);
        }

        #[test]
        fn oneof_picks_among_arms(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn assume_skips_cases() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn inner(x in 0u64..10) {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
    }
}
