//! The live runtime in action: real threads, real alignment work.
//!
//! ```text
//! cargo run --release --example live_alignment
//! ```
//!
//! Starts a live OddCI system with eight receiver threads, broadcasts a
//! signed wakeup whose "image" is a sequence-alignment workload, and runs
//! 16 queries against the distributed database. Half the queries are
//! homologs planted in the database, half are random noise — the score
//! separation proves the distributed computation actually ran.

use oddci::live::{AlignmentImage, LiveConfig, LiveOddci};
use std::time::Duration;

fn main() {
    let config = LiveConfig {
        nodes: 8,
        ..Default::default()
    };
    println!(
        "starting live OddCI: {} receiver threads + headend",
        config.nodes
    );
    let live = LiveOddci::start(config);

    let image = AlignmentImage::small_demo();
    println!(
        "broadcasting wakeup: {}-base database (seed {:#x}), k={}",
        image.db_len, image.db_seed, image.k
    );

    let outcome = live
        .run_alignment_job(image, 16, 5, Duration::from_secs(60))
        .expect("live job completes");

    println!();
    println!("job complete: instance {}", outcome.report.instance);
    println!("makespan     : {}", outcome.report.makespan);
    println!("wakeups sent : {}", outcome.report.wakeup_broadcasts);
    println!();
    println!("{:<8} {:>8}  kind", "task", "score");
    let mut planted_min = i32::MAX;
    let mut noise_max = i32::MIN;
    for (task, score) in &outcome.scores {
        let planted = task.raw() % 2 == 0;
        if planted {
            planted_min = planted_min.min(*score);
        } else {
            noise_max = noise_max.max(*score);
        }
        println!(
            "{:<8} {:>8}  {}",
            task.to_string(),
            score,
            if planted {
                "planted homolog"
            } else {
                "random noise"
            }
        );
    }
    println!();
    println!("min planted score: {planted_min}   max noise score: {noise_max}");
    assert!(
        planted_min > noise_max,
        "planted homologs must outscore noise — the computation is real"
    );
    println!("planted homologs outscore noise: the distributed run is genuine.");

    live.shutdown();
    println!("shut down cleanly.");
}
