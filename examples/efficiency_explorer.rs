//! Efficiency explorer: the Figure 6/7 trade-off, interactively sized.
//!
//! ```text
//! cargo run --release --example efficiency_explorer [n_over_N ...]
//! ```
//!
//! Sweeps application suitability Φ for one or more `n/N` ratios and
//! prints the paper's efficiency-vs-makespan trade-off (Figures 6 and 7)
//! from the closed-form model, annotated with the Φ needed to reach 90%
//! and 99% efficiency.

use oddci::analytics::efficiency::{efficiency_curve, log_grid, phi_reaching};
use oddci::analytics::InstanceParams;
use oddci::types::DataSize;

fn main() {
    let ratios: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("ratios must be numbers"))
        .collect();
    let ratios = if ratios.is_empty() {
        vec![1.0, 10.0, 100.0, 1000.0]
    } else {
        ratios
    };

    // The paper's Figure 6/7 scenario.
    let params = InstanceParams::paper(1_000);
    let image = DataSize::from_megabytes(10);
    let moved = DataSize::from_bytes(1_000); // (s+r) = 1 Kbyte

    let grid = log_grid(1.0, 1e5, 11);
    println!("OddCI-DTV efficiency (I=10MB, beta=1Mbps, delta=150Kbps, s+r=1KB, N=1000)");
    println!();
    print!("{:>10}", "phi");
    for r in &ratios {
        print!("  E(n/N={r:<6})");
    }
    println!("  task cost");

    let curves: Vec<_> = ratios
        .iter()
        .map(|&r| efficiency_curve(&grid, r, image, moved, &params))
        .collect();

    for (i, &phi) in grid.iter().enumerate() {
        print!("{phi:>10.0}");
        for curve in &curves {
            print!("  {:>12.4}", curve[i].efficiency);
        }
        println!("  {}", fmt_secs(curves[0][i].task_cost_secs));
    }

    println!();
    println!("{:<12} {:>12} {:>12}", "n/N", "phi @ E=0.9", "phi @ E=0.99");
    let fine = log_grid(1.0, 1e7, 200);
    for &r in &ratios {
        let curve = efficiency_curve(&fine, r, image, moved, &params);
        println!(
            "{:<12} {:>12} {:>12}",
            r,
            phi_reaching(&curve, 0.90).map_or("—".into(), |p| format!("{p:.0}")),
            phi_reaching(&curve, 0.99).map_or("—".into(), |p| format!("{p:.0}")),
        );
    }
    println!();
    println!("the paper's claim — \"a ratio above 100 is generally enough to yield");
    println!("very high efficiency for most practical applications\" — is visible in");
    println!("the n/N=100 column crossing 0.9 well before phi=1000.");
}

fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.0} ms", s * 1000.0)
    }
}
