//! Churn storm: OddCI under hostile viewer behaviour.
//!
//! ```text
//! cargo run --release --example churn_storm
//! ```
//!
//! §3.2: "a PNA can generally be switched off at the will of its owner
//! [so] from time to time the Controller may need to retransmit wakeup
//! control messages to recompose OddCI instances". This example runs the
//! same job under increasingly violent churn and reports how the
//! Controller's recomposition machinery holds the instance together.

use oddci::core::{ChurnConfig, World, WorldConfig};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;

fn main() {
    println!("Churn storm: 400-task job, 80-node instance, 400-receiver channel");
    println!();
    println!(
        "{:<22} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "churn (on/off mins)", "makespan", "requeues", "orphans", "wakeups", "completed"
    );

    for (label, churn) in [
        ("none", None),
        ("120 / 15", Some((120u64, 15u64))),
        ("60 / 20", Some((60, 20))),
        ("30 / 20", Some((30, 20))),
        ("15 / 15", Some((15, 15))),
    ] {
        let mut cfg = WorldConfig::default();
        cfg.nodes = 400;
        cfg.churn = churn.map(|(on, off)| ChurnConfig {
            mean_on: SimDuration::from_mins(on),
            mean_off: SimDuration::from_mins(off),
        });
        // Faster loss detection so recomposition is visible within the run.
        cfg.policy.heartbeat.interval = SimDuration::from_secs(30);
        cfg.controller_tick = SimDuration::from_secs(30);

        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(2),
            DataSize::from_bytes(500),
            DataSize::from_bytes(500),
            SimDuration::from_secs(120),
            5,
        )
        .generate(400);

        let mut sim = World::simulation(cfg, 1234);
        let request = sim.submit_job(job, 80);
        match sim.run_request(request, SimTime::from_secs(14 * 24 * 3600)) {
            Some(report) => {
                let m = sim.world().metrics();
                println!(
                    "{:<22} {:>9.1}m {:>9} {:>9} {:>9} {:>9}/400",
                    label,
                    report.makespan.as_secs_f64() / 60.0,
                    report.requeues,
                    m.tasks_orphaned.get(),
                    report.wakeup_broadcasts,
                    report.tasks_completed,
                );
            }
            None => println!("{label:<22} did not finish within two weeks"),
        }
    }

    println!();
    println!("every task completes regardless of churn; the price is re-queued");
    println!("work and extra wakeup broadcasts, growing with the off-rate.");
}
