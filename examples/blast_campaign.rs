//! A BLAST campaign on television: the paper's motivating scenario.
//!
//! ```text
//! cargo run --release --example blast_campaign
//! ```
//!
//! Takes the paper's Table II BLAST micro-benchmarks, scales the large-
//! database test (#11) into a 5,000-query campaign, and runs it on a
//! simulated OddCI-DTV instance of 1,000 set-top boxes — then shows what
//! the same campaign would cost on one PC and on one set-top box, i.e.
//! the response-time collapse the paper's introduction promises.

use oddci::core::{World, WorldConfig};
use oddci::receiver::{ComputeModel, DeviceClass, UsageMode};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::{Distribution, JobGenerator, TABLE2_EXPERIMENTS};

fn main() {
    // Calibrate the campaign on test #2 of Table II: a mid-size query
    // against a small database (2.102 s on an STB in use).
    let reference = TABLE2_EXPERIMENTS[1];
    let model = ComputeModel::paper();
    // The paper's task cost is expressed on a reference (standby) STB.
    let task_cost = reference.standby();
    let queries = 5_000u64;

    println!("BLAST campaign: {queries} queries, {task_cost} each on a reference STB");
    println!("==================================================================");

    // Serial executions for context.
    let pc_serial = reference.pc().mul_f64(queries as f64);
    let stb_serial = model
        .from_reference_stb(task_cost, UsageMode::InUse)
        .mul_f64(queries as f64);
    println!("one reference PC, serial    : {:>12}", fmt_hours(pc_serial));
    println!(
        "one STB (in use), serial    : {:>12}",
        fmt_hours(stb_serial)
    );

    // The OddCI-DTV run: 1,000-receiver audience, 500-node instance.
    let mut cfg = WorldConfig::default();
    cfg.nodes = 1_000;
    cfg.in_use_fraction = 0.5;

    let mut gen = JobGenerator::new(
        DataSize::from_megabytes(8), // ported NCBI toolkit image (§5.1 bound)
        DataSize::from_bytes(600),   // FASTA query
        DataSize::from_bytes(2_000), // hit list
        task_cost,
        Distribution::Uniform { spread: 0.3 },
        Distribution::Uniform { spread: 0.2 },
        11,
    );
    let job = gen.generate(queries);

    let mut sim = World::simulation(cfg, 2009);
    let request = sim.submit_job(job, 500);
    let report = sim
        .run_request(request, SimTime::from_secs(30 * 24 * 3600))
        .expect("campaign completes");

    println!(
        "OddCI-DTV, 500-node instance: {:>12}",
        fmt_hours(report.makespan)
    );
    println!();
    println!(
        "speedup vs one PC           : {:>11.1}x",
        pc_serial.as_secs_f64() / report.makespan.as_secs_f64()
    );
    println!(
        "speedup vs one STB          : {:>11.1}x",
        stb_serial.as_secs_f64() / report.makespan.as_secs_f64()
    );
    println!();
    println!("instance wakeup broadcasts  : {}", report.wakeup_broadcasts);
    println!("tasks re-queued (churn)     : {}", report.requeues);
    println!(
        "mean node wakeup latency    : {:.1}s",
        sim.world().metrics().wakeup_latency.stats().mean()
    );
    println!();
    println!(
        "note: a single STB is {:.1}x slower than the reference PC (paper: 20.6x),",
        model.factor_vs_pc(DeviceClass::SetTopBox, UsageMode::InUse)
    );
    println!("yet a television-audience-sized pool still collapses the campaign");
    println!(
        "from {} to {}.",
        fmt_hours(pc_serial),
        fmt_hours(report.makespan)
    );
}

fn fmt_hours(d: SimDuration) -> String {
    let h = d.as_secs_f64() / 3600.0;
    if h >= 1.0 {
        format!("{h:.1} h")
    } else {
        format!("{:.1} min", d.as_secs_f64() / 60.0)
    }
}
