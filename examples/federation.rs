//! Multi-channel federation: growing past one channel's audience (§4.3).
//!
//! ```text
//! cargo run --release --example federation
//! ```
//!
//! One TV channel caps an OddCI instance at its audience. Federating
//! channels — each with its own Controller and carousel — multiplies the
//! ceiling. This example runs the same 3,000-task job on 1, 2 and 4
//! federated channels and shows the makespan shrinking as the federation
//! grows.

use oddci::core::{Federation, WorldConfig};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;

fn main() {
    println!("Federating OddCI-DTV channels (500 receivers each, 100-node instances)");
    println!();
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "channels", "audience", "instance", "makespan"
    );

    let mut baseline = None;
    for n_channels in [1usize, 2, 4] {
        let configs: Vec<WorldConfig> = (0..n_channels)
            .map(|_| WorldConfig {
                nodes: 500,
                ..Default::default()
            })
            .collect();
        let mut fed = Federation::new(configs, 77);

        let job = JobGenerator::homogeneous(
            DataSize::from_megabytes(2),
            DataSize::from_bytes(500),
            DataSize::from_bytes(500),
            SimDuration::from_secs(60),
            3,
        )
        .generate(3_000);

        fed.submit_job(job, 100 * n_channels as u64);
        let report = fed
            .run(SimTime::from_secs(30 * 24 * 3600))
            .expect("federated job completes");
        assert_eq!(report.tasks_completed, 3_000);

        let makespan_min = report.makespan_secs / 60.0;
        let speedup = baseline.get_or_insert(report.makespan_secs);
        println!(
            "{:<10} {:>10} {:>14} {:>10.1}m  ({:.2}x vs 1 channel)",
            n_channels,
            fed.total_audience(),
            format!("{} nodes", 100 * n_channels),
            makespan_min,
            *speedup / report.makespan_secs,
        );
    }

    println!();
    println!("each added channel brings its own broadcast capacity and audience,");
    println!("so the instance ceiling — and the throughput — scales with the");
    println!("federation, which is how OddCI reaches \"hundreds of millions\" of");
    println!("nodes (requirement I) from individual channels of finite reach.");
}
