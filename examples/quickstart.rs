//! Quickstart: wake up an OddCI-DTV instance and run an MTC job on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a digital-TV channel with 2,000 tuned receivers, broadcasts a
//! wakeup for a 200-node instance carrying a 4 MB application image, runs
//! a 2,000-task bag, and compares the measured makespan with the paper's
//! analytical model (equation (1)).

use oddci::analytics::{efficiency, makespan, wakeup_envelope, InstanceParams};
use oddci::core::{World, WorldConfig};
use oddci::types::{DataSize, SimDuration, SimTime};
use oddci::workload::JobGenerator;

fn main() {
    let nodes = 2_000u64;
    let target = 200u64;
    let image = DataSize::from_megabytes(4);

    let mut cfg = WorldConfig::default();
    cfg.nodes = nodes;
    cfg.trace_capacity = Some(64); // record milestone timeline

    let mut gen = JobGenerator::homogeneous(
        image,
        DataSize::from_bytes(500),  // task input s
        DataSize::from_bytes(500),  // result r
        SimDuration::from_secs(60), // cost p on a reference STB
        7,
    );
    let job = gen.generate(2_000);
    let profile = job.profile();

    println!("OddCI-DTV quickstart");
    println!("====================");
    println!("channel audience      : {nodes} receivers");
    println!("instance target       : {target} nodes");
    println!("image                 : {image}");
    println!(
        "tasks                 : {} x {}",
        profile.task_count, profile.mean_cost
    );
    println!();

    // What the paper's closed forms predict.
    let params = InstanceParams::paper(target);
    let (best, mean, worst) = wakeup_envelope(image, params.beta);
    let predicted = makespan(&profile, &params);
    let predicted_eff = efficiency(&profile, &params);
    println!("analytical model (paper §5)");
    println!("  wakeup envelope     : best {best} / mean {mean} / worst {worst}");
    println!("  makespan, eq. (1)   : {predicted}");
    println!("  efficiency, eq. (2) : {predicted_eff:.3}");
    println!();

    // What the full discrete-event world actually does.
    let mut sim = World::simulation(cfg, 42);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(7 * 24 * 3600))
        .expect("job completes");

    let m = sim.world().metrics();
    println!("discrete-event simulation");
    println!("  makespan            : {}", report.makespan);
    println!("  tasks completed     : {}", report.tasks_completed);
    println!("  wakeup broadcasts   : {}", report.wakeup_broadcasts);
    println!(
        "  node wakeup latency : mean {:.1}s (n={})",
        m.wakeup_latency.stats().mean(),
        m.wakeup_latency.count()
    );
    println!("  heartbeats received : {}", m.heartbeats_delivered.get());
    println!();
    let ratio = report.makespan.as_secs_f64() / predicted.as_secs_f64();
    println!("simulated / analytical makespan: {ratio:.2}x");
    println!("(the simulator adds integer task rounds, controller latency and");
    println!(" probabilistic instance sizing that the closed form abstracts away)");

    println!();
    println!("timeline (first milestones):");
    for (at, msg) in sim.world().trace().entries().iter().take(8) {
        println!("  [{:>9.3}s] {msg}", at.as_secs_f64());
    }
    if let Some((at, msg)) = sim.world().trace().entries().last() {
        println!("  ...");
        println!("  [{:>9.3}s] {msg}", at.as_secs_f64());
    }
}
