//! Data-size and bandwidth units.
//!
//! The paper's model works in **bits** (image size `I`, task input `s`,
//! result `r`) and **bits per second** (broadcast capacity `β`, direct
//! channel capacity `δ`). [`DataSize`] stores bits in a `u64`;
//! [`Bandwidth`] stores bits/second as an `f64` (bandwidths are ratios and
//! appear in divisions, so exactness buys nothing there).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A quantity of data, stored in bits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DataSize(pub u64);

impl DataSize {
    /// Zero bits.
    pub const ZERO: DataSize = DataSize(0);

    /// Builds a size from raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        DataSize(bits)
    }

    /// Builds a size from bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        DataSize(bytes * 8)
    }

    /// Builds a size from binary kilobytes (KiB, as the paper's "Kbytes").
    #[inline]
    pub const fn from_kilobytes(kb: u64) -> Self {
        DataSize(kb * 1024 * 8)
    }

    /// Builds a size from binary megabytes (MiB, as the paper's "Mbytes").
    #[inline]
    pub const fn from_megabytes(mb: u64) -> Self {
        DataSize(mb * 1024 * 1024 * 8)
    }

    /// Raw number of bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Number of whole bytes (rounded up: a 9-bit payload occupies 2 bytes).
    #[inline]
    pub const fn bytes_ceil(self) -> u64 {
        self.0.div_ceil(8)
    }

    /// Size as fractional megabytes (MiB).
    #[inline]
    pub fn as_megabytes_f64(self) -> f64 {
        self.0 as f64 / (8.0 * 1024.0 * 1024.0)
    }

    /// Time to transfer this much data over `bw`, rounded to the microsecond.
    ///
    /// This is the fundamental `size / rate` operation used everywhere in
    /// the broadcast and direct-channel models.
    #[inline]
    pub fn transfer_time(self, bw: Bandwidth) -> SimDuration {
        assert!(bw.bps() > 0.0, "cannot transfer over a zero-capacity link");
        SimDuration::from_secs_f64(self.0 as f64 / bw.bps())
    }

    /// True if the size is zero (e.g. parametric tasks with `t.s = 0`).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for DataSize {
    type Output = DataSize;
    #[inline]
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl AddAssign for DataSize {
    #[inline]
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    #[inline]
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for DataSize {
    type Output = DataSize;
    #[inline]
    fn mul(self, rhs: u64) -> DataSize {
        DataSize(self.0 * rhs)
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> DataSize {
        DataSize(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.0 as f64 / 8.0;
        if bytes >= 1024.0 * 1024.0 {
            write!(f, "{:.2}MB", bytes / (1024.0 * 1024.0))
        } else if bytes >= 1024.0 {
            write!(f, "{:.2}KB", bytes / 1024.0)
        } else {
            write!(f, "{}b", self.0)
        }
    }
}

/// A transfer rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Builds a bandwidth from bits per second.
    #[inline]
    pub const fn from_bps(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Builds a bandwidth from kilobits per second (decimal, as in "150 Kbps").
    #[inline]
    pub const fn from_kbps(kbps: f64) -> Self {
        Bandwidth(kbps * 1_000.0)
    }

    /// Builds a bandwidth from megabits per second (decimal, as in "1 Mbps").
    #[inline]
    pub const fn from_mbps(mbps: f64) -> Self {
        Bandwidth(mbps * 1_000_000.0)
    }

    /// Raw bits per second.
    #[inline]
    pub const fn bps(self) -> f64 {
        self.0
    }

    /// How much data flows in `d` at this rate (rounded down to whole bits).
    #[inline]
    pub fn data_in(self, d: SimDuration) -> DataSize {
        DataSize((self.0 * d.as_secs_f64()).floor() as u64)
    }

    /// Splits this capacity evenly over `n` concurrent flows.
    #[inline]
    pub fn shared_by(self, n: u64) -> Bandwidth {
        assert!(n > 0, "cannot share a link among zero flows");
        Bandwidth(self.0 / n as f64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000.0 {
            write!(f, "{:.2}Mbps", self.0 / 1_000_000.0)
        } else if self.0 >= 1_000.0 {
            write!(f, "{:.2}Kbps", self.0 / 1_000.0)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(DataSize::from_bytes(1), DataSize::from_bits(8));
        assert_eq!(DataSize::from_kilobytes(1), DataSize::from_bytes(1024));
        assert_eq!(DataSize::from_megabytes(1), DataSize::from_kilobytes(1024));
        assert_eq!(Bandwidth::from_mbps(1.0).bps(), 1_000_000.0);
        assert_eq!(Bandwidth::from_kbps(150.0).bps(), 150_000.0);
    }

    #[test]
    fn transfer_time_matches_hand_calculation() {
        // 10 Mbit over 1 Mbps = 10 s.
        let d = DataSize::from_bits(10_000_000).transfer_time(Bandwidth::from_mbps(1.0));
        assert_eq!(d, SimDuration::from_secs(10));
    }

    #[test]
    fn paper_wakeup_example() {
        // 8 MB image over 1 Mbps: 8 * 2^20 * 8 / 1e6 = 67.108864 s per cycle.
        let d = DataSize::from_megabytes(8).transfer_time(Bandwidth::from_mbps(1.0));
        assert!((d.as_secs_f64() - 67.108864).abs() < 1e-6);
    }

    #[test]
    fn data_in_inverts_transfer_time() {
        let bw = Bandwidth::from_kbps(150.0);
        let size = DataSize::from_kilobytes(1);
        let t = size.transfer_time(bw);
        let back = bw.data_in(t);
        // Rounding to whole µs loses at most a fraction of a bit.
        assert!(back.bits().abs_diff(size.bits()) <= 1);
    }

    #[test]
    fn bytes_ceil_rounds_up() {
        assert_eq!(DataSize::from_bits(9).bytes_ceil(), 2);
        assert_eq!(DataSize::from_bits(8).bytes_ceil(), 1);
        assert_eq!(DataSize::ZERO.bytes_ceil(), 0);
    }

    #[test]
    fn shared_bandwidth() {
        let bw = Bandwidth::from_mbps(10.0).shared_by(4);
        assert_eq!(bw.bps(), 2_500_000.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DataSize::from_megabytes(10).to_string(), "10.00MB");
        assert_eq!(DataSize::from_kilobytes(1).to_string(), "1.00KB");
        assert_eq!(DataSize::from_bits(5).to_string(), "5b");
        assert_eq!(Bandwidth::from_mbps(1.0).to_string(), "1.00Mbps");
        assert_eq!(Bandwidth::from_kbps(150.0).to_string(), "150.00Kbps");
    }

    #[test]
    fn sum_of_sizes() {
        let total: DataSize = (1..=3).map(DataSize::from_bytes).sum();
        assert_eq!(total, DataSize::from_bytes(6));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_bandwidth_transfer_panics() {
        let _ = DataSize::from_bytes(1).transfer_time(Bandwidth::from_bps(0.0));
    }
}
