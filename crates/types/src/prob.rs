//! The probability gate used by wakeup messages.
//!
//! §3.2 of the paper: idle PNAs handle a wakeup message only with the
//! probability carried in the message, which is how the Controller sizes an
//! instance without addressing nodes individually. [`Probability`] is a
//! validated `f64` in `[0, 1]`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A probability in `[0.0, 1.0]`, validated at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Probability(f64);

impl Probability {
    /// Certain acceptance: every idle PNA handles the message.
    pub const ALWAYS: Probability = Probability(1.0);
    /// Certain rejection.
    pub const NEVER: Probability = Probability(0.0);

    /// Builds a probability, clamping into `[0, 1]` and rejecting NaN.
    ///
    /// # Panics
    /// Panics if `p` is NaN.
    pub fn new(p: f64) -> Self {
        assert!(!p.is_nan(), "probability cannot be NaN");
        Probability(p.clamp(0.0, 1.0))
    }

    /// Builds a probability, returning `None` for NaN or out-of-range values.
    pub fn try_new(p: f64) -> Option<Self> {
        (p.is_finite() && (0.0..=1.0).contains(&p)).then_some(Probability(p))
    }

    /// The probability that selects an expected `target` nodes out of `pool`.
    ///
    /// This is what the Controller computes when sizing an instance: to
    /// recruit `n` nodes from `N` listeners it broadcasts `p = n/N`
    /// (clamped to 1 when the pool is too small).
    pub fn for_target(target: u64, pool: u64) -> Self {
        if pool == 0 {
            return Probability::NEVER;
        }
        Probability::new(target as f64 / pool as f64)
    }

    /// Raw value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Draws a Bernoulli sample from `rng`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> bool {
        // Avoid consuming randomness for the degenerate gates so that
        // p=1.0 sweeps remain trace-identical regardless of RNG state.
        if self.0 >= 1.0 {
            true
        } else if self.0 <= 0.0 {
            false
        } else {
            rng.random::<f64>() < self.0
        }
    }

    /// Complement (`1 - p`).
    #[inline]
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn new_clamps() {
        assert_eq!(Probability::new(1.5).value(), 1.0);
        assert_eq!(Probability::new(-0.5).value(), 0.0);
        assert_eq!(Probability::new(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn new_rejects_nan() {
        let _ = Probability::new(f64::NAN);
    }

    #[test]
    fn try_new_validates() {
        assert!(Probability::try_new(0.5).is_some());
        assert!(Probability::try_new(1.1).is_none());
        assert!(Probability::try_new(f64::NAN).is_none());
        assert!(Probability::try_new(f64::INFINITY).is_none());
    }

    #[test]
    fn for_target_sizing() {
        assert_eq!(Probability::for_target(100, 1000).value(), 0.1);
        assert_eq!(Probability::for_target(200, 100).value(), 1.0); // clamped
        assert_eq!(Probability::for_target(5, 0), Probability::NEVER);
    }

    #[test]
    fn degenerate_gates_consume_no_randomness() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert!(Probability::ALWAYS.sample(&mut a));
        assert!(!Probability::NEVER.sample(&mut a));
        // `a` must not have advanced relative to `b`.
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn sampling_frequency_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(42);
        let p = Probability::new(0.3);
        let hits = (0..100_000).filter(|_| p.sample(&mut rng)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn complement() {
        assert!((Probability::new(0.3).complement().value() - 0.7).abs() < 1e-12);
    }
}
