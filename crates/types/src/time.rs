//! Simulation time.
//!
//! The discrete-event engine measures time in **microseconds** stored in a
//! `u64`. That gives ~584,000 years of range — far beyond any OddCI
//! scenario — while keeping ordering exact (no floating-point event-time
//! ties) and arithmetic cheap.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulation time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Builds an instant from fractional seconds (rounded to the nearest µs).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "simulation time cannot be negative");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Builds an instant from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// This instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This instant as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// This instant moved `d` into the past, saturating at time zero.
    ///
    /// Snapshot restore uses this to rebase exported heartbeat/submission
    /// *ages* onto the adopting headend's clock: a standby whose clock
    /// started later than the primary's must never produce an instant
    /// before its own epoch.
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration (an "infinite" sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Builds a duration from fractional seconds (rounded to the nearest µs).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "durations cannot be negative");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Builds a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Builds a duration from whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * MICROS_PER_SEC)
    }

    /// This duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This duration as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales this duration by a non-negative factor, rounding to the µs.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3).mul_f64(0.5);
        assert_eq!(d, SimDuration::from_micros(2)); // 1.5 rounds to 2
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
    }

    #[test]
    fn saturating_sub_stops_at_zero() {
        let t = SimTime::from_secs(5);
        assert_eq!(
            t.saturating_sub(SimDuration::from_secs(2)),
            SimTime::from_secs(3)
        );
        assert_eq!(t.saturating_sub(SimDuration::from_secs(9)), SimTime::ZERO);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
