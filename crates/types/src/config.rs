//! Deployment-level configuration shared by the simulator, the control
//! plane and the benchmark harness.
//!
//! Defaults follow the paper's §5 parameterization: broadcast spare
//! capacity β = 1 Mbps, direct-channel capacity δ = 150 Kbps (ADSL lower
//! bound), 10 MB application image.

use crate::time::SimDuration;
use crate::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Parameters of the DTV system hosting an OddCI deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtvSystemConfig {
    /// Unused broadcast capacity β available to the object carousel.
    pub beta: Bandwidth,
    /// Number of set-top boxes tuned to the channel.
    pub tuned_receivers: u64,
    /// Carousel module payload size in bytes (DSM-CC blocks are reassembled
    /// into modules; 4 KiB is a typical DDB-friendly module size).
    pub module_payload_bytes: u32,
    /// How long a receiver takes to launch an AUTOSTART Xlet once its AIT
    /// entry is seen (middleware parse + class-load; small vs transfer times).
    pub autostart_latency: SimDuration,
}

impl Default for DtvSystemConfig {
    fn default() -> Self {
        DtvSystemConfig {
            beta: Bandwidth::from_mbps(1.0),
            tuned_receivers: 10_000,
            module_payload_bytes: 4096,
            autostart_latency: SimDuration::from_millis(500),
        }
    }
}

impl DtvSystemConfig {
    /// Validates the configuration, returning a message for the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.beta.bps() <= 0.0 {
            return Err("broadcast capacity β must be positive".into());
        }
        if self.module_payload_bytes == 0 {
            return Err("carousel module payload must be non-empty".into());
        }
        Ok(())
    }
}

/// Parameters of the point-to-point direct channels (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectChannelConfig {
    /// Per-node full-duplex capacity δ.
    pub delta: Bandwidth,
    /// One-way propagation latency added to every transfer.
    pub latency: SimDuration,
    /// Probability that any single transfer is lost (retried by the sender).
    pub loss_rate: f64,
}

impl Default for DirectChannelConfig {
    fn default() -> Self {
        DirectChannelConfig {
            delta: Bandwidth::from_kbps(150.0),
            latency: SimDuration::from_millis(50),
            loss_rate: 0.0,
        }
    }
}

impl DirectChannelConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.delta.bps() <= 0.0 {
            return Err("direct channel capacity δ must be positive".into());
        }
        if !(0.0..1.0).contains(&self.loss_rate) {
            return Err("loss rate must be in [0, 1)".into());
        }
        Ok(())
    }
}

/// Heartbeat policy (§3.2): every PNA periodically reports its state to the
/// Controller over the direct channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats from one PNA.
    pub interval: SimDuration,
    /// Heartbeats missed before the Controller declares a node lost.
    pub miss_threshold: u32,
    /// Size of one heartbeat message on the wire.
    pub message_bytes: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_secs(60),
            miss_threshold: 3,
            message_bytes: 128,
        }
    }
}

impl HeartbeatConfig {
    /// Time after the last heartbeat at which a node is declared lost.
    pub fn loss_deadline(&self) -> SimDuration {
        self.interval * u64::from(self.miss_threshold)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval.is_zero() {
            return Err("heartbeat interval must be positive".into());
        }
        if self.miss_threshold == 0 {
            return Err("miss threshold must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let dtv = DtvSystemConfig::default();
        assert_eq!(dtv.beta.bps(), 1_000_000.0);
        let dc = DirectChannelConfig::default();
        assert_eq!(dc.delta.bps(), 150_000.0);
    }

    #[test]
    fn defaults_validate() {
        assert!(DtvSystemConfig::default().validate().is_ok());
        assert!(DirectChannelConfig::default().validate().is_ok());
        assert!(HeartbeatConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let dtv = DtvSystemConfig {
            beta: Bandwidth::from_bps(0.0),
            ..Default::default()
        };
        assert!(dtv.validate().is_err());

        let dc = DirectChannelConfig {
            loss_rate: 1.0,
            ..Default::default()
        };
        assert!(dc.validate().is_err());

        let hb = HeartbeatConfig {
            miss_threshold: 0,
            ..Default::default()
        };
        assert!(hb.validate().is_err());
    }

    #[test]
    fn loss_deadline_scales_with_threshold() {
        let hb = HeartbeatConfig {
            interval: SimDuration::from_secs(10),
            miss_threshold: 3,
            message_bytes: 64,
        };
        assert_eq!(hb.loss_deadline(), SimDuration::from_secs(30));
    }

    #[test]
    fn serde_round_trip() {
        let cfg = DtvSystemConfig::default();
        let json = serde_json_compat(&cfg);
        assert!(json.contains("beta"));
    }

    // Minimal serde smoke test without pulling serde_json into this crate:
    // serialize through the `serde` Serializer for `String` via Debug shim.
    fn serde_json_compat(cfg: &DtvSystemConfig) -> String {
        format!("beta={:?}", cfg.beta)
    }
}
