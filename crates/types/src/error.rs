//! Error types shared across the workspace.

use crate::ids::{InstanceId, JobId, NodeId, TaskId};
use std::fmt;

/// Convenience alias used by all OddCI crates.
pub type Result<T> = std::result::Result<T, OddciError>;

/// Every failure mode surfaced by the OddCI stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OddciError {
    /// A control message failed signature verification (§3.2: PNAs only
    /// accept messages broadcast by their associated Controller).
    BadSignature {
        /// Human-readable description of the verification context.
        context: String,
    },
    /// The referenced OddCI instance does not exist (or was dismantled).
    UnknownInstance(InstanceId),
    /// The referenced node is not registered with the Controller.
    UnknownNode(NodeId),
    /// The referenced job was never submitted or already completed.
    UnknownJob(JobId),
    /// The referenced task does not belong to the job.
    UnknownTask {
        /// Job the lookup was scoped to.
        job: JobId,
        /// The missing task.
        task: TaskId,
    },
    /// An instance request cannot be satisfied by the available pool.
    InsufficientCapacity {
        /// Nodes requested by the Provider.
        requested: u64,
        /// Idle nodes the Controller estimates are reachable.
        available: u64,
    },
    /// An operation was attempted in a state that does not allow it
    /// (e.g. starting an Xlet that was already destroyed).
    InvalidState {
        /// What was attempted.
        operation: &'static str,
        /// The state that forbade it.
        state: String,
    },
    /// A carousel, channel or configuration parameter is out of range.
    InvalidConfig(String),
    /// A communication endpoint has shut down (live runtime).
    ChannelClosed(&'static str),
    /// The simulation was asked to run past its configured horizon.
    HorizonExceeded,
}

impl fmt::Display for OddciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OddciError::BadSignature { context } => {
                write!(
                    f,
                    "control message failed signature verification: {context}"
                )
            }
            OddciError::UnknownInstance(id) => write!(f, "unknown OddCI instance {id}"),
            OddciError::UnknownNode(id) => write!(f, "unknown processing node {id}"),
            OddciError::UnknownJob(id) => write!(f, "unknown job {id}"),
            OddciError::UnknownTask { job, task } => {
                write!(f, "task {task} does not belong to job {job}")
            }
            OddciError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "instance request for {requested} nodes exceeds available pool of {available}"
            ),
            OddciError::InvalidState { operation, state } => {
                write!(f, "operation `{operation}` not allowed in state {state}")
            }
            OddciError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OddciError::ChannelClosed(what) => write!(f, "channel closed: {what}"),
            OddciError::HorizonExceeded => write!(f, "simulation horizon exceeded"),
        }
    }
}

impl std::error::Error for OddciError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = OddciError::InsufficientCapacity {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));

        let e = OddciError::UnknownTask {
            job: JobId::new(1),
            task: TaskId::new(9),
        };
        assert!(e.to_string().contains("task-000009"));
        assert!(e.to_string().contains("job-000001"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&OddciError::HorizonExceeded);
    }

    #[test]
    fn equality_for_test_assertions() {
        assert_eq!(
            OddciError::UnknownInstance(InstanceId::new(3)),
            OddciError::UnknownInstance(InstanceId::new(3))
        );
        assert_ne!(
            OddciError::UnknownInstance(InstanceId::new(3)),
            OddciError::UnknownInstance(InstanceId::new(4))
        );
    }
}
