//! Strongly-typed identifiers for every entity in an OddCI deployment.
//!
//! All identifiers are thin `u64`/`u32` newtypes: `Copy`, hashable,
//! ordered, and with a `Display` that makes log lines and panic messages
//! self-describing (`pna-000042`, `inst-7`, ...).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Wraps a raw index as this identifier type.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the identifier as a `usize` index (for dense tables).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{:06}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifies one processing node (a set-top box / device hosting a PNA).
    NodeId,
    u64,
    "pna"
);
id_type!(
    /// Identifies one OddCI instance (a dynamically provisioned DCI).
    InstanceId,
    u64,
    "inst"
);
id_type!(
    /// Identifies a broadcast channel (one TV service carrying a carousel).
    ChannelId,
    u32,
    "chan"
);
id_type!(
    /// Identifies a Provider front-end.
    ProviderId,
    u32,
    "prov"
);
id_type!(
    /// Identifies a Controller (the broadcast-side control component).
    ControllerId,
    u32,
    "ctrl"
);
id_type!(
    /// Identifies a submitted MTC job.
    JobId,
    u64,
    "job"
);
id_type!(
    /// Identifies one task within a job.
    TaskId,
    u64,
    "task"
);
id_type!(
    /// Identifies an application image staged through the carousel.
    ImageId,
    u64,
    "img"
);
id_type!(
    /// Identifies a control or data message (for tracing and dedup).
    MessageId,
    u64,
    "msg"
);

impl NodeId {
    /// Builds a dense range of node ids `[0, n)`, handy for simulations.
    pub fn range(n: u64) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_is_prefixed_and_zero_padded() {
        assert_eq!(NodeId::new(42).to_string(), "pna-000042");
        assert_eq!(InstanceId::new(7).to_string(), "inst-000007");
        assert_eq!(ChannelId::new(1).to_string(), "chan-000001");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = JobId::new(1);
        let b = JobId::new(2);
        assert!(a < b);
        let set: HashSet<_> = [a, b, JobId::new(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn node_range_is_dense() {
        let ids: Vec<_> = NodeId::range(4).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(ids[3].index(), 3);
    }

    #[test]
    fn from_raw_round_trips() {
        let id: TaskId = 9u64.into();
        assert_eq!(id.raw(), 9);
    }
}
