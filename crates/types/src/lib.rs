#![forbid(unsafe_code)]

//! Common vocabulary types for the OddCI reproduction.
//!
//! Every other crate in the workspace builds on the identifiers, physical
//! units and error types defined here. The units are deliberately strongly
//! typed: the OddCI paper's analytical model (§5) mixes bits, bits-per-second
//! and seconds, and unit confusion is the classic way such reproductions go
//! wrong. [`DataSize`] / [`Bandwidth`] / [`SimTime`] arithmetic encodes the
//! dimensional analysis in the type system.
//!
//! # Example
//!
//! ```
//! use oddci_types::{Bandwidth, DataSize};
//!
//! // The paper's wakeup analysis: one full carousel cycle of an 8 MB image
//! // over a 1 Mbps broadcast channel.
//! let image = DataSize::from_megabytes(8);
//! let beta = Bandwidth::from_mbps(1.0);
//! let one_cycle = image.transfer_time(beta);
//! assert!((one_cycle.as_secs_f64() - 67.108864).abs() < 1e-6);
//! ```

pub mod config;
pub mod error;
pub mod ids;
pub mod prob;
pub mod time;
pub mod units;

pub use config::{DirectChannelConfig, DtvSystemConfig, HeartbeatConfig};
pub use error::{OddciError, Result};
pub use ids::{
    ChannelId, ControllerId, ImageId, InstanceId, JobId, MessageId, NodeId, ProviderId, TaskId,
};
pub use prob::Probability;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, DataSize};
