//! Property tests on the object-carousel timing invariants.

use oddci_broadcast::carousel::{CarouselFile, ObjectCarousel};
use oddci_broadcast::tsmux::TransportMux;
use oddci_types::{Bandwidth, DataSize, SimTime};
use proptest::prelude::*;

fn carousel_strategy() -> impl Strategy<Value = (ObjectCarousel, usize)> {
    (
        proptest::collection::vec(1u64..2_000_000, 1..6), // file sizes in bytes
        1u32..20,                                         // beta in Mbps-ish units
    )
        .prop_flat_map(|(sizes, mbps)| {
            let n = sizes.len();
            let files: Vec<CarouselFile> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| CarouselFile::sized(format!("f{i}"), DataSize::from_bytes(s)))
                .collect();
            let carousel = ObjectCarousel::new(
                TransportMux::new(Bandwidth::from_mbps(f64::from(mbps))),
                files,
                SimTime::ZERO,
            );
            (Just(carousel), 0..n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Acquisition always completes within [best, worst] of the attach time.
    #[test]
    fn acquisition_within_envelope((carousel, idx) in carousel_strategy(),
                                   attach_us in 0u64..100_000_000) {
        let attach = SimTime::from_micros(attach_us);
        let done = carousel.acquisition_complete(idx, attach);
        let latency = done - attach;
        let best = carousel.best_acquisition(idx);
        let worst = carousel.worst_acquisition(idx);
        // Allow one microsecond of clock rounding at each edge.
        prop_assert!(latency.as_micros() + 1 >= best.as_micros(),
                     "latency {latency} < best {best}");
        prop_assert!(latency.as_micros() <= worst.as_micros() + 1,
                     "latency {latency} > worst {worst}");
    }

    /// Acquisition completion is monotone in the attach time: tuning in
    /// later can never make the file arrive earlier.
    #[test]
    fn acquisition_is_monotone((carousel, idx) in carousel_strategy(),
                               t1 in 0u64..50_000_000, dt in 0u64..50_000_000) {
        let a = carousel.acquisition_complete(idx, SimTime::from_micros(t1));
        let b = carousel.acquisition_complete(idx, SimTime::from_micros(t1 + dt));
        prop_assert!(b >= a, "attach later ⇒ complete no earlier");
    }

    /// One-cycle shift invariance: attaching a full cycle later completes a
    /// full cycle later (±1 µs rounding).
    #[test]
    fn acquisition_is_periodic((carousel, idx) in carousel_strategy(),
                               t in 0u64..50_000_000) {
        let cycle = carousel.cycle_duration();
        let a = carousel.acquisition_complete(idx, SimTime::from_micros(t));
        let b = carousel.acquisition_complete(idx, SimTime::from_micros(t) + cycle);
        let shifted = a + cycle;
        prop_assert!(b.as_micros().abs_diff(shifted.as_micros()) <= 2,
                     "b={b} vs a+cycle={shifted}");
    }

    /// The mean over a full cycle of attach phases equals
    /// half-cycle + read (the generalized 1.5 law), within 2%.
    #[test]
    fn mean_latency_matches_expected((carousel, idx) in carousel_strategy()) {
        let cycle = carousel.cycle_duration().as_secs_f64();
        prop_assume!(cycle > 1e-4);
        let n = 256;
        let mean: f64 = (0..n)
            .map(|i| {
                let attach = SimTime::from_secs_f64(cycle * i as f64 / n as f64);
                (carousel.acquisition_complete(idx, attach) - attach).as_secs_f64()
            })
            .sum::<f64>() / n as f64;
        let expected = carousel.expected_acquisition(idx).as_secs_f64();
        prop_assert!((mean - expected).abs() <= 0.02 * expected + 1e-6,
                     "mean {mean} vs expected {expected}");
    }

    /// Updating the carousel never panics and restarts cleanly: the first
    /// file acquired from the new epoch is its best case.
    #[test]
    fn update_restarts_epoch((carousel, _idx) in carousel_strategy(),
                             new_size in 1u64..1_000_000, at in 1u64..100_000_000) {
        let mut carousel = carousel;
        let at = SimTime::from_micros(at);
        carousel.update(vec![CarouselFile::sized("new", DataSize::from_bytes(new_size))], at);
        let done = carousel.acquisition_complete(0, at);
        prop_assert_eq!(done - at, carousel.best_acquisition(0));
    }
}
