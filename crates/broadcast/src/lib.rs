#![forbid(unsafe_code)]

//! The broadcast substrate: a digital-TV data path emulated faithfully
//! enough that wakeup latencies *emerge* from the model instead of being
//! assumed.
//!
//! Layering (bottom-up), mirroring §4.1 of the paper:
//!
//! * [`tsmux`] — the MPEG-2 transport-stream multiplex: 188-byte TS packets
//!   and DSM-CC section framing determine how much of the channel's spare
//!   capacity β is actually available to payload bits.
//! * [`carousel`] — the DSM-CC **object carousel**: a versioned set of files
//!   transmitted cyclically. Given the instant a receiver starts listening,
//!   the carousel computes exactly when each file acquisition completes —
//!   including the "wait for the file's next pass" phase that produces the
//!   paper's `1.5·I/β` average wakeup law.
//! * [`ait`] — the Application Information Table, the signalling that tells
//!   a receiver which applications exist and whether they AUTOSTART.
//! * [`channel`] — a [`channel::BroadcastChannel`] gluing
//!   the three together and exposing the query used by the receiver model:
//!   *"I tuned in at time t; when do I have file f of carousel version v?"*
//!
//! The broadcast side is **computationally passive**: it never schedules
//! discrete events. Because transmission is strictly periodic, acquisition
//! times are closed-form functions of the attach instant, which lets a
//! million-receiver simulation query the carousel in O(1) per receiver.
//!
//! # Example
//!
//! ```
//! use oddci_broadcast::{BroadcastChannel, CarouselFile};
//! use oddci_types::{Bandwidth, ChannelId, SimTime};
//!
//! // A 64 KB application image cycling on a 1 Mbps data channel.
//! let files = vec![CarouselFile::new("image", vec![0u8; 64 * 1024])];
//! let chan = BroadcastChannel::new(
//!     ChannelId::new(1),
//!     Bandwidth::from_mbps(1.0),
//!     files,
//!     SimTime::ZERO,
//! );
//!
//! // Expected acquisition time for a receiver tuning in at random:
//! let t = chan.expected_acquisition("image").expect("file is on the carousel");
//! assert!(t.as_secs_f64() > 0.0);
//! ```

pub mod ait;
pub mod carousel;
pub mod channel;
pub mod tsmux;

pub use ait::{Ait, AitEntry, AppControlCode};
pub use carousel::{CarouselFile, CarouselLayout, ObjectCarousel};
pub use channel::BroadcastChannel;
pub use tsmux::TransportMux;
