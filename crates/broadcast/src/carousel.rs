//! The DSM-CC object carousel.
//!
//! A carousel is a versioned set of files transmitted cyclically over the
//! data stream (§4.1): *"data are cyclically repeated to allow those
//! receivers that are being switched on in the middle of transmission ...
//! to have access to the data at different times"*. A receiver that wants a
//! file must wait for the file's next pass and then read it end-to-end —
//! which is exactly what produces the paper's average wakeup overhead of
//! `1.5·I/β` when the carousel carries little besides the image.
//!
//! Transmission is strictly periodic, so acquisition completion is a pure
//! function of the attach instant — no discrete events, O(1) per query.

use crate::tsmux::TransportMux;
use bytes::Bytes;
use oddci_crypto::Sha256;
use oddci_types::{Bandwidth, DataSize, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One file (DSM-CC module group) in the carousel.
#[derive(Debug, Clone)]
pub struct CarouselFile {
    /// Path-like name, unique within a carousel version.
    pub name: String,
    /// File contents. For simulation-scale images this is typically a
    /// zero-filled buffer of the right size; the live runtime puts real
    /// serialized payloads here.
    pub data: Bytes,
}

impl CarouselFile {
    /// Creates a file from name and contents.
    pub fn new(name: impl Into<String>, data: impl Into<Bytes>) -> Self {
        CarouselFile {
            name: name.into(),
            data: data.into(),
        }
    }

    /// Creates a file of `size` filled with zeros — used when only timing
    /// matters (multi-megabyte simulated images).
    pub fn sized(name: impl Into<String>, size: DataSize) -> Self {
        CarouselFile {
            name: name.into(),
            data: Bytes::from(vec![0u8; size.bytes_ceil() as usize]),
        }
    }

    /// Payload size of this file.
    pub fn size(&self) -> DataSize {
        DataSize::from_bytes(self.data.len() as u64)
    }

    /// SHA-256 of the contents, used by receivers for integrity checks.
    pub fn digest(&self) -> [u8; 32] {
        Sha256::digest(&self.data)
    }
}

/// Where each file sits inside one transmission cycle, in wire bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarouselLayout {
    /// Per-file `(start_bit, length_bits)` on the wire, in file order.
    pub segments: Vec<(u64, u64)>,
    /// Total wire bits in one cycle.
    pub cycle_bits: u64,
}

/// A versioned object carousel bound to a transport multiplex.
#[derive(Debug, Clone)]
pub struct ObjectCarousel {
    mux: TransportMux,
    version: u32,
    files: Vec<CarouselFile>,
    layout: CarouselLayout,
    /// Instant this version started transmitting.
    epoch: SimTime,
}

impl ObjectCarousel {
    /// Creates a carousel transmitting `files` from `epoch` onwards.
    ///
    /// # Panics
    /// Panics if `files` is empty or contains duplicate names.
    pub fn new(mux: TransportMux, files: Vec<CarouselFile>, epoch: SimTime) -> Self {
        let layout = Self::layout_for(&mux, &files);
        let mut names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "duplicate file names in carousel"
        );
        ObjectCarousel {
            mux,
            version: 1,
            files,
            layout,
            epoch,
        }
    }

    fn layout_for(mux: &TransportMux, files: &[CarouselFile]) -> CarouselLayout {
        assert!(!files.is_empty(), "a carousel must carry at least one file");
        let mut segments = Vec::with_capacity(files.len());
        let mut cursor = 0u64;
        for f in files {
            let wire = mux.wire_size(f.size()).bits();
            segments.push((cursor, wire));
            cursor += wire;
        }
        CarouselLayout {
            segments,
            cycle_bits: cursor,
        }
    }

    /// Replaces the carousel contents, bumping the version (§4.1: *"it is
    /// possible to dynamically update the carousel that is being
    /// transmitted"*). The new version starts transmitting at `now`.
    pub fn update(&mut self, files: Vec<CarouselFile>, now: SimTime) {
        assert!(
            now >= self.epoch,
            "carousel updates must move forward in time"
        );
        self.layout = Self::layout_for(&self.mux, &files);
        self.files = files;
        self.version += 1;
        self.epoch = now;
    }

    /// Current carousel version (bumped on every [`update`](Self::update)).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Instant the current version started transmitting.
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// The files of the current version.
    pub fn files(&self) -> &[CarouselFile] {
        &self.files
    }

    /// Looks a file up by name.
    pub fn file(&self, name: &str) -> Option<&CarouselFile> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Index of a file by name.
    pub fn file_index(&self, name: &str) -> Option<usize> {
        self.files.iter().position(|f| f.name == name)
    }

    /// Duration of one full transmission cycle at the nominal rate.
    pub fn cycle_duration(&self) -> SimDuration {
        DataSize::from_bits(self.layout.cycle_bits).transfer_time(self.mux.nominal)
    }

    /// Wire-rate of the underlying multiplex.
    pub fn rate(&self) -> Bandwidth {
        self.mux.nominal
    }

    /// When a receiver that starts listening at `attach` completes
    /// acquisition of file `index`.
    ///
    /// DSM-CC receivers in the paper's model wait for the *next* start of
    /// the file (mid-module joins are not resumed) and then read it
    /// end-to-end at the wire rate.
    ///
    /// # Panics
    /// Panics if `index` is out of range or `attach` precedes the epoch.
    pub fn acquisition_complete(&self, index: usize, attach: SimTime) -> SimTime {
        assert!(
            attach >= self.epoch,
            "receiver cannot attach before the carousel epoch"
        );
        let (start_bit, len_bits) = self.layout.segments[index];
        let cycle = self.layout.cycle_bits;
        // Phase of the transmitter at the attach instant, in wire bits.
        let elapsed_bits =
            (self.mux.nominal.bps() * (attach - self.epoch).as_secs_f64()).floor() as u64;
        let phase = elapsed_bits % cycle;
        // Bits until the file's next start.
        let wait_bits = if phase <= start_bit {
            start_bit - phase
        } else {
            cycle - phase + start_bit
        };
        let total = DataSize::from_bits(wait_bits + len_bits);
        attach + total.transfer_time(self.mux.nominal)
    }

    /// Convenience: acquisition completion for a file by name.
    pub fn acquisition_complete_by_name(&self, name: &str, attach: SimTime) -> Option<SimTime> {
        self.file_index(name)
            .map(|i| self.acquisition_complete(i, attach))
    }

    /// The expected acquisition latency for file `index` over a uniformly
    /// random attach phase: half a cycle of waiting plus the read itself.
    /// For a carousel dominated by one image this is the paper's `1.5·I/β`.
    pub fn expected_acquisition(&self, index: usize) -> SimDuration {
        let (_, len_bits) = self.layout.segments[index];
        let half_cycle = DataSize::from_bits(self.layout.cycle_bits / 2);
        let read = DataSize::from_bits(len_bits);
        half_cycle.transfer_time(self.mux.nominal) + read.transfer_time(self.mux.nominal)
    }

    /// Worst-case acquisition latency (attach immediately after the file
    /// started): one full cycle of waiting minus nothing, plus the read.
    pub fn worst_acquisition(&self, index: usize) -> SimDuration {
        let (_, len_bits) = self.layout.segments[index];
        let cycle = DataSize::from_bits(self.layout.cycle_bits);
        let read = DataSize::from_bits(len_bits);
        cycle.transfer_time(self.mux.nominal) + read.transfer_time(self.mux.nominal)
    }

    /// Best-case acquisition latency (attach exactly at the file start).
    pub fn best_acquisition(&self, index: usize) -> SimDuration {
        let (_, len_bits) = self.layout.segments[index];
        DataSize::from_bits(len_bits).transfer_time(self.mux.nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::Bandwidth;

    fn single_file_carousel(mb: u64, mbps: f64) -> ObjectCarousel {
        ObjectCarousel::new(
            TransportMux::new(Bandwidth::from_mbps(mbps)),
            vec![CarouselFile::sized("image", DataSize::from_megabytes(mb))],
            SimTime::ZERO,
        )
    }

    #[test]
    fn single_file_cycle_matches_wire_size() {
        let c = single_file_carousel(1, 1.0);
        let wire =
            TransportMux::new(Bandwidth::from_mbps(1.0)).wire_size(DataSize::from_megabytes(1));
        assert_eq!(
            c.cycle_duration(),
            wire.transfer_time(Bandwidth::from_mbps(1.0))
        );
    }

    #[test]
    fn attach_at_epoch_is_best_case() {
        let c = single_file_carousel(1, 1.0);
        let done = c.acquisition_complete(0, SimTime::ZERO);
        assert_eq!(done - SimTime::ZERO, c.best_acquisition(0));
        assert_eq!(c.best_acquisition(0), c.cycle_duration());
    }

    #[test]
    fn attach_just_after_start_is_worst_case() {
        let c = single_file_carousel(1, 1.0);
        // Attach one microsecond after the file began: wait almost a full
        // cycle, then read a full cycle.
        let attach = SimTime::from_micros(1);
        let done = c.acquisition_complete(0, attach);
        let latency = done - attach;
        let worst = c.worst_acquisition(0);
        assert!(latency <= worst);
        assert!(latency.as_secs_f64() > worst.as_secs_f64() * 0.999);
    }

    #[test]
    fn average_over_uniform_attach_is_1_5_cycles() {
        let c = single_file_carousel(1, 1.0);
        let cycle = c.cycle_duration().as_secs_f64();
        let n = 1000;
        let mean: f64 = (0..n)
            .map(|i| {
                let attach = SimTime::from_secs_f64(cycle * i as f64 / n as f64);
                (c.acquisition_complete(0, attach) - attach).as_secs_f64()
            })
            .sum::<f64>()
            / n as f64;
        // Paper's W = 1.5 I/β law (here in wire terms).
        assert!(
            (mean / cycle - 1.5).abs() < 0.01,
            "mean/cycle={}",
            mean / cycle
        );
    }

    #[test]
    fn acquisition_is_periodic() {
        let c = single_file_carousel(2, 1.0);
        let cycle = c.cycle_duration();
        let a1 = c.acquisition_complete(0, SimTime::from_secs(3));
        let a2 = c.acquisition_complete(0, SimTime::from_secs(3) + cycle);
        assert_eq!(a2 - a1, cycle);
    }

    #[test]
    fn multi_file_layout_is_contiguous() {
        let mux = TransportMux::default();
        let c = ObjectCarousel::new(
            mux,
            vec![
                CarouselFile::sized("pna.xlet", DataSize::from_kilobytes(100)),
                CarouselFile::sized("image", DataSize::from_megabytes(5)),
                CarouselFile::new("config", Bytes::from_static(b"probability=0.5")),
            ],
            SimTime::ZERO,
        );
        assert_eq!(c.files().len(), 3);
        assert_eq!(c.file_index("image"), Some(1));
        assert!(c.file("missing").is_none());
        // Segments tile the cycle exactly.
        let mut cursor = 0;
        for &(s, l) in &ObjectCarousel::layout_for(&TransportMux::default(), c.files()).segments {
            assert_eq!(s, cursor);
            cursor += l;
        }
    }

    #[test]
    fn later_files_wait_for_their_slot() {
        let mux = TransportMux::new(Bandwidth::from_mbps(1.0));
        let c = ObjectCarousel::new(
            mux,
            vec![
                CarouselFile::sized("a", DataSize::from_kilobytes(500)),
                CarouselFile::sized("b", DataSize::from_kilobytes(500)),
            ],
            SimTime::ZERO,
        );
        // Attaching at epoch: file b cannot complete before file a's slot passes.
        let done_a = c.acquisition_complete(0, SimTime::ZERO);
        let done_b = c.acquisition_complete(1, SimTime::ZERO);
        assert!(done_b > done_a);
    }

    #[test]
    fn update_bumps_version_and_epoch() {
        let mut c = single_file_carousel(1, 1.0);
        assert_eq!(c.version(), 1);
        c.update(
            vec![CarouselFile::sized("image2", DataSize::from_megabytes(2))],
            SimTime::from_secs(100),
        );
        assert_eq!(c.version(), 2);
        assert_eq!(c.epoch(), SimTime::from_secs(100));
        assert!(c.file("image").is_none());
        assert!(c.file("image2").is_some());
        // Acquisition phase restarts at the new epoch.
        let done = c.acquisition_complete(0, SimTime::from_secs(100));
        assert_eq!(done - SimTime::from_secs(100), c.best_acquisition(0));
    }

    #[test]
    fn expected_acquisition_bounds() {
        let c = single_file_carousel(4, 2.0);
        let best = c.best_acquisition(0);
        let avg = c.expected_acquisition(0);
        let worst = c.worst_acquisition(0);
        assert!(best < avg && avg < worst);
    }

    #[test]
    fn digest_detects_corruption() {
        let f1 = CarouselFile::new("x", Bytes::from_static(b"payload"));
        let f2 = CarouselFile::new("x", Bytes::from_static(b"payloaD"));
        assert_ne!(f1.digest(), f2.digest());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = ObjectCarousel::new(
            TransportMux::default(),
            vec![
                CarouselFile::sized("same", DataSize::from_bytes(10)),
                CarouselFile::sized("same", DataSize::from_bytes(20)),
            ],
            SimTime::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn empty_carousel_rejected() {
        let _ = ObjectCarousel::new(TransportMux::default(), vec![], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "before the carousel epoch")]
    fn attach_before_epoch_rejected() {
        let mut c = single_file_carousel(1, 1.0);
        c.update(
            vec![CarouselFile::sized("i", DataSize::from_bytes(8))],
            SimTime::from_secs(10),
        );
        let _ = c.acquisition_complete(0, SimTime::from_secs(5));
    }
}
