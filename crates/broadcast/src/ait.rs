//! The Application Information Table (AIT).
//!
//! §4.2: the transport stream carries an AIT telling receivers which
//! applications are available and what to do with them. The
//! `application_control_code` drives the Xlet lifecycle; `AUTOSTART` is what
//! makes the PNA a *trigger application* that launches on every tuned
//! receiver without user action — the core trick behind the wakeup process.

use serde::{Deserialize, Serialize};

/// The AIT `application_control_code` values relevant to OddCI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppControlCode {
    /// Start immediately without user intervention (trigger application).
    Autostart,
    /// Available, started only on user request.
    Present,
    /// Stop the application if it is running.
    Kill,
    /// Destroy the application and free its resources.
    Destroy,
}

/// One AIT entry describing an application in the carousel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AitEntry {
    /// Application identifier (organisation + app id in real DVB; flattened).
    pub app_id: u32,
    /// Human-readable application name.
    pub name: String,
    /// Carousel file that holds the application's code.
    pub base_file: String,
    /// Lifecycle directive for receivers.
    pub control_code: AppControlCode,
}

/// The table itself, versioned like its DVB counterpart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Ait {
    /// Monotonically increasing table version.
    pub version: u32,
    /// Entries in signalling order.
    pub entries: Vec<AitEntry>,
}

impl Ait {
    /// Creates an empty version-0 table.
    pub fn new() -> Self {
        Ait::default()
    }

    /// Replaces the entries and bumps the version.
    pub fn publish(&mut self, entries: Vec<AitEntry>) {
        self.entries = entries;
        self.version += 1;
    }

    /// Looks an entry up by application id.
    pub fn entry(&self, app_id: u32) -> Option<&AitEntry> {
        self.entries.iter().find(|e| e.app_id == app_id)
    }

    /// All applications flagged AUTOSTART — what a freshly tuned receiver
    /// must launch.
    pub fn autostart_entries(&self) -> impl Iterator<Item = &AitEntry> {
        self.entries
            .iter()
            .filter(|e| e.control_code == AppControlCode::Autostart)
    }

    /// True if the table signals `Kill` or `Destroy` for `app_id`.
    pub fn is_terminated(&self, app_id: u32) -> bool {
        self.entry(app_id).is_some_and(|e| {
            matches!(
                e.control_code,
                AppControlCode::Kill | AppControlCode::Destroy
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pna_entry(code: AppControlCode) -> AitEntry {
        AitEntry {
            app_id: 0x1001,
            name: "pna-xlet".into(),
            base_file: "pna.xlet".into(),
            control_code: code,
        }
    }

    #[test]
    fn publish_bumps_version() {
        let mut ait = Ait::new();
        assert_eq!(ait.version, 0);
        ait.publish(vec![pna_entry(AppControlCode::Autostart)]);
        assert_eq!(ait.version, 1);
        ait.publish(vec![]);
        assert_eq!(ait.version, 2);
        assert!(ait.entries.is_empty());
    }

    #[test]
    fn autostart_filtering() {
        let mut ait = Ait::new();
        ait.publish(vec![
            pna_entry(AppControlCode::Autostart),
            AitEntry {
                app_id: 0x2002,
                name: "epg".into(),
                base_file: "epg.xlet".into(),
                control_code: AppControlCode::Present,
            },
        ]);
        let auto: Vec<_> = ait.autostart_entries().collect();
        assert_eq!(auto.len(), 1);
        assert_eq!(auto[0].app_id, 0x1001);
    }

    #[test]
    fn entry_lookup() {
        let mut ait = Ait::new();
        ait.publish(vec![pna_entry(AppControlCode::Autostart)]);
        assert!(ait.entry(0x1001).is_some());
        assert!(ait.entry(0xdead).is_none());
    }

    #[test]
    fn termination_signalling() {
        let mut ait = Ait::new();
        ait.publish(vec![pna_entry(AppControlCode::Kill)]);
        assert!(ait.is_terminated(0x1001));
        ait.publish(vec![pna_entry(AppControlCode::Autostart)]);
        assert!(!ait.is_terminated(0x1001));
        assert!(!ait.is_terminated(0x9999)); // absent app is not terminated
    }
}
