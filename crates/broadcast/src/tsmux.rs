//! MPEG-2 transport-stream multiplex model.
//!
//! A DTV service multiplexes audio, video and data elementary streams into
//! fixed 188-byte TS packets. The OddCI carousel rides in the *spare*
//! capacity β left over by the A/V programme (§4.1: "excess bandwidth in
//! the broadcast channel"). Framing costs bits, so the payload rate seen by
//! the carousel is lower than the nominal β; this module computes that
//! derating instead of hand-waving it.

use oddci_types::{Bandwidth, DataSize};
use serde::{Deserialize, Serialize};

/// Size of one MPEG-2 TS packet on the wire.
pub const TS_PACKET_BYTES: u64 = 188;
/// TS packet header (sync byte, PID, continuity counter, ...).
pub const TS_HEADER_BYTES: u64 = 4;
/// DSM-CC section overhead per section (table id, length, CRC32, ...).
pub const SECTION_HEADER_BYTES: u64 = 12;
/// Maximum payload carried by one DSM-CC section (DDB block).
pub const SECTION_PAYLOAD_BYTES: u64 = 4066;

/// The multiplex: nominal spare capacity plus framing accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportMux {
    /// Nominal spare capacity β dedicated to the data stream.
    pub nominal: Bandwidth,
}

impl TransportMux {
    /// Creates a multiplex with nominal spare capacity `beta`.
    pub fn new(beta: Bandwidth) -> Self {
        assert!(beta.bps() > 0.0, "spare capacity must be positive");
        TransportMux { nominal: beta }
    }

    /// Fraction of the nominal rate that reaches payload after TS packet
    /// and DSM-CC section framing.
    pub fn payload_efficiency(&self) -> f64 {
        let ts = (TS_PACKET_BYTES - TS_HEADER_BYTES) as f64 / TS_PACKET_BYTES as f64;
        let section =
            SECTION_PAYLOAD_BYTES as f64 / (SECTION_PAYLOAD_BYTES + SECTION_HEADER_BYTES) as f64;
        ts * section
    }

    /// Effective payload bandwidth after framing.
    pub fn payload_rate(&self) -> Bandwidth {
        Bandwidth::from_bps(self.nominal.bps() * self.payload_efficiency())
    }

    /// Bytes on the wire needed to carry `payload` bytes of carousel data.
    pub fn wire_size(&self, payload: DataSize) -> DataSize {
        let payload_bytes = payload.bytes_ceil();
        let sections = payload_bytes.div_ceil(SECTION_PAYLOAD_BYTES).max(1);
        let sectioned = payload_bytes + sections * SECTION_HEADER_BYTES;
        let ts_packets = sectioned.div_ceil(TS_PACKET_BYTES - TS_HEADER_BYTES);
        DataSize::from_bytes(ts_packets * TS_PACKET_BYTES)
    }
}

impl Default for TransportMux {
    fn default() -> Self {
        TransportMux::new(Bandwidth::from_mbps(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_between_90_and_100_percent() {
        let mux = TransportMux::default();
        let eff = mux.payload_efficiency();
        assert!(eff > 0.90 && eff < 1.0, "eff={eff}");
    }

    #[test]
    fn payload_rate_derates_nominal() {
        let mux = TransportMux::new(Bandwidth::from_mbps(1.0));
        assert!(mux.payload_rate().bps() < 1_000_000.0);
        assert!(mux.payload_rate().bps() > 900_000.0);
    }

    #[test]
    fn wire_size_exceeds_payload_by_framing() {
        let mux = TransportMux::default();
        let payload = DataSize::from_megabytes(1);
        let wire = mux.wire_size(payload);
        assert!(wire > payload);
        // Overhead bounded by the inverse of the efficiency plus one packet.
        let max = payload.bits() as f64 / mux.payload_efficiency() + (TS_PACKET_BYTES * 8) as f64;
        assert!((wire.bits() as f64) <= max, "wire={wire} max={max}");
    }

    #[test]
    fn tiny_payload_occupies_at_least_one_packet() {
        let mux = TransportMux::default();
        assert_eq!(
            mux.wire_size(DataSize::from_bytes(1)),
            DataSize::from_bytes(188)
        );
        assert_eq!(
            mux.wire_size(DataSize::from_bits(1)),
            DataSize::from_bytes(188)
        );
    }

    #[test]
    fn wire_size_is_monotone() {
        let mux = TransportMux::default();
        let mut prev = DataSize::ZERO;
        for kb in [1u64, 2, 4, 100, 1000, 10_000] {
            let w = mux.wire_size(DataSize::from_kilobytes(kb));
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_beta_rejected() {
        let _ = TransportMux::new(Bandwidth::from_bps(0.0));
    }
}
