//! A complete broadcast channel: transport mux + object carousel + AIT.
//!
//! This is the object the Controller configures (§4.3: *"the Controller
//! configures the carousel to transmit a control message composed by the
//! PNA Xlet and two other files"*) and that every receiver queries.

use crate::ait::{Ait, AitEntry};
use crate::carousel::{CarouselFile, ObjectCarousel};
use crate::tsmux::{TransportMux, SECTION_PAYLOAD_BYTES};
use oddci_telemetry::Telemetry;
use oddci_types::{Bandwidth, ChannelId, SimDuration, SimTime};

/// One DTV service carrying an OddCI carousel.
#[derive(Debug, Clone)]
pub struct BroadcastChannel {
    id: ChannelId,
    carousel: ObjectCarousel,
    ait: Ait,
    telemetry: Telemetry,
}

impl BroadcastChannel {
    /// Creates a channel with spare capacity `beta`, initially transmitting
    /// `files` with an empty AIT.
    pub fn new(id: ChannelId, beta: Bandwidth, files: Vec<CarouselFile>, epoch: SimTime) -> Self {
        BroadcastChannel {
            id,
            carousel: ObjectCarousel::new(TransportMux::new(beta), files, epoch),
            ait: Ait::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes this channel's carousel metrics into `tele`'s registry
    /// (consuming builder; the channel stays fully functional without it).
    pub fn attach_telemetry(mut self, tele: Telemetry) -> Self {
        self.telemetry = tele;
        self.publish_gauges();
        self
    }

    /// Refreshes the carousel geometry gauges after a content change.
    fn publish_gauges(&self) {
        let reg = self.telemetry.registry();
        reg.gauge("carousel.cycle_seconds")
            .set(self.carousel.cycle_duration().as_secs_f64());
        let payload: u64 = self
            .carousel
            .files()
            .iter()
            .map(|f| f.size().bytes_ceil())
            .sum();
        let sections: u64 = self
            .carousel
            .files()
            .iter()
            .map(|f| f.size().bytes_ceil().div_ceil(SECTION_PAYLOAD_BYTES).max(1))
            .sum();
        reg.gauge("carousel.payload_bytes").set(payload as f64);
        reg.gauge("carousel.sections_per_cycle")
            .set(sections as f64);
        reg.gauge("carousel.version")
            .set(f64::from(self.carousel.version()));
    }

    /// Channel identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The carousel currently on air.
    pub fn carousel(&self) -> &ObjectCarousel {
        &self.carousel
    }

    /// The signalling table currently on air.
    pub fn ait(&self) -> &Ait {
        &self.ait
    }

    /// Replaces carousel contents and signalling atomically at `now` —
    /// the Controller-side "inject a control message" operation.
    pub fn publish(&mut self, files: Vec<CarouselFile>, entries: Vec<AitEntry>, now: SimTime) {
        self.carousel.update(files, now);
        self.ait.publish(entries);
        self.telemetry
            .registry()
            .counter("carousel.publishes")
            .inc();
        self.publish_gauges();
    }

    /// Updates signalling only (e.g. flip AUTOSTART → KILL without touching
    /// the data files).
    pub fn publish_ait(&mut self, entries: Vec<AitEntry>) {
        self.ait.publish(entries);
    }

    /// When a receiver attaching at `attach` finishes acquiring the named
    /// file of the *current* carousel version, or `None` if absent.
    pub fn acquisition_complete(&self, file: &str, attach: SimTime) -> Option<SimTime> {
        self.carousel.acquisition_complete_by_name(file, attach)
    }

    /// Expected end-to-end latency to acquire `file` for a random attach
    /// phase, or `None` if absent.
    pub fn expected_acquisition(&self, file: &str) -> Option<SimDuration> {
        self.carousel
            .file_index(file)
            .map(|i| self.carousel.expected_acquisition(i))
    }

    /// When a receiver whose read of `file` failed at `failed_at` (digest
    /// mismatch, truncated module) finishes re-acquiring it. DSM-CC
    /// recovery is stateless: the receiver simply waits for the file's
    /// next pass and reads it end-to-end again, so a corrupt read costs
    /// up to one extra carousel cycle.
    pub fn reacquisition_complete(&self, file: &str, failed_at: SimTime) -> Option<SimTime> {
        self.carousel.acquisition_complete_by_name(file, failed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ait::AppControlCode;
    use oddci_types::DataSize;

    fn channel() -> BroadcastChannel {
        BroadcastChannel::new(
            ChannelId::new(1),
            Bandwidth::from_mbps(1.0),
            vec![CarouselFile::sized(
                "pna.xlet",
                DataSize::from_kilobytes(256),
            )],
            SimTime::ZERO,
        )
    }

    #[test]
    fn publish_updates_carousel_and_ait_together() {
        let mut ch = channel();
        ch.publish(
            vec![
                CarouselFile::sized("pna.xlet", DataSize::from_kilobytes(256)),
                CarouselFile::sized("image", DataSize::from_megabytes(8)),
                CarouselFile::sized("config", DataSize::from_bytes(512)),
            ],
            vec![AitEntry {
                app_id: 1,
                name: "pna".into(),
                base_file: "pna.xlet".into(),
                control_code: AppControlCode::Autostart,
            }],
            SimTime::from_secs(10),
        );
        assert_eq!(ch.carousel().version(), 2);
        assert_eq!(ch.ait().version, 1);
        assert!(ch
            .acquisition_complete("image", SimTime::from_secs(10))
            .is_some());
        assert!(ch
            .acquisition_complete("missing", SimTime::from_secs(10))
            .is_none());
    }

    #[test]
    fn ait_only_update_leaves_carousel_alone() {
        let mut ch = channel();
        let v = ch.carousel().version();
        ch.publish_ait(vec![]);
        assert_eq!(ch.carousel().version(), v);
        assert_eq!(ch.ait().version, 1);
    }

    #[test]
    fn expected_acquisition_present_for_existing_files() {
        let ch = channel();
        assert!(ch.expected_acquisition("pna.xlet").is_some());
        assert!(ch.expected_acquisition("nope").is_none());
    }

    #[test]
    fn id_accessor() {
        assert_eq!(channel().id(), ChannelId::new(1));
    }

    #[test]
    fn telemetry_gauges_track_carousel_geometry() {
        let tele = Telemetry::disabled();
        let mut ch = channel().attach_telemetry(tele.clone());
        let snap = tele.metrics_snapshot();
        assert_eq!(snap.gauges["carousel.payload_bytes"], 256.0 * 1024.0);
        assert!(snap.gauges["carousel.cycle_seconds"] > 0.0);
        ch.publish(
            vec![CarouselFile::sized("image", DataSize::from_megabytes(8))],
            vec![],
            SimTime::from_secs(1),
        );
        let snap = tele.metrics_snapshot();
        assert_eq!(snap.counters["carousel.publishes"], 1);
        assert_eq!(snap.gauges["carousel.version"], 2.0);
        assert_eq!(snap.gauges["carousel.payload_bytes"], 8.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn reacquisition_costs_another_pass() {
        let ch = channel();
        let first = ch.acquisition_complete("pna.xlet", SimTime::ZERO).unwrap();
        // The read completed but was corrupt: recovery re-reads from the
        // failure instant, landing strictly later.
        let again = ch.reacquisition_complete("pna.xlet", first).unwrap();
        assert!(again > first);
        assert!(ch.reacquisition_complete("missing", first).is_none());
    }
}
