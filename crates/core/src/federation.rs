//! Multi-channel federation (§4.3 extension).
//!
//! *"Using multiple channels to distribute the trigger application (PNA
//! Xlet) increases the potential number of receivers connected with a
//! direct impact on the maximum size of the OddCI-DTV systems that can be
//! instantiated."*
//!
//! A [`Federation`] is a Provider-level abstraction over several
//! independent broadcast channels, each with its own Controller, carousel
//! and audience. A federated job is split across channels proportionally
//! to their audiences; each channel wakes its own instance and works its
//! share of the bag; the federated makespan is the slowest channel's.
//! (The paper's Backend is assumed "suitably provisioned", so the shared
//! result sink is not modelled as a bottleneck.)

use crate::provider::{JobReport, ProviderRequest};
use crate::world::{OddciSim, World, WorldConfig};
use oddci_types::{ImageId, JobId, SimTime};
use oddci_workload::{Job, Task};
use serde::{Deserialize, Serialize};

/// One channel's slice of a federated submission.
struct ChannelSlice {
    sim: OddciSim,
    request: Option<ProviderRequest>,
    share: u64,
}

/// A federated report: per-channel reports plus the aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedReport {
    /// Total tasks completed across channels.
    pub tasks_completed: u64,
    /// Slowest channel's makespan (the federated response time).
    pub makespan_secs: f64,
    /// Per-channel `(share, makespan_secs)` in channel order.
    pub per_channel: Vec<(u64, f64)>,
}

/// A set of independent OddCI-DTV channels federated by one Provider.
pub struct Federation {
    channels: Vec<ChannelSlice>,
}

impl Federation {
    /// Builds a federation of `configs.len()` channels; each channel gets
    /// an independent world seeded from `seed`.
    pub fn new(configs: Vec<WorldConfig>, seed: u64) -> Self {
        assert!(
            !configs.is_empty(),
            "a federation needs at least one channel"
        );
        let channels = configs
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| ChannelSlice {
                sim: World::simulation(cfg, seed ^ (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
                request: None,
                share: 0,
            })
            .collect();
        Federation { channels }
    }

    /// Number of federated channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total audience across channels.
    pub fn total_audience(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.sim.world().config().nodes)
            .sum()
    }

    /// Splits `job` across channels proportionally to audience, wakes an
    /// instance of `target_total` nodes split the same way, and submits.
    ///
    /// # Panics
    /// Panics if the job has fewer tasks than channels.
    pub fn submit_job(&mut self, job: Job, target_total: u64) {
        let n_channels = self.channels.len() as u64;
        assert!(
            job.task_count() >= n_channels,
            "cannot split {} tasks over {} channels",
            job.task_count(),
            n_channels
        );
        let total_audience = self.total_audience().max(1);

        // Proportional shares, remainder to the largest channel.
        let mut shares: Vec<u64> = self
            .channels
            .iter()
            .map(|c| job.task_count() * c.sim.world().config().nodes / total_audience)
            .collect();
        let assigned: u64 = shares.iter().sum();
        let biggest = (0..self.channels.len())
            .max_by_key(|&i| self.channels[i].sim.world().config().nodes)
            .expect("non-empty");
        shares[biggest] += job.task_count() - assigned;
        // Every channel gets at least one task (shares can round to zero).
        for i in 0..shares.len() {
            if shares[i] == 0 {
                shares[i] = 1;
                shares[biggest] -= 1;
            }
        }

        let mut cursor = 0usize;
        for (i, slice) in self.channels.iter_mut().enumerate() {
            let share = shares[i];
            let tasks: Vec<Task> = job.tasks[cursor..cursor + share as usize]
                .iter()
                .enumerate()
                .map(|(k, t)| Task {
                    id: oddci_types::TaskId::new(k as u64),
                    ..t.clone()
                })
                .collect();
            cursor += share as usize;
            let sub_job = Job::new(
                JobId::new(job.id.raw()),
                ImageId::new(job.image.raw()),
                job.image_size,
                tasks,
            );
            let target = (target_total * slice.sim.world().config().nodes / total_audience).max(1);
            slice.share = share;
            slice.request = Some(slice.sim.submit_job(sub_job, target));
        }
    }

    /// Runs every channel until its slice completes or `horizon` passes.
    /// Returns the federated report if all channels finished.
    pub fn run(&mut self, horizon: SimTime) -> Option<FederatedReport> {
        let mut per_channel = Vec::with_capacity(self.channels.len());
        let mut total = 0;
        let mut slowest = 0.0f64;
        for slice in &mut self.channels {
            let request = slice.request.expect("submit_job before run");
            let report: JobReport = slice.sim.run_request(request, horizon)?;
            total += report.tasks_completed;
            slowest = slowest.max(report.makespan.as_secs_f64());
            per_channel.push((slice.share, report.makespan.as_secs_f64()));
        }
        Some(FederatedReport {
            tasks_completed: total,
            makespan_secs: slowest,
            per_channel,
        })
    }

    /// Access a channel's world (diagnostics).
    pub fn world(&self, channel: usize) -> &World {
        self.channels[channel].sim.world()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::{DataSize, SimDuration};
    use oddci_workload::JobGenerator;

    fn cfg(nodes: u64) -> WorldConfig {
        WorldConfig {
            nodes,
            ..Default::default()
        }
    }

    fn job(tasks: u64) -> Job {
        JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(200),
            DataSize::from_bytes(200),
            SimDuration::from_secs(30),
            5,
        )
        .generate(tasks)
    }

    #[test]
    fn federation_splits_and_completes() {
        let mut fed = Federation::new(vec![cfg(200), cfg(400)], 7);
        assert_eq!(fed.channel_count(), 2);
        assert_eq!(fed.total_audience(), 600);
        fed.submit_job(job(300), 120);
        let report = fed
            .run(SimTime::from_secs(14 * 24 * 3600))
            .expect("completes");
        assert_eq!(report.tasks_completed, 300);
        // Proportional split: 100 / 200.
        assert_eq!(report.per_channel[0].0, 100);
        assert_eq!(report.per_channel[1].0, 200);
        assert!(report.makespan_secs > 0.0);
    }

    #[test]
    fn single_channel_federation_equals_plain_world() {
        let mut fed = Federation::new(vec![cfg(300)], 9);
        fed.submit_job(job(150), 60);
        let fed_report = fed.run(SimTime::from_secs(14 * 24 * 3600)).expect("fed");

        let mut sim = World::simulation(cfg(300), 9 ^ 0x9e3779b97f4a7c15);
        let request = sim.submit_job(job(150), 60);
        let plain = sim
            .run_request(request, SimTime::from_secs(14 * 24 * 3600))
            .expect("plain");

        assert_eq!(fed_report.tasks_completed, 150);
        assert!(
            (fed_report.makespan_secs - plain.makespan.as_secs_f64()).abs() < 1e-9,
            "same seed derivation ⇒ identical run"
        );
    }

    #[test]
    fn more_channels_shrink_makespan() {
        // Same total work; one 300-node channel vs three of 100 nodes with
        // 3x the aggregate instance size... keep instance proportional:
        // 60 nodes of 300 vs 3x20 of 100 — same compute, similar makespan;
        // the win is the *audience ceiling*, so instead compare one channel
        // (can host 60) against a federation hosting 180 total.
        let mut small = Federation::new(vec![cfg(300)], 11);
        small.submit_job(job(600), 60);
        let small_report = small
            .run(SimTime::from_secs(30 * 24 * 3600))
            .expect("small");

        let mut big = Federation::new(vec![cfg(300), cfg(300), cfg(300)], 11);
        big.submit_job(job(600), 180);
        let big_report = big.run(SimTime::from_secs(30 * 24 * 3600)).expect("big");

        assert!(
            big_report.makespan_secs < small_report.makespan_secs,
            "3 channels ({:.0}s) must beat 1 channel ({:.0}s)",
            big_report.makespan_secs,
            small_report.makespan_secs
        );
    }

    #[test]
    fn tiny_channels_still_get_work() {
        let mut fed = Federation::new(vec![cfg(1000), cfg(20)], 13);
        fed.submit_job(job(50), 40);
        let report = fed
            .run(SimTime::from_secs(14 * 24 * 3600))
            .expect("completes");
        assert_eq!(report.tasks_completed, 50);
        assert!(
            report.per_channel[1].0 >= 1,
            "small channel gets at least one task"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_federation_rejected() {
        let _ = Federation::new(vec![], 1);
    }
}
