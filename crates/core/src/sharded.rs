//! Sharded Controller state: N [`Controller`]s, each owning a disjoint
//! slice of node membership.
//!
//! The paper's Controller must "serve millions of tuned devices" over
//! individual direct channels (§3.2). A single sequential Controller
//! serializes every heartbeat behind one ledger; the
//! [`ShardedController`] splits that ledger by a stable hash of the node
//! id, so heartbeat consolidation, loss detection and membership trimming
//! parallelize across shards while every per-shard transition (including
//! the `NodeLost` emitted on instance-transition heartbeats) behaves
//! exactly like the unsharded Controller's.
//!
//! Sharding contract:
//!
//! * **Partition** — [`shard_of`] assigns every node to exactly one shard;
//!   all traffic about a node (heartbeats, loss declarations, resets) is
//!   handled by that shard alone.
//! * **Shared carousel** — shards broadcast over one channel. Each shard
//!   signs from a disjoint [`MessageId`](oddci_types::MessageId) namespace
//!   (`shard_index + k·shard_count`) so PNA carousel-repeat deduplication
//!   never drops another shard's message.
//! * **Split targets** — an instance of target `T` over `S` shards is
//!   admitted to every shard with per-shard target `ceil(T/S)`
//!   ([`split_target`]). The sum slightly over-admits (at most `S − 1`
//!   extra members, trimmed by the usual §3.2 heartbeat-reply resets) and
//!   never under-admits.
//!
//! This type drives the monolithic (single-threaded) use of sharded state
//! and the unit tests for the invariants above; the live runtime
//! distributes the same per-shard `Controller`s across real OS threads.

use crate::controller::{Controller, ControllerOutput, ControllerPolicy, InstanceRequest};
use crate::messages::Heartbeat;
use oddci_types::{InstanceId, NodeId, Result, SimTime};

/// The shard owning `node` out of `shards` total: a Fibonacci-hash of the
/// node id, stable across the process and identical in every plane (the
/// monolithic wrapper, the live thread-per-shard headend, tests).
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    assert!(shards > 0, "a sharded controller needs at least one shard");
    // Fibonacci hashing: multiply by 2^64/φ and take the top bits. Node
    // ids are typically dense (0..N), which raw modulo would map onto a
    // correlated stripe pattern; the multiply decorrelates them.
    let h = node.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 32) as usize % shards
}

/// Splits an instance target across shards: every shard gets
/// `ceil(target/shards)` (capped so the total over-admission stays below
/// one member per shard). Never under-admits: the per-shard sum ≥ target.
pub fn split_target(target: u64, shards: usize) -> Vec<u64> {
    assert!(shards > 0, "a sharded controller needs at least one shard");
    let per = target.div_ceil(shards as u64);
    vec![per; shards]
}

/// N Controllers behind one facade, with node membership partitioned by
/// [`shard_of`]. See the module docs for the sharding contract.
pub struct ShardedController {
    shards: Vec<Controller>,
    next_instance: u64,
}

impl ShardedController {
    /// Creates `shards` Controllers signing with `key`. Each shard gets
    /// `policy` with its `assumed_audience` divided by the shard count
    /// (each shard only ever hears from its slice of the audience) and a
    /// disjoint message-id namespace.
    pub fn new(key: &[u8], policy: ControllerPolicy, shards: usize) -> Self {
        assert!(shards > 0, "a sharded controller needs at least one shard");
        let controllers = (0..shards)
            .map(|i| {
                let mut p = policy.clone();
                p.assumed_audience = (policy.assumed_audience / shards as u64).max(1);
                Controller::with_id_namespace(key, p, i as u64, shards as u64)
            })
            .collect();
        ShardedController {
            shards: controllers,
            next_instance: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        shard_of(node, self.shards.len())
    }

    /// Immutable access to one shard's Controller.
    pub fn shard(&self, index: usize) -> &Controller {
        &self.shards[index]
    }

    /// Mutable access to one shard's Controller (the live runtime moves
    /// these onto dedicated threads instead).
    pub fn shard_mut(&mut self, index: usize) -> &mut Controller {
        &mut self.shards[index]
    }

    /// Consumes the facade, yielding the per-shard Controllers (in shard
    /// order) for distribution across threads.
    pub fn into_shards(self) -> Vec<Controller> {
        self.shards
    }

    /// Creates an instance on every shard (per-shard targets via
    /// [`split_target`]) and returns its id plus every shard's wakeup
    /// broadcast.
    pub fn create_instance(
        &mut self,
        req: InstanceRequest,
        now: SimTime,
    ) -> (InstanceId, Vec<ControllerOutput>) {
        let id = InstanceId::new(self.next_instance);
        self.next_instance += 1;
        let mut out = Vec::new();
        let targets = split_target(req.target, self.shards.len());
        for (shard, target) in self.shards.iter_mut().zip(targets) {
            let shard_req = InstanceRequest { target, ..req };
            out.extend(shard.admit_instance(id, shard_req, now));
        }
        (id, out)
    }

    /// Dismantles `id` on every shard. Exactly **one** reset broadcast is
    /// returned (the carousel reaches every node regardless of shard);
    /// every shard still flips its record to `Dismantled` so straggler
    /// heartbeats are trimmed by whichever shard owns the node.
    pub fn dismantle(&mut self, id: InstanceId) -> Result<Vec<ControllerOutput>> {
        let mut broadcast = None;
        for shard in &mut self.shards {
            let outputs = shard.dismantle(id)?;
            if broadcast.is_none() {
                broadcast = Some(outputs);
            }
        }
        Ok(broadcast.unwrap_or_default())
    }

    /// Routes one heartbeat to the shard owning its node and returns that
    /// shard's outputs — the same `DirectReset`/`NodeLost` semantics as
    /// the unsharded Controller, including `NodeLost` on
    /// instance-transition heartbeats.
    pub fn on_heartbeat(&mut self, hb: Heartbeat, now: SimTime) -> Vec<ControllerOutput> {
        let shard = self.shard_of(hb.node);
        self.shards[shard].on_heartbeat(hb, now)
    }

    /// Ticks a single shard (loss detection + recomposition for its
    /// slice).
    pub fn tick_shard(&mut self, index: usize, now: SimTime) -> Vec<ControllerOutput> {
        self.shards[index].tick(now)
    }

    /// Ticks every shard, concatenating the outputs in shard order.
    pub fn tick(&mut self, now: SimTime) -> Vec<ControllerOutput> {
        (0..self.shards.len())
            .flat_map(|i| self.tick_shard(i, now))
            .collect()
    }

    /// Total member count of `id` across shards.
    pub fn instance_size(&self, id: InstanceId) -> u64 {
        self.shards.iter().map(|s| s.instance_size(id)).sum()
    }

    /// Total wakeup broadcasts issued for `id` across shards.
    pub fn wakeups_sent(&self, id: InstanceId) -> u32 {
        self.shards
            .iter()
            .filter_map(|s| s.instance(id).map(|r| r.wakeups_sent))
            .sum()
    }

    /// Total nodes tracked across shards. Because membership is a
    /// partition, this equals the number of distinct nodes heard from.
    pub fn known_nodes(&self) -> usize {
        self.shards.iter().map(|s| s.known_nodes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{ControlMessage, NodeRequirements, PnaStateKind, SignedMessage};
    use oddci_types::{DataSize, ImageId};
    use std::collections::BTreeSet;

    const KEY: &[u8] = b"shard-key";

    fn request(target: u64) -> InstanceRequest {
        InstanceRequest {
            image: ImageId::new(1),
            image_size: DataSize::from_megabytes(10),
            target,
            requirements: NodeRequirements::default(),
        }
    }

    fn busy_hb(node: u64, inst: InstanceId, t: u64) -> Heartbeat {
        Heartbeat {
            node: NodeId::new(node),
            state: PnaStateKind::Busy,
            instance: Some(inst),
            sent_at: SimTime::from_secs(t),
        }
    }

    #[test]
    fn shard_of_is_a_partition() {
        for shards in [1usize, 2, 3, 4, 8, 16] {
            let mut seen_per_shard = vec![0u64; shards];
            for n in 0..10_000u64 {
                let s = shard_of(NodeId::new(n), shards);
                assert!(s < shards);
                // Determinism: the same node always lands on the same shard.
                assert_eq!(s, shard_of(NodeId::new(n), shards));
                seen_per_shard[s] += 1;
            }
            // Balance: no shard is empty or grossly overloaded (3x mean).
            let mean = 10_000 / shards as u64;
            for (i, &count) in seen_per_shard.iter().enumerate() {
                assert!(count > 0, "shard {i}/{shards} owns no nodes");
                assert!(count < 3 * mean + 1, "shard {i}/{shards} owns {count}");
            }
        }
    }

    #[test]
    fn split_target_never_under_admits() {
        for target in [0u64, 1, 3, 7, 100, 1001] {
            for shards in [1usize, 2, 4, 8] {
                let split = split_target(target, shards);
                assert_eq!(split.len(), shards);
                let sum: u64 = split.iter().sum();
                assert!(sum >= target, "target {target} over {shards}: {split:?}");
                assert!(sum <= target + shards as u64);
            }
        }
    }

    #[test]
    fn message_ids_are_disjoint_across_shards() {
        let mut c = ShardedController::new(KEY, ControllerPolicy::default(), 4);
        let (_, outputs) = c.create_instance(request(100), SimTime::ZERO);
        let ids: BTreeSet<u64> = outputs
            .iter()
            .filter_map(|o| match o {
                ControllerOutput::Broadcast(SignedMessage { message, .. }) => {
                    Some(message.id().raw())
                }
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 4, "one wakeup per shard, all distinct ids");
        let strides: BTreeSet<u64> = ids.iter().map(|id| id % 4).collect();
        assert_eq!(strides.len(), 4, "each shard owns its own id residue");
    }

    #[test]
    fn membership_partitions_across_shards() {
        let mut c = ShardedController::new(KEY, ControllerPolicy::default(), 4);
        // Target with slack: the hash does not balance 64 nodes exactly
        // 16/16/16/16, so per-shard capacity must cover the skew.
        let (id, _) = c.create_instance(request(256), SimTime::ZERO);
        for n in 0..64u64 {
            c.on_heartbeat(busy_hb(n, id, 1), SimTime::from_secs(1));
        }
        // Every node landed in exactly one shard's ledger: the per-shard
        // counts sum to the node count (no duplicates, no drops) …
        assert_eq!(c.known_nodes(), 64);
        // … and per-shard membership sums to the aggregate instance size.
        let per_shard: u64 = (0..4).map(|s| c.shard(s).instance_size(id)).sum();
        assert_eq!(per_shard, 64);
        assert_eq!(c.instance_size(id), 64);
    }

    #[test]
    fn node_lost_fires_on_instance_transition_under_sharding() {
        let mut c = ShardedController::new(KEY, ControllerPolicy::default(), 4);
        let (a, _) = c.create_instance(request(8), SimTime::ZERO);
        let (b, _) = c.create_instance(request(8), SimTime::ZERO);
        c.on_heartbeat(busy_hb(5, a, 1), SimTime::from_secs(1));
        // The node reappears claiming a different instance (PNA crashed and
        // rebooted inside the miss budget): its shard must surface NodeLost
        // for the old membership — the PR-1 orphaned-task fix, sharded.
        let out = c.on_heartbeat(busy_hb(5, b, 2), SimTime::from_secs(2));
        assert!(
            out.contains(&ControllerOutput::NodeLost {
                node: NodeId::new(5),
                instance: a,
            }),
            "{out:?}"
        );
    }

    #[test]
    fn loss_detection_stays_per_shard() {
        let mut c = ShardedController::new(KEY, ControllerPolicy::default(), 2);
        let (id, _) = c.create_instance(request(8), SimTime::ZERO);
        for n in 0..4u64 {
            c.on_heartbeat(busy_hb(n, id, 0), SimTime::ZERO);
        }
        assert_eq!(c.instance_size(id), 4);
        // Default policy deadline is 180 s; everyone goes silent.
        let out = c.tick(SimTime::from_secs(181));
        let lost: BTreeSet<u64> = out
            .iter()
            .filter_map(|o| match o {
                ControllerOutput::NodeLost { node, .. } => Some(node.raw()),
                _ => None,
            })
            .collect();
        assert_eq!(lost, (0..4u64).collect());
        assert_eq!(c.instance_size(id), 0);
        assert_eq!(c.known_nodes(), 0);
    }

    #[test]
    fn dismantle_emits_one_reset_and_trims_stragglers_on_every_shard() {
        let mut c = ShardedController::new(KEY, ControllerPolicy::default(), 4);
        let (id, _) = c.create_instance(request(64), SimTime::ZERO);
        for n in 0..16u64 {
            c.on_heartbeat(busy_hb(n, id, 1), SimTime::from_secs(1));
        }
        let out = c.dismantle(id).unwrap();
        let resets = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ControllerOutput::Broadcast(SignedMessage {
                        message: ControlMessage::Reset(_),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(resets, 1, "one carousel reset reaches every shard's nodes");
        // A straggler on ANY shard is direct-reset by its owner.
        for n in 0..16u64 {
            let out = c.on_heartbeat(busy_hb(n, id, 10), SimTime::from_secs(10));
            assert_eq!(
                out,
                vec![ControllerOutput::DirectReset {
                    node: NodeId::new(n),
                    instance: id,
                }]
            );
        }
    }

    #[test]
    fn single_shard_behaves_like_plain_controller() {
        let mut sharded = ShardedController::new(KEY, ControllerPolicy::default(), 1);
        let mut plain = Controller::new(KEY, ControllerPolicy::default());
        let (a, _) = sharded.create_instance(request(3), SimTime::ZERO);
        let (b, _) = plain.create_instance(request(3), SimTime::ZERO);
        assert_eq!(a, b);
        for n in 0..3u64 {
            let sa = sharded.on_heartbeat(busy_hb(n, a, 1), SimTime::from_secs(1));
            let pa = plain.on_heartbeat(busy_hb(n, b, 1), SimTime::from_secs(1));
            assert_eq!(sa, pa);
        }
        assert_eq!(sharded.instance_size(a), plain.instance_size(b));
    }
}
