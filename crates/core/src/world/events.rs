//! Event vocabulary of the OddCI-DTV world simulation.
//!
//! Node-continuation events carry the node's **power-cycle epoch** at
//! scheduling time: a receiver that was switched off (and possibly on
//! again) must not be affected by continuations of its previous life
//! (an image acquisition, a compute completion, a heartbeat timer). The
//! handler drops any event whose epoch no longer matches.

use crate::messages::Heartbeat;
use oddci_types::{InstanceId, NodeId};

/// Every event the world reacts to. Task payloads live in per-node state,
/// not in the queue, so events stay small.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldEvent {
    /// A node's churn process fires (power on ↔ off).
    NodeToggle(NodeId),
    /// A node finishes acquiring the *configuration* of `instance` from the
    /// carousel; its PNA now considers the control message.
    ControlDelivery {
        /// The receiving node.
        node: NodeId,
        /// Which broadcast entry it read.
        instance: InstanceId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A node finishes acquiring the *image* of `instance`; its DVE starts.
    ImageAcquired {
        /// The node whose acquisition completed.
        node: NodeId,
        /// Instance joined.
        instance: InstanceId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A node's periodic heartbeat timer fires (message leaves the node).
    HeartbeatSend {
        /// The sender.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A heartbeat reaches the Controller (valid even if the sender died
    /// in flight — the bits are already on the wire).
    HeartbeatArrive(Heartbeat),
    /// A direct-channel reset reaches its target node.
    DirectResetArrive {
        /// Target node.
        node: NodeId,
        /// Instance to leave.
        instance: InstanceId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A node's task request reaches the Backend.
    TaskRequest {
        /// The requesting node.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
        /// Retry attempt (0 = first try); drives the fetch backoff.
        attempt: u32,
    },
    /// A node's fetch timer expires after a lost or stalled task request;
    /// it retries with exponential backoff.
    TaskRequestRetry {
        /// The retrying node.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
        /// Retry attempt about to be made.
        attempt: u32,
    },
    /// A node's retransmission timer expires after a lost result upload.
    ResultRetry {
        /// The node holding the computed result.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
        /// Retry attempt about to be made.
        attempt: u32,
    },
    /// A task's input data finishes downloading to the node.
    TaskInputArrived {
        /// The node receiving the input.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A node finishes computing its current task.
    TaskComputed {
        /// The computing node.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A task's result finishes uploading to the Backend.
    ResultArrived {
        /// The uploading node.
        node: NodeId,
        /// Power-cycle epoch at scheduling time.
        epoch: u64,
    },
    /// A crashed PNA finishes rebooting (fault injection); the node
    /// re-reads the carousel and resumes heartbeating.
    PnaRestart {
        /// The restarting node.
        node: NodeId,
        /// Software epoch assigned at crash time.
        epoch: u64,
    },
    /// The Controller's periodic maintenance timer.
    ControllerTick,
}
