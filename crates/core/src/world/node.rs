//! Per-node runtime state: the set-top box, its PNA, link, churn process
//! and in-flight task.

use crate::pna::Pna;
use oddci_net::DirectLink;
use oddci_receiver::{SetTopBox, UsageMode};
use oddci_sim::ChurnProcess;
use oddci_types::{JobId, SimTime};
use oddci_workload::Task;
use rand::rngs::SmallRng;

/// One simulated processing node (dense `Vec` entry, indexed by `NodeId`).
pub struct NodeRuntime {
    /// The receiver hardware + middleware.
    pub stb: SetTopBox,
    /// The resident agent.
    pub pna: Pna,
    /// The node's direct channel.
    pub link: DirectLink,
    /// The viewer's on/off behaviour.
    pub churn: ChurnProcess,
    /// Usage mode while powered (drawn once; a box whose owner watches TV
    /// is modelled as in-use for the whole session).
    pub usage: UsageMode,
    /// The node's private random stream.
    pub rng: SmallRng,
    /// Job served by the instance this node joined.
    pub job: Option<JobId>,
    /// Task currently being fetched/computed/uploaded.
    pub current_task: Option<Task>,
    /// True once the Backend told this node the job queue is empty.
    pub drained: bool,
    /// Monotonic power-cycle counter; stale in-flight events from before
    /// the last toggle are recognized and dropped by comparing epochs.
    pub epoch: u64,
    /// When this node accepted the current instance's wakeup (telemetry
    /// anchor for the DVE-boot span).
    pub accept_at: Option<SimTime>,
    /// When the current task fetch started (telemetry anchor).
    pub fetch_started: Option<SimTime>,
    /// When the current task's compute started (telemetry anchor).
    pub compute_started: Option<SimTime>,
    /// When the current result upload started (telemetry anchor).
    pub upload_started: Option<SimTime>,
}

impl NodeRuntime {
    /// True when the node is powered and can process events.
    pub fn is_on(&self) -> bool {
        self.stb.is_on()
    }

    /// Clears job-execution state (reset, power-off or job end).
    pub fn clear_work(&mut self) {
        self.job = None;
        self.current_task = None;
        self.drained = false;
        self.accept_at = None;
        self.fetch_started = None;
        self.compute_started = None;
        self.upload_started = None;
    }
}
