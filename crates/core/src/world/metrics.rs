//! Aggregate observables of a world run.

use oddci_faults::FaultCounters;
use oddci_sim::{Histogram, Summary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cap on stored size samples per instance (one per controller tick).
const TIMELINE_CAP: usize = 100_000;

/// Counters and distributions collected while the world runs.
pub struct WorldMetrics {
    /// Wakeup latency per joining node: publish of the instance's first
    /// wakeup → image running (seconds).
    pub wakeup_latency: Histogram,
    /// Nodes that completed a join (DVE running).
    pub joins: u64,
    /// Tasks completed across all jobs.
    pub tasks_completed: u64,
    /// Control-message deliveries processed by PNAs.
    pub control_deliveries: u64,
    /// Heartbeats that reached the Controller.
    pub heartbeats_delivered: u64,
    /// Direct resets delivered to nodes.
    pub direct_resets: u64,
    /// Node power-offs that orphaned an in-flight task.
    pub tasks_orphaned: u64,
    /// Tasks re-queued by the Backend (node losses, stale re-requests).
    pub requeues: u64,
    /// Task fetches retried after a lost request, lost input, or Backend
    /// stall (bounded exponential backoff).
    pub task_fetch_retries: u64,
    /// Retry chains abandoned after exhausting the backoff budget.
    pub fetch_aborts: u64,
    /// Injected-fault counts per class (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Instance-size samples per instance, one `(secs, size)` point per
    /// controller tick while the instance lives (capped).
    pub size_timeline: BTreeMap<u64, Vec<(f64, u64)>>,
}

impl Default for WorldMetrics {
    fn default() -> Self {
        WorldMetrics {
            // One-second unit: wakeups range from seconds to tens of minutes.
            wakeup_latency: Histogram::new(1.0),
            joins: 0,
            tasks_completed: 0,
            control_deliveries: 0,
            heartbeats_delivered: 0,
            direct_resets: 0,
            tasks_orphaned: 0,
            requeues: 0,
            task_fetch_retries: 0,
            fetch_aborts: 0,
            faults: FaultCounters::default(),
            size_timeline: BTreeMap::new(),
        }
    }
}

impl WorldMetrics {
    /// Appends one instance-size sample (no-op past the per-instance cap).
    pub fn sample_instance_size(&mut self, instance_raw: u64, at_secs: f64, size: u64) {
        let series = self.size_timeline.entry(instance_raw).or_default();
        if series.len() < TIMELINE_CAP {
            series.push((at_secs, size));
        }
    }

    /// Serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            wakeup_latency: self.wakeup_latency.stats().summary(),
            joins: self.joins,
            tasks_completed: self.tasks_completed,
            control_deliveries: self.control_deliveries,
            heartbeats_delivered: self.heartbeats_delivered,
            direct_resets: self.direct_resets,
            tasks_orphaned: self.tasks_orphaned,
            requeues: self.requeues,
            task_fetch_retries: self.task_fetch_retries,
            fetch_aborts: self.fetch_aborts,
            faults: self.faults,
        }
    }
}

/// Serializable snapshot of [`WorldMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Wakeup latency statistics in seconds.
    pub wakeup_latency: Summary,
    /// Nodes that completed a join.
    pub joins: u64,
    /// Tasks completed.
    pub tasks_completed: u64,
    /// PNA control-message deliveries.
    pub control_deliveries: u64,
    /// Heartbeats received by the Controller.
    pub heartbeats_delivered: u64,
    /// Direct resets delivered.
    pub direct_resets: u64,
    /// Tasks orphaned by churn.
    pub tasks_orphaned: u64,
    /// Tasks re-queued by the Backend.
    pub requeues: u64,
    /// Task fetches retried with backoff.
    pub task_fetch_retries: u64,
    /// Retry chains abandoned after the backoff budget.
    pub fetch_aborts: u64,
    /// Injected-fault counts per class.
    pub faults: FaultCounters,
}
