//! Aggregate observables of a world run.
//!
//! The counters live in the world's `oddci-telemetry` [`Registry`] (under
//! `world.*` names), so one Prometheus dump or registry snapshot sees the
//! same numbers as [`MetricsSnapshot`]. The handles here are the cached
//! hot-path accessors; both views are always on, so tracing on/off never
//! changes a reported value.

use oddci_faults::FaultCounters;
use oddci_sim::{Histogram, Summary};
use oddci_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cap on stored size samples per instance (one per controller tick).
const TIMELINE_CAP: usize = 100_000;

/// Counters and distributions collected while the world runs.
pub struct WorldMetrics {
    /// Wakeup latency per joining node: publish of the instance's first
    /// wakeup → image running (seconds).
    pub wakeup_latency: Histogram,
    /// Nodes that completed a join (DVE running).
    pub joins: Counter,
    /// Tasks completed across all jobs.
    pub tasks_completed: Counter,
    /// Control-message deliveries processed by PNAs.
    pub control_deliveries: Counter,
    /// Heartbeats that reached the Controller.
    pub heartbeats_delivered: Counter,
    /// Direct resets delivered to nodes.
    pub direct_resets: Counter,
    /// Node power-offs that orphaned an in-flight task.
    pub tasks_orphaned: Counter,
    /// Tasks re-queued by the Backend (node losses, stale re-requests).
    pub requeues: Counter,
    /// Task fetches retried after a lost request, lost input, or Backend
    /// stall (bounded exponential backoff).
    pub task_fetch_retries: Counter,
    /// Retry chains abandoned after exhausting the backoff budget.
    pub fetch_aborts: Counter,
    /// Injected-fault counts per class (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Instance-size samples per instance, one `(secs, size)` point per
    /// controller tick while the instance lives (capped).
    pub size_timeline: BTreeMap<u64, Vec<(f64, u64)>>,
}

impl Default for WorldMetrics {
    fn default() -> Self {
        WorldMetrics::registered(&Telemetry::disabled())
    }
}

impl WorldMetrics {
    /// Builds the metric set with every counter registered in `tele`'s
    /// registry under a `world.*` name.
    pub fn registered(tele: &Telemetry) -> Self {
        let reg = tele.registry();
        WorldMetrics {
            // One-second unit: wakeups range from seconds to tens of minutes.
            wakeup_latency: Histogram::new(1.0),
            joins: reg.counter("world.joins"),
            tasks_completed: reg.counter("world.tasks_completed"),
            control_deliveries: reg.counter("world.control_deliveries"),
            heartbeats_delivered: reg.counter("world.heartbeats_delivered"),
            direct_resets: reg.counter("world.direct_resets"),
            tasks_orphaned: reg.counter("world.tasks_orphaned"),
            requeues: reg.counter("world.requeues"),
            task_fetch_retries: reg.counter("world.task_fetch_retries"),
            fetch_aborts: reg.counter("world.fetch_aborts"),
            faults: FaultCounters::default(),
            size_timeline: BTreeMap::new(),
        }
    }

    /// Appends one instance-size sample (no-op past the per-instance cap).
    pub fn sample_instance_size(&mut self, instance_raw: u64, at_secs: f64, size: u64) {
        let series = self.size_timeline.entry(instance_raw).or_default();
        if series.len() < TIMELINE_CAP {
            series.push((at_secs, size));
        }
    }

    /// Serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            wakeup_latency: self.wakeup_latency.stats().summary(),
            joins: self.joins.get(),
            tasks_completed: self.tasks_completed.get(),
            control_deliveries: self.control_deliveries.get(),
            heartbeats_delivered: self.heartbeats_delivered.get(),
            direct_resets: self.direct_resets.get(),
            tasks_orphaned: self.tasks_orphaned.get(),
            requeues: self.requeues.get(),
            task_fetch_retries: self.task_fetch_retries.get(),
            fetch_aborts: self.fetch_aborts.get(),
            faults: self.faults,
        }
    }
}

/// Serializable snapshot of [`WorldMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Wakeup latency statistics in seconds.
    pub wakeup_latency: Summary,
    /// Nodes that completed a join.
    pub joins: u64,
    /// Tasks completed.
    pub tasks_completed: u64,
    /// PNA control-message deliveries.
    pub control_deliveries: u64,
    /// Heartbeats received by the Controller.
    pub heartbeats_delivered: u64,
    /// Direct resets delivered.
    pub direct_resets: u64,
    /// Tasks orphaned by churn.
    pub tasks_orphaned: u64,
    /// Tasks re-queued by the Backend.
    pub requeues: u64,
    /// Task fetches retried with backoff.
    pub task_fetch_retries: u64,
    /// Retry chains abandoned after the backoff budget.
    pub fetch_aborts: u64,
    /// Injected-fault counts per class.
    pub faults: FaultCounters,
}
