//! The complete OddCI-DTV world: broadcast channel, receiver population,
//! direct channels, churn, and the four control-plane components, wired
//! into one deterministic discrete-event simulation.
//!
//! # Modelling notes
//!
//! * **Carousel geometry drives wakeup latency.** Every published control
//!   message occupies the carousel as a small `config-<instance>` file
//!   followed by its `image-<instance>` file. A node reads the config at
//!   its next pass (expected half a cycle), decides, and — if it accepts —
//!   reads the image (a further full image-transfer). The paper's
//!   `W = 1.5·I/β` emerges from this geometry; it is nowhere assumed.
//! * **Control messages are delivered out-of-band.** The carousel model
//!   computes *when* a node finishes reading a file; the `SignedMessage`
//!   bytes themselves are handed to the PNA directly at that instant
//!   (serializing them into the simulated file would change nothing).
//! * **Simplification:** a carousel re-publication restarts the cycle for
//!   *new* acquisitions but does not disturb acquisitions already in
//!   flight (their completion instants were computed against the previous
//!   epoch). Re-publications are rare (job arrival, recomposition), so the
//!   distortion is bounded by one cycle per re-publication.
//! * **Churn is adversarial but honest:** a powered-off node silently
//!   orphans its task; the Backend only learns through the Controller's
//!   heartbeat-timeout machinery, exactly as §3.2 prescribes.

mod events;
mod metrics;
mod node;

pub use events::WorldEvent;
pub use metrics::{MetricsSnapshot, WorldMetrics};
pub use node::NodeRuntime;

use crate::backend::{Backend, TaskOutcome};
use crate::controller::{Controller, ControllerOutput, ControllerPolicy, InstanceRequest};
use crate::messages::{ControlMessage, SignedMessage};
use crate::pna::{HostInfo, Pna, PnaAction, PnaState};
use crate::provider::{JobReport, Provider, ProviderRequest};
use oddci_broadcast::ait::{AitEntry, AppControlCode};
use oddci_broadcast::carousel::CarouselFile;
use oddci_broadcast::BroadcastChannel;
use oddci_faults::{Backoff, FaultClass, FaultInjector, FaultPlan};
use oddci_net::link::{DirectLink, Direction};
use oddci_receiver::compute::{ComputeModel, UsageMode};
use oddci_receiver::dve::DveState;
use oddci_receiver::SetTopBox;
use oddci_sim::{ChurnProcess, Context, Model, SeedForge, Simulator, TraceLog};
use oddci_telemetry::{Phase, Telemetry, CONTROL_TRACK};
use oddci_types::{
    ChannelId, DataSize, DirectChannelConfig, DtvSystemConfig, InstanceId, JobId, NodeId,
    SimDuration, SimTime,
};
use oddci_workload::Job;
use rand::Rng;
use std::collections::BTreeMap;

/// Viewer churn parameters (exponential on/off sojourns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean powered-on sojourn.
    pub mean_on: SimDuration,
    /// Mean powered-off sojourn.
    pub mean_off: SimDuration,
}

/// Full parameterization of a world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Receiver population (the channel's audience).
    pub nodes: u64,
    /// Broadcast-side parameters (β, module size, AUTOSTART latency).
    pub dtv: DtvSystemConfig,
    /// Direct-channel parameters (δ, latency, loss).
    pub direct: DirectChannelConfig,
    /// Controller policy (heartbeats, sizing, recomposition).
    pub policy: ControllerPolicy,
    /// Execution-time model (paper-calibrated by default).
    pub compute: ComputeModel,
    /// Churn process, or `None` for an always-on population.
    pub churn: Option<ChurnConfig>,
    /// Fraction of powered nodes actively watching TV (in-use mode).
    pub in_use_fraction: f64,
    /// Controller maintenance interval.
    pub controller_tick: SimDuration,
    /// Controller↔PNA shared authentication key.
    pub key: Vec<u8>,
    /// When `Some(n)`, record up to `n` timeline milestones (publishes,
    /// joins, losses, job completions) retrievable via [`World::trace`].
    pub trace_capacity: Option<usize>,
    /// Faults to inject (empty by default — a fault-free world).
    pub faults: FaultPlan,
    /// Retry policy for task fetches and result uploads that hit injected
    /// losses or Backend stalls.
    pub fetch_backoff: Backoff,
    /// Observability: the metrics registry is always on; pass
    /// [`Telemetry::recording`] to also capture span/instant events for
    /// trace export. Recording is write-only and never perturbs the
    /// deterministic simulation.
    pub telemetry: Telemetry,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            nodes: 1_000,
            dtv: DtvSystemConfig::default(),
            direct: DirectChannelConfig::default(),
            policy: ControllerPolicy::default(),
            compute: ComputeModel::paper(),
            churn: None,
            in_use_fraction: 0.5,
            controller_tick: SimDuration::from_secs(60),
            key: b"oddci-dtv-controller".to_vec(),
            trace_capacity: None,
            faults: FaultPlan::none(),
            fetch_backoff: Backoff::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Size of small control-plane messages on the direct channel (requests).
const REQUEST_BYTES: u64 = 128;
/// Size of the resident PNA Xlet in the carousel.
const PNA_XLET_BYTES: u64 = 256 * 1024;
/// Size of a `config-<instance>` carousel file.
const CONFIG_BYTES: u64 = 512;
/// AIT application id of the PNA trigger application.
const PNA_APP_ID: u32 = 0x1001;

struct BroadcastEntry {
    msg: SignedMessage,
    /// `Some(size)` while the wakeup image is on air; `None` after reset.
    image_size: Option<DataSize>,
    /// First publish instant (wakeup-latency baseline for joins).
    first_publish: SimTime,
}

/// The world model (implements [`Model`]); drive it through [`OddciSim`].
pub struct World {
    config: WorldConfig,
    channel: BroadcastChannel,
    controller: Controller,
    backend: Backend,
    provider: Provider,
    nodes: Vec<NodeRuntime>,
    entries: BTreeMap<InstanceId, BroadcastEntry>,
    instance_job: BTreeMap<InstanceId, JobId>,
    job_instance: BTreeMap<JobId, InstanceId>,
    metrics: WorldMetrics,
    trace: TraceLog,
    /// Compiled fault plan; pure per-query decisions (see `oddci-faults`).
    injector: FaultInjector,
    /// Seed for deterministic backoff jitter (per-node mixing).
    jitter_seed: u64,
    /// Shared telemetry handle (clone of `config.telemetry`), cached for
    /// hot-path span/instant recording.
    tele: Telemetry,
    /// Backend queue-depth gauge (pending tasks across open jobs),
    /// refreshed on every controller tick.
    queue_depth: oddci_telemetry::Gauge,
}

fn config_file(inst: InstanceId) -> String {
    format!("config-{}", inst.raw())
}

fn image_file(inst: InstanceId) -> String {
    format!("image-{}", inst.raw())
}

impl World {
    /// Builds a world and wraps it in a ready-to-run [`OddciSim`].
    pub fn simulation(config: WorldConfig, seed: u64) -> OddciSim {
        OddciSim::new(config, seed)
    }

    fn new(mut config: WorldConfig, seed: u64) -> World {
        config.dtv.validate().expect("valid DTV config");
        config
            .direct
            .validate()
            .expect("valid direct-channel config");
        config
            .policy
            .heartbeat
            .validate()
            .expect("valid heartbeat config");
        assert!(
            (0.0..=1.0).contains(&config.in_use_fraction),
            "in_use_fraction must be in [0,1]"
        );
        // The Controller's audience estimate is the channel population.
        config.policy.assumed_audience = config.nodes;
        let trace_capacity = config.trace_capacity;

        let forge = SeedForge::new(seed);
        let chan_id = ChannelId::new(1);
        let channel = BroadcastChannel::new(
            chan_id,
            config.dtv.beta,
            vec![CarouselFile::sized(
                "pna.xlet",
                DataSize::from_bytes(PNA_XLET_BYTES),
            )],
            SimTime::ZERO,
        );
        let controller = Controller::new(&config.key, config.policy.clone());

        let mut nodes = Vec::with_capacity(config.nodes as usize);
        for i in 0..config.nodes {
            let mut usage_rng = forge.indexed_rng("usage", i);
            let usage = if usage_rng.random::<f64>() < config.in_use_fraction {
                UsageMode::InUse
            } else {
                UsageMode::Standby
            };
            let churn = match config.churn {
                Some(c) => ChurnProcess::steady_state_init(
                    c.mean_on,
                    c.mean_off,
                    forge.indexed_seed("churn", i),
                ),
                None => ChurnProcess::always_on(forge.indexed_seed("churn", i)),
            };
            let mut stb = SetTopBox::new(NodeId::new(i));
            if churn.state() == oddci_sim::OnOffState::On {
                stb.power_on(chan_id, usage);
            }
            nodes.push(NodeRuntime {
                stb,
                pna: Pna::new(NodeId::new(i), &config.key),
                link: DirectLink::new(config.direct.clone()),
                churn,
                usage,
                rng: forge.indexed_rng("node", i),
                job: None,
                current_task: None,
                drained: false,
                epoch: 0,
                accept_at: None,
                fetch_started: None,
                compute_started: None,
                upload_started: None,
            });
        }

        // Own labelled child seeds: the fault plan and the backoff jitter
        // never perturb the node/churn/usage streams above.
        let injector = FaultInjector::new(config.faults.clone(), forge.seed("faults"));
        let jitter_seed = forge.seed("fetch-jitter");

        let tele = config.telemetry.clone();
        let metrics = WorldMetrics::registered(&tele);
        let queue_depth = tele.registry().gauge("backend.queue_depth");
        let channel = channel.attach_telemetry(tele.clone());

        World {
            config,
            channel,
            controller,
            backend: Backend::new(),
            provider: Provider::new(),
            nodes,
            entries: BTreeMap::new(),
            instance_job: BTreeMap::new(),
            job_instance: BTreeMap::new(),
            metrics,
            trace: match trace_capacity {
                Some(n) => TraceLog::new(n),
                None => TraceLog::disabled(),
            },
            injector,
            jitter_seed,
            tele,
            queue_depth,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The Controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The Backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The Provider.
    pub fn provider(&self) -> &Provider {
        &self.provider
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &WorldMetrics {
        &self.metrics
    }

    /// The world's telemetry handle (registry + recorder).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// The milestone timeline (empty unless `trace_capacity` was set).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// One node's runtime state (tests and harnesses).
    pub fn node(&self, id: NodeId) -> &NodeRuntime {
        &self.nodes[id.index()]
    }

    /// Number of nodes currently powered on.
    pub fn powered_on(&self) -> u64 {
        self.nodes.iter().filter(|n| n.is_on()).count() as u64
    }

    /// Number of nodes whose DVE is currently running `inst`'s image.
    pub fn running_members(&self, inst: InstanceId) -> u64 {
        self.nodes
            .iter()
            .filter(|n| match n.pna.state() {
                PnaState::Busy(dve) => dve.instance == inst && dve.state() == DveState::Running,
                PnaState::Idle => false,
            })
            .count() as u64
    }

    /// Final report of a request, if complete.
    pub fn job_report(&self, req: ProviderRequest) -> Option<JobReport> {
        self.provider.report(req)
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn host_info(node: &NodeRuntime) -> HostInfo {
        HostInfo {
            free_memory: DataSize::from_bits(node.stb.hardware.ram.bits() / 2),
            usage: node.usage,
        }
    }

    fn heartbeat_size(&self) -> DataSize {
        DataSize::from_bytes(u64::from(self.config.policy.heartbeat.message_bytes))
    }

    fn send_heartbeat(
        &mut self,
        id: NodeId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let size = self.heartbeat_size();
        if !self.nodes[id.index()].is_on() {
            return;
        }
        // Fault hooks: a partition swallows the beat wholesale; the
        // heartbeat-drop class loses individual messages. Either way the
        // Controller's miss-threshold machinery is what notices.
        if self.injector.partitioned(id, now) {
            self.metrics.faults.record(FaultClass::Partition);
            return;
        }
        if self.injector.heartbeat_dropped(id, now) {
            self.metrics.faults.record(FaultClass::HeartbeatDrop);
            return;
        }
        let node = &mut self.nodes[id.index()];
        let hb = node.pna.heartbeat(now);
        let done = node.link.transfer_telemetered(
            now,
            size,
            Direction::Up,
            &mut node.rng,
            &self.tele,
            id.raw(),
        );
        self.tele
            .instant(now.as_micros(), Phase::Heartbeat, id.raw(), 0);
        sched(done, WorldEvent::HeartbeatArrive(hb));
    }

    fn request_task(
        &mut self,
        id: NodeId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        self.request_task_attempt(id, 0, now, sched);
    }

    /// Sends (or re-sends) a task request upstream. A request lost to a
    /// fault episode is retried after a backoff delay, so a transient
    /// outage costs time, never liveness.
    fn request_task_attempt(
        &mut self,
        id: NodeId,
        attempt: u32,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let node = &mut self.nodes[id.index()];
        // Anchor the task.fetch span at the first attempt; retries extend
        // the same span rather than restarting it.
        if node.fetch_started.is_none() {
            node.fetch_started = Some(now);
        }
        let done = node.link.transfer_faulted_telemetered(
            now,
            DataSize::from_bytes(REQUEST_BYTES),
            Direction::Up,
            &mut node.rng,
            &self.injector,
            id,
            &mut self.metrics.faults,
            &self.tele,
        );
        match done {
            Some(done) => {
                let epoch = self.nodes[id.index()].epoch;
                sched(
                    done,
                    WorldEvent::TaskRequest {
                        node: id,
                        epoch,
                        attempt,
                    },
                );
            }
            None => self.schedule_fetch_retry(id, attempt, now, sched),
        }
    }

    /// Books the next fetch retry (exponential backoff, deterministic
    /// jitter); after `max_attempts` the node parks as drained and waits
    /// for the Controller-tick re-kick.
    fn schedule_fetch_retry(
        &mut self,
        id: NodeId,
        attempt: u32,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        match self
            .config
            .fetch_backoff
            .delay(attempt, self.jitter_seed ^ id.raw())
        {
            Some(delay) => {
                self.metrics.task_fetch_retries.inc();
                self.tele
                    .instant(now.as_micros(), Phase::Retry, id.raw(), u64::from(attempt));
                let epoch = self.nodes[id.index()].epoch;
                sched(
                    now + delay,
                    WorldEvent::TaskRequestRetry {
                        node: id,
                        epoch,
                        attempt: attempt + 1,
                    },
                );
            }
            None => {
                self.metrics.fetch_aborts.inc();
                self.nodes[id.index()].drained = true;
            }
        }
    }

    /// Re-kick drained members of `job`'s instance after tasks reappeared.
    fn kick_drained(
        &mut self,
        job: JobId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let Some(&inst) = self.job_instance.get(&job) else {
            return;
        };
        let members: Vec<NodeId> = self
            .controller
            .instance(inst)
            .map(|r| r.members.iter().copied().collect())
            .unwrap_or_default();
        for m in members {
            let node = &self.nodes[m.index()];
            let runnable = node.is_on()
                && node.drained
                && node.current_task.is_none()
                && node.pna.instance() == Some(inst);
            if runnable {
                self.nodes[m.index()].drained = false;
                self.request_task(m, now, sched);
            }
        }
    }

    /// A node left its instance while possibly holding a task.
    fn orphan_task_of(
        &mut self,
        id: NodeId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        if self.nodes[id.index()].current_task.is_some() {
            self.metrics.tasks_orphaned.inc();
            let affected = self.backend.node_lost(id);
            self.metrics.requeues.set(self.backend.total_requeues());
            self.nodes[id.index()].current_task = None;
            for job in affected {
                self.kick_drained(job, now, sched);
            }
        }
    }

    fn rebuild_carousel(&mut self, now: SimTime) {
        let mut files = vec![CarouselFile::sized(
            "pna.xlet",
            DataSize::from_bytes(PNA_XLET_BYTES),
        )];
        for (&inst, entry) in &self.entries {
            files.push(CarouselFile::sized(
                config_file(inst),
                DataSize::from_bytes(CONFIG_BYTES),
            ));
            if let Some(size) = entry.image_size {
                files.push(CarouselFile::sized(image_file(inst), size));
            }
        }
        let ait = vec![AitEntry {
            app_id: PNA_APP_ID,
            name: "pna-xlet".into(),
            base_file: "pna.xlet".into(),
            control_code: AppControlCode::Autostart,
        }];
        self.channel.publish(files, ait, now);
    }

    /// Publishes a signed control message through the carousel and
    /// schedules its delivery to every powered node.
    fn publish(
        &mut self,
        signed: SignedMessage,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let inst = signed.message.instance();
        match signed.message {
            ControlMessage::Wakeup(w) => {
                let first = self.entries.get(&inst).map_or(now, |e| e.first_publish);
                self.entries.insert(
                    inst,
                    BroadcastEntry {
                        msg: signed,
                        image_size: Some(w.image_size),
                        first_publish: first,
                    },
                );
            }
            ControlMessage::Reset(_) => {
                let first = self.entries.get(&inst).map_or(now, |e| e.first_publish);
                self.entries.insert(
                    inst,
                    BroadcastEntry {
                        msg: signed,
                        image_size: None,
                        first_publish: first,
                    },
                );
            }
        }
        self.trace.record(now, || match signed.message {
            ControlMessage::Wakeup(w) => format!(
                "broadcast wakeup for {inst} (image {}, p={})",
                w.image_size, w.probability
            ),
            ControlMessage::Reset(_) => format!("broadcast reset for {inst}"),
        });
        self.tele.instant(
            now.as_micros(),
            Phase::CarouselPublish,
            CONTROL_TRACK,
            inst.raw(),
        );
        self.rebuild_carousel(now);
        self.schedule_deliveries_for(inst, now, sched);
    }

    fn schedule_deliveries_for(
        &mut self,
        inst: InstanceId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let attach = now + self.config.dtv.autostart_latency;
        let cfg = config_file(inst);
        let Some(done) = self.channel.acquisition_complete(&cfg, attach) else {
            return;
        };
        // All powered nodes share the attach instant here, but their
        // *config read* completes at the same carousel pass; the per-node
        // phase spread happens on the image read, whose offset in the
        // cycle they hit at different times only when they power on at
        // different instants. To retain the per-node spread the carousel
        // pass is the same for everyone — which is physically exact:
        // broadcast is simultaneous.
        for i in 0..self.nodes.len() {
            let node = &self.nodes[i];
            if !node.is_on() {
                continue;
            }
            let (id, epoch) = (node.pna.node(), node.epoch);
            let at = self.delayed_control(id, done);
            sched(
                at,
                WorldEvent::ControlDelivery {
                    node: id,
                    instance: inst,
                    epoch,
                },
            );
        }
    }

    fn schedule_deliveries_to(
        &mut self,
        id: NodeId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let attach = now + self.config.dtv.autostart_latency;
        let epoch = self.nodes[id.index()].epoch;
        let insts: Vec<InstanceId> = self.entries.keys().copied().collect();
        for inst in insts {
            if let Some(done) = self
                .channel
                .acquisition_complete(&config_file(inst), attach)
            {
                let at = self.delayed_control(id, done);
                sched(
                    at,
                    WorldEvent::ControlDelivery {
                        node: id,
                        instance: inst,
                        epoch,
                    },
                );
            }
        }
    }

    /// Applies the control-delay fault class to a delivery instant: a
    /// middleware hiccup postpones the PNA's reaction to a control message
    /// without losing it (the carousel repeats; the bits are not gone).
    fn delayed_control(&mut self, id: NodeId, done: SimTime) -> SimTime {
        match self.injector.control_delay(id, done) {
            Some(d) => {
                self.metrics.faults.record(FaultClass::ControlDelay);
                done + d
            }
            None => done,
        }
    }

    fn process_outputs(
        &mut self,
        outputs: Vec<ControllerOutput>,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        for out in outputs {
            match out {
                ControllerOutput::Broadcast(msg) => self.publish(msg, now, sched),
                ControllerOutput::DirectReset { node, instance } => {
                    let n = &mut self.nodes[node.index()];
                    if n.is_on() {
                        let done = n.link.transfer_faulted_telemetered(
                            now,
                            DataSize::from_bytes(REQUEST_BYTES),
                            Direction::Down,
                            &mut n.rng,
                            &self.injector,
                            node,
                            &mut self.metrics.faults,
                            &self.tele,
                        );
                        // A reset lost to a fault episode self-heals: the
                        // Controller re-issues it on the node's next
                        // out-of-instance heartbeat.
                        if let Some(done) = done {
                            let epoch = self.nodes[node.index()].epoch;
                            sched(
                                done,
                                WorldEvent::DirectResetArrive {
                                    node,
                                    instance,
                                    epoch,
                                },
                            );
                        }
                    }
                }
                ControllerOutput::NodeLost { node, instance } => {
                    self.trace
                        .record(now, || format!("{node} lost from {instance}"));
                    self.tele
                        .instant(now.as_micros(), Phase::NodeLost, node.raw(), instance.raw());
                    let affected = self.backend.node_lost(node);
                    self.metrics.requeues.set(self.backend.total_requeues());
                    for job in affected {
                        self.kick_drained(job, now, sched);
                    }
                }
            }
        }
    }

    fn job_finished(
        &mut self,
        job: JobId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let Some(req) = self.provider.request_for_job(job) else {
            return;
        };
        let Some(&inst) = self.job_instance.get(&job) else {
            return;
        };
        let wakeups = self.controller.instance(inst).map_or(0, |r| r.wakeups_sent);
        let completed = self.backend.completed_count(job);
        let requeues = self.backend.requeue_count(job);
        if self
            .provider
            .complete(req, now, completed, requeues, wakeups)
            .is_some()
        {
            self.trace.record(now, || {
                format!("{job} complete: {completed} tasks, {requeues} requeues")
            });
            if let Some(report) = self.provider.report(req) {
                let begin = now.as_micros().saturating_sub(report.makespan.as_micros());
                self.tele.span(
                    begin,
                    now.as_micros(),
                    Phase::JobRun,
                    CONTROL_TRACK,
                    job.raw(),
                );
            }
            if let Ok(outputs) = self.controller.dismantle(inst) {
                self.process_outputs(outputs, now, sched);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_control_delivery(
        &mut self,
        id: NodeId,
        inst: InstanceId,
        epoch: u64,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let Some(entry) = self.entries.get(&inst) else {
            return;
        };
        let msg = entry.msg;
        let has_image = entry.image_size.is_some();
        let first_publish = entry.first_publish;
        if !self.nodes[id.index()].is_on() || self.nodes[id.index()].epoch != epoch {
            return;
        }
        self.metrics.control_deliveries.inc();
        // Middleware: the AIT AUTOSTART (re)launches the PNA Xlet.
        let ait = self.channel.ait().clone();
        let host = Self::host_info(&self.nodes[id.index()]);
        let node = &mut self.nodes[id.index()];
        node.stb.apps.apply_ait(&ait);
        let action = node.pna.on_control_message(&msg, host, &mut node.rng);
        match action {
            PnaAction::BeginAcquisition { instance, .. } => {
                // Publish → config read: the paper's wakeup *waiting*
                // component. The acceptance decision happens here too.
                self.tele.span(
                    first_publish.as_micros(),
                    now.as_micros(),
                    Phase::WakeupWait,
                    id.raw(),
                    instance.raw(),
                );
                self.tele
                    .instant(now.as_micros(), Phase::PnaAccept, id.raw(), instance.raw());
                self.nodes[id.index()].accept_at = Some(now);
                if has_image {
                    if let Some(done) = self
                        .channel
                        .acquisition_complete(&image_file(instance), now)
                    {
                        let epoch = self.nodes[id.index()].epoch;
                        sched(
                            done,
                            WorldEvent::ImageAcquired {
                                node: id,
                                instance,
                                epoch,
                            },
                        );
                    }
                }
                // State-change heartbeat: the Controller learns of the join
                // without waiting a full heartbeat interval.
                self.send_heartbeat(id, now, sched);
            }
            PnaAction::DveDestroyed { .. } => {
                self.orphan_task_of(id, now, sched);
                self.nodes[id.index()].clear_work();
                self.send_heartbeat(id, now, sched);
            }
            PnaAction::None => {}
        }
    }

    fn on_image_acquired(
        &mut self,
        id: NodeId,
        inst: InstanceId,
        epoch: u64,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let first_publish = match self.entries.get(&inst) {
            Some(e) => e.first_publish,
            None => return,
        };
        let job = self.instance_job.get(&inst).copied();
        {
            let node = &mut self.nodes[id.index()];
            if !node.is_on() || node.epoch != epoch {
                return;
            }
            // The PNA may have been reset (or re-targeted) while loading.
            let loading = matches!(
                node.pna.state(),
                PnaState::Busy(dve) if dve.instance == inst && dve.state() == DveState::Loading
            );
            if !loading {
                return;
            }
        }
        // Fault hook: a corrupted or truncated module fails its checksum at
        // the end of the read. DSM-CC recovery is stateless — the receiver
        // simply re-reads the file from the (still-cycling) carousel, which
        // costs up to one more full pass.
        if let Some(class) = self.injector.carousel_fault(id, now) {
            self.metrics.faults.record(class);
            if let Some(done) = self.channel.reacquisition_complete(&image_file(inst), now) {
                sched(
                    done,
                    WorldEvent::ImageAcquired {
                        node: id,
                        instance: inst,
                        epoch,
                    },
                );
            }
            return;
        }
        let accept_at = {
            let node = &mut self.nodes[id.index()];
            node.pna.image_ready().expect("loading DVE starts");
            node.job = job;
            node.accept_at.unwrap_or(first_publish)
        };
        self.metrics.joins.inc();
        self.metrics
            .wakeup_latency
            .add((now - first_publish).as_secs_f64());
        // Acceptance → image running: the paper's image-transfer component
        // of wakeup (`I/β` under carousel framing).
        self.tele.span(
            accept_at.as_micros(),
            now.as_micros(),
            Phase::DveBoot,
            id.raw(),
            inst.raw(),
        );
        self.trace.record(now, || {
            format!(
                "{id} joined {inst} ({:.1}s after publish)",
                (now - first_publish).as_secs_f64()
            )
        });
        self.send_heartbeat(id, now, sched);
        if job.is_some() {
            self.request_task(id, now, sched);
        }
    }

    fn on_task_request(
        &mut self,
        id: NodeId,
        epoch: u64,
        attempt: u32,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let node = &mut self.nodes[id.index()];
        if !node.is_on() || node.epoch != epoch || node.current_task.is_some() {
            return;
        }
        let running = matches!(
            node.pna.state(),
            PnaState::Busy(dve) if dve.state() == DveState::Running
        );
        let Some(job) = node.job else { return };
        if !running {
            return;
        }
        // Fault hook: a stalled Backend leaves the request unanswered; the
        // node's fetch timeout fires and it retries with backoff.
        if self.injector.backend_stalled(now).is_some() {
            self.metrics.faults.record(FaultClass::BackendStall);
            self.schedule_fetch_retry(id, attempt, now, sched);
            return;
        }
        let outcome = self.backend.fetch_task(job, id);
        // fetch_task recycles stale assignments (idempotent re-assignment),
        // which shows up as requeues.
        self.metrics.requeues.set(self.backend.total_requeues());
        match outcome {
            Ok(TaskOutcome::Assigned(task)) => {
                let node = &mut self.nodes[id.index()];
                let done = if task.input_size.is_zero() {
                    Some(now + node.link.config().latency)
                } else {
                    node.link.transfer_faulted_telemetered(
                        now,
                        task.input_size,
                        Direction::Down,
                        &mut node.rng,
                        &self.injector,
                        id,
                        &mut self.metrics.faults,
                        &self.tele,
                    )
                };
                match done {
                    Some(done) => {
                        self.nodes[id.index()].current_task = Some(task);
                        sched(done, WorldEvent::TaskInputArrived { node: id, epoch });
                    }
                    // Input lost in flight: leave `current_task` empty so
                    // the Backend's stale-assignment recycling hands the
                    // task back out; this node just asks again later.
                    None => self.schedule_fetch_retry(id, attempt, now, sched),
                }
            }
            Ok(TaskOutcome::Drained) => {
                self.nodes[id.index()].drained = true;
            }
            Err(_) => {}
        }
    }

    fn on_task_input(
        &mut self,
        id: NodeId,
        epoch: u64,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let compute = self.config.compute.clone();
        let node = &mut self.nodes[id.index()];
        if !node.is_on() || node.epoch != epoch {
            return;
        }
        let Some(task) = &node.current_task else {
            return;
        };
        let task_id = task.id.raw();
        let cost = task.cost;
        let usage = node.usage;
        // Request sent → input fully here: the task.fetch span closes.
        let fetch_started = node.fetch_started.take().unwrap_or(now);
        node.compute_started = Some(now);
        self.tele.span(
            fetch_started.as_micros(),
            now.as_micros(),
            Phase::TaskFetch,
            id.raw(),
            task_id,
        );
        let dur = compute.sample_instrumented(cost, usage, &mut node.rng, &self.tele);
        sched(now + dur, WorldEvent::TaskComputed { node: id, epoch });
    }

    fn on_task_computed(
        &mut self,
        id: NodeId,
        epoch: u64,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let node = &mut self.nodes[id.index()];
        if !node.is_on() || node.epoch != epoch {
            return;
        }
        if node.current_task.is_none() || node.pna.task_done().is_err() {
            return;
        }
        // Input here → computation done: the task.compute span closes.
        let compute_started = node.compute_started.take().unwrap_or(now);
        let task_id = node.current_task.as_ref().map_or(0, |t| t.id.raw());
        node.upload_started = Some(now);
        self.tele.span(
            compute_started.as_micros(),
            now.as_micros(),
            Phase::Compute,
            id.raw(),
            task_id,
        );
        self.upload_result_attempt(id, 0, now, sched);
    }

    /// Uploads (or re-uploads) the held result. Lost uploads retry with the
    /// same backoff as fetches; an exhausted chain abandons the local copy
    /// and re-requests work — the Backend re-issues the task elsewhere.
    fn upload_result_attempt(
        &mut self,
        id: NodeId,
        attempt: u32,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let node = &mut self.nodes[id.index()];
        let Some(result) = node.current_task.as_ref().map(|t| t.result_size) else {
            return;
        };
        if node.upload_started.is_none() {
            node.upload_started = Some(now);
        }
        let done = node.link.transfer_faulted_telemetered(
            now,
            result,
            Direction::Up,
            &mut node.rng,
            &self.injector,
            id,
            &mut self.metrics.faults,
            &self.tele,
        );
        match done {
            Some(done) => {
                let epoch = self.nodes[id.index()].epoch;
                sched(done, WorldEvent::ResultArrived { node: id, epoch });
            }
            None => {
                match self
                    .config
                    .fetch_backoff
                    .delay(attempt, self.jitter_seed ^ id.raw() ^ 1)
                {
                    Some(delay) => {
                        self.metrics.task_fetch_retries.inc();
                        self.tele.instant(
                            now.as_micros(),
                            Phase::Retry,
                            id.raw(),
                            u64::from(attempt),
                        );
                        let epoch = self.nodes[id.index()].epoch;
                        sched(
                            now + delay,
                            WorldEvent::ResultRetry {
                                node: id,
                                epoch,
                                attempt: attempt + 1,
                            },
                        );
                    }
                    None => {
                        // Give up on this copy; the Backend will treat the
                        // task as stale and re-issue it.
                        self.metrics.fetch_aborts.inc();
                        let n = &mut self.nodes[id.index()];
                        n.current_task = None;
                        n.upload_started = None;
                        n.fetch_started = None;
                        self.request_task(id, now, sched);
                    }
                }
            }
        }
    }

    fn on_result_arrived(
        &mut self,
        id: NodeId,
        epoch: u64,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let node = &mut self.nodes[id.index()];
        if !node.is_on() || node.epoch != epoch {
            return;
        }
        let Some(task) = node.current_task.take() else {
            return;
        };
        let Some(job) = node.job else { return };
        // Upload started → result accepted: the task.upload span closes.
        let upload_started = node.upload_started.take().unwrap_or(now);
        self.tele.span(
            upload_started.as_micros(),
            now.as_micros(),
            Phase::ResultUpload,
            id.raw(),
            task.id.raw(),
        );
        match self.backend.complete_task(job, task.id, id, now) {
            Ok(true) => {
                self.metrics.tasks_completed.inc();
                self.job_finished(job, now, sched);
            }
            Ok(false) => {
                self.metrics.tasks_completed.inc();
                self.request_task(id, now, sched);
            }
            Err(_) => {}
        }
    }

    fn on_node_toggle(
        &mut self,
        id: NodeId,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let chan = self.channel.id();
        let hb_interval = self.config.policy.heartbeat.interval;
        let node = &mut self.nodes[id.index()];
        node.epoch += 1;
        let new_state = node.churn.toggle();
        let next = node.churn.next_toggle();
        if next != SimTime::MAX {
            sched(next, WorldEvent::NodeToggle(id));
        }
        match new_state {
            oddci_sim::OnOffState::Off => {
                let had_task = node.current_task.is_some();
                node.stb.power_off();
                node.pna.power_off();
                node.link.reset(now);
                node.clear_work();
                if had_task {
                    // The Backend only learns through heartbeat loss.
                    self.metrics.tasks_orphaned.inc();
                }
            }
            oddci_sim::OnOffState::On => {
                node.stb.power_on(chan, node.usage);
                let phase = node.rng.random_range(0..hb_interval.as_micros().max(1));
                let epoch = node.epoch;
                sched(
                    now + SimDuration::from_micros(phase),
                    WorldEvent::HeartbeatSend { node: id, epoch },
                );
                self.schedule_deliveries_to(id, now, sched);
            }
        }
    }

    fn on_direct_reset(
        &mut self,
        id: NodeId,
        inst: InstanceId,
        epoch: u64,
        now: SimTime,
        sched: &mut dyn FnMut(SimTime, WorldEvent),
    ) {
        let node = &mut self.nodes[id.index()];
        if !node.is_on() || node.epoch != epoch {
            return;
        }
        if node.pna.on_direct_reset(inst) {
            self.metrics.direct_resets.inc();
            self.tele
                .instant(now.as_micros(), Phase::DirectReset, id.raw(), inst.raw());
            self.orphan_task_of(id, now, sched);
            self.nodes[id.index()].clear_work();
            self.send_heartbeat(id, now, sched);
        }
    }
}

impl Model for World {
    type Event = WorldEvent;

    fn handle(&mut self, event: WorldEvent, ctx: &mut Context<'_, WorldEvent>) {
        let now = ctx.now();
        // Collect follow-ups locally, then enqueue: keeps handler borrows simple.
        let mut outbox: Vec<(SimTime, WorldEvent)> = Vec::new();
        {
            let mut sched = |at: SimTime, ev: WorldEvent| outbox.push((at, ev));
            match event {
                WorldEvent::NodeToggle(id) => self.on_node_toggle(id, now, &mut sched),
                WorldEvent::ControlDelivery {
                    node,
                    instance,
                    epoch,
                } => self.on_control_delivery(node, instance, epoch, now, &mut sched),
                WorldEvent::ImageAcquired {
                    node,
                    instance,
                    epoch,
                } => self.on_image_acquired(node, instance, epoch, now, &mut sched),
                WorldEvent::HeartbeatSend { node, epoch } => {
                    let interval = self.config.policy.heartbeat.interval;
                    let alive = {
                        let n = &self.nodes[node.index()];
                        n.is_on() && n.epoch == epoch
                    };
                    if alive {
                        // Fault hook: the PNA software crashes (rolled at its
                        // own timer so crashes pace with heartbeats). The STB
                        // stays powered — only the agent reboots — but all
                        // in-flight work and timers of this epoch die.
                        if let Some(downtime) = self.injector.pna_crash(node, now) {
                            self.metrics.faults.record(FaultClass::PnaCrash);
                            let n = &mut self.nodes[node.index()];
                            n.epoch += 1;
                            let had_task = n.current_task.is_some();
                            n.pna.power_off();
                            n.link.reset(now);
                            n.clear_work();
                            if had_task {
                                // The Backend learns through heartbeat loss.
                                self.metrics.tasks_orphaned.inc();
                            }
                            let new_epoch = n.epoch;
                            self.trace.record(now, || format!("{node} PNA crashed"));
                            sched(
                                now + downtime,
                                WorldEvent::PnaRestart {
                                    node,
                                    epoch: new_epoch,
                                },
                            );
                        } else {
                            self.send_heartbeat(node, now, &mut sched);
                            sched(now + interval, WorldEvent::HeartbeatSend { node, epoch });
                        }
                    }
                }
                WorldEvent::PnaRestart { node, epoch } => {
                    let hb_interval = self.config.policy.heartbeat.interval;
                    let n = &mut self.nodes[node.index()];
                    // A power-off during the reboot cancels the restart.
                    if n.is_on() && n.epoch == epoch {
                        let phase = n.rng.random_range(0..hb_interval.as_micros().max(1));
                        sched(
                            now + SimDuration::from_micros(phase),
                            WorldEvent::HeartbeatSend { node, epoch },
                        );
                        self.schedule_deliveries_to(node, now, &mut sched);
                    }
                }
                WorldEvent::HeartbeatArrive(hb) => {
                    self.metrics.heartbeats_delivered.inc();
                    let outputs = self.controller.on_heartbeat(hb, now);
                    self.process_outputs(outputs, now, &mut sched);
                }
                WorldEvent::DirectResetArrive {
                    node,
                    instance,
                    epoch,
                } => self.on_direct_reset(node, instance, epoch, now, &mut sched),
                WorldEvent::TaskRequest {
                    node,
                    epoch,
                    attempt,
                } => self.on_task_request(node, epoch, attempt, now, &mut sched),
                WorldEvent::TaskRequestRetry {
                    node,
                    epoch,
                    attempt,
                } => {
                    let n = &self.nodes[node.index()];
                    if n.is_on() && n.epoch == epoch && n.current_task.is_none() {
                        self.request_task_attempt(node, attempt, now, &mut sched);
                    }
                }
                WorldEvent::ResultRetry {
                    node,
                    epoch,
                    attempt,
                } => {
                    let n = &self.nodes[node.index()];
                    if n.is_on() && n.epoch == epoch {
                        self.upload_result_attempt(node, attempt, now, &mut sched);
                    }
                }
                WorldEvent::TaskInputArrived { node, epoch } => {
                    self.on_task_input(node, epoch, now, &mut sched)
                }
                WorldEvent::TaskComputed { node, epoch } => {
                    self.on_task_computed(node, epoch, now, &mut sched)
                }
                WorldEvent::ResultArrived { node, epoch } => {
                    self.on_result_arrived(node, epoch, now, &mut sched)
                }
                WorldEvent::ControllerTick => {
                    // Sample instance sizes for the timeline metric.
                    let samples: Vec<(u64, u64)> = self
                        .instance_job
                        .keys()
                        .map(|&inst| (inst.raw(), self.controller.instance_size(inst)))
                        .collect();
                    for (inst_raw, size) in samples {
                        self.metrics
                            .sample_instance_size(inst_raw, now.as_secs_f64(), size);
                    }
                    // Backend queue depth (pending tasks over open jobs).
                    let depth: u64 = self
                        .backend
                        .open_jobs()
                        .iter()
                        .map(|&j| self.backend.pending_count(j))
                        .sum();
                    self.queue_depth.set(depth as f64);
                    let outputs = self.controller.tick(now);
                    self.process_outputs(outputs, now, &mut sched);
                    // Liveness safety net: members parked as drained (by a
                    // dry queue or an exhausted retry chain) get a fresh
                    // kick while their job is open. The kick also lets a
                    // node with a stale Backend assignment reclaim it —
                    // only the assignee's own fetch recycles that record,
                    // so waiting for `pending > 0` could deadlock.
                    for job in self.backend.open_jobs() {
                        self.kick_drained(job, now, &mut sched);
                    }
                    sched(
                        now + self.config.controller_tick,
                        WorldEvent::ControllerTick,
                    );
                }
            }
        }
        for (at, ev) in outbox {
            ctx.schedule_at(at.max(now), ev);
        }
    }
}

/// A [`World`] mounted on the discrete-event engine, with the user-facing
/// operations (submit jobs, run, read reports).
pub struct OddciSim {
    sim: Simulator<World>,
}

impl OddciSim {
    /// Builds the world and schedules its initial events.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        let tick = config.controller_tick;
        let hb_interval = config.policy.heartbeat.interval;
        let world = World::new(config, seed);
        let mut sim = Simulator::new(world, seed);

        // Heartbeat chains for initially-on nodes (random phases) and churn
        // toggles for everyone.
        let n = sim.model().nodes.len();
        for i in 0..n {
            let (on, next_toggle, epoch) = {
                let node = &sim.model().nodes[i];
                (node.is_on(), node.churn.next_toggle(), node.epoch)
            };
            if on {
                let phase = {
                    let node = &mut sim.model_mut().nodes[i];
                    node.rng.random_range(0..hb_interval.as_micros().max(1))
                };
                sim.schedule_at(
                    SimTime::from_micros(phase),
                    WorldEvent::HeartbeatSend {
                        node: NodeId::new(i as u64),
                        epoch,
                    },
                );
            }
            if next_toggle != SimTime::MAX {
                sim.schedule_at(next_toggle, WorldEvent::NodeToggle(NodeId::new(i as u64)));
            }
        }
        sim.schedule_at(SimTime::ZERO + tick, WorldEvent::ControllerTick);
        OddciSim { sim }
    }

    /// Submits `job` to run on a fresh instance of `target` nodes. Returns
    /// the request handle for later [`report`](Self::report) retrieval.
    pub fn submit_job(&mut self, job: Job, target: u64) -> ProviderRequest {
        self.submit_job_with(job, target, Default::default())
    }

    /// Like [`submit_job`](Self::submit_job) with explicit node
    /// requirements (memory floor, standby-only).
    pub fn submit_job_with(
        &mut self,
        job: Job,
        target: u64,
        requirements: crate::messages::NodeRequirements,
    ) -> ProviderRequest {
        let now = self.sim.now();
        let job_id = job.id;
        let req = InstanceRequest {
            image: job.image,
            image_size: job.image_size,
            target,
            requirements,
        };
        let world = self.sim.model_mut();
        assert!(
            world.backend.job(job_id).is_none(),
            "job ids must be unique within a world; {job_id} was already submitted"
        );
        world.backend.register_job(job, now);
        let (inst, outputs) = world.controller.create_instance(req, now);
        world.instance_job.insert(inst, job_id);
        world.job_instance.insert(job_id, inst);
        let request = world.provider.open_request(job_id, inst, target, now);

        let mut outbox: Vec<(SimTime, WorldEvent)> = Vec::new();
        {
            let mut sched = |at: SimTime, ev: WorldEvent| outbox.push((at, ev));
            world.process_outputs(outputs, now, &mut sched);
        }
        for (at, ev) in outbox {
            self.sim.schedule_at(at.max(now), ev);
        }
        request
    }

    /// Resizes a running request's instance (§3.2: the Provider may command
    /// "creation, dismantle and resizing of several OddCI"). Growth is
    /// fulfilled by the Controller's next recomposition tick; shrinkage is
    /// enforced lazily through heartbeat-reply resets.
    pub fn resize_request(
        &mut self,
        req: ProviderRequest,
        new_target: u64,
    ) -> oddci_types::Result<()> {
        let world = self.sim.model_mut();
        let inst =
            world
                .provider
                .instance_of(req)
                .ok_or(oddci_types::OddciError::UnknownInstance(InstanceId::new(
                    u64::MAX,
                )))?;
        world.controller.resize(inst, new_target)
    }

    /// Runs the simulation up to `horizon` (the controller tick keeps the
    /// queue alive, so an explicit horizon is required).
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        self.sim.run_until(horizon)
    }

    /// Runs until `req` completes or `horizon` passes. Returns the report
    /// if the job finished. When a streaming [`TraceSink`] is attached to
    /// the world's telemetry, its buffers are flushed before returning,
    /// so the on-disk trace covers the whole request either way.
    ///
    /// [`TraceSink`]: oddci_telemetry::TraceSink
    pub fn run_request(&mut self, req: ProviderRequest, horizon: SimTime) -> Option<JobReport> {
        // Chunked advance: check completion between slices.
        let slice = SimDuration::from_secs(60);
        let report = loop {
            if self.sim.now() >= horizon {
                break self.sim.model().provider.report(req);
            }
            if let Some(r) = self.sim.model().provider.report(req) {
                break Some(r);
            }
            let next = (self.sim.now() + slice).min(horizon);
            self.sim.run_until(next);
        };
        self.sim.model().telemetry().flush_sink();
        report
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The world.
    pub fn world(&self) -> &World {
        self.sim.model()
    }

    /// Mutable world access (tests and harnesses).
    pub fn world_mut(&mut self) -> &mut World {
        self.sim.model_mut()
    }

    /// Final report of a request, if complete.
    pub fn report(&self, req: ProviderRequest) -> Option<JobReport> {
        self.sim.model().provider.report(req)
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::InstanceStatus;
    use oddci_types::{Bandwidth, HeartbeatConfig};
    use oddci_workload::JobGenerator;

    fn quick_config(nodes: u64) -> WorldConfig {
        WorldConfig {
            nodes,
            policy: ControllerPolicy {
                heartbeat: HeartbeatConfig {
                    interval: SimDuration::from_secs(30),
                    miss_threshold: 3,
                    message_bytes: 128,
                },
                ..Default::default()
            },
            controller_tick: SimDuration::from_secs(30),
            ..Default::default()
        }
    }

    fn small_job(n_tasks: u64, cost_secs: u64, seed: u64) -> Job {
        JobGenerator::homogeneous(
            DataSize::from_megabytes(1),
            DataSize::from_bytes(500),
            DataSize::from_bytes(500),
            SimDuration::from_secs(cost_secs),
            seed,
        )
        .generate(n_tasks)
    }

    #[test]
    fn job_runs_to_completion_without_churn() {
        let mut sim = World::simulation(quick_config(100), 1);
        let req = sim.submit_job(small_job(200, 30, 2), 50);
        let report = sim
            .run_request(req, SimTime::from_secs(48 * 3600))
            .expect("job completes");
        assert_eq!(report.tasks_completed, 200);
        assert_eq!(report.target_nodes, 50);
        assert!(
            report.makespan > SimDuration::from_secs(60),
            "wakeup alone takes ~13s+"
        );
        assert_eq!(report.requeues, 0);
    }

    #[test]
    fn instance_forms_near_target_size() {
        let mut sim = World::simulation(quick_config(1000), 3);
        // Long job so the instance is stable while we measure.
        let req = sim.submit_job(small_job(100_000, 600, 4), 200);
        sim.run_until(SimTime::from_secs(3600));
        let world = sim.world();
        let inst = world.provider.instance_of(req).unwrap();
        let size = world.controller.instance_size(inst);
        // Probability sizing + recomposition should land near 200.
        assert!(
            (180..=220).contains(&size),
            "instance size {size} not within 10% of target 200"
        );
        // And the members' DVEs actually run.
        assert!(world.running_members(inst) >= 150);
    }

    #[test]
    fn wakeup_latency_matches_carousel_law() {
        // A 100-node, no-churn world; image 8 MB over (framed) 1 Mbps.
        let mut cfg = quick_config(100);
        cfg.dtv.beta = Bandwidth::from_mbps(1.0);
        let mut sim = World::simulation(cfg, 5);
        let mut gen = JobGenerator::homogeneous(
            DataSize::from_megabytes(8),
            DataSize::ZERO,
            DataSize::from_bytes(100),
            SimDuration::from_secs(600),
            6,
        );
        let req = sim.submit_job(gen.generate(10_000), 100);
        sim.run_until(SimTime::from_secs(2 * 3600));
        let world = sim.world();
        assert!(world.metrics().joins.get() > 0, "nodes joined");
        let mean = world.metrics().wakeup_latency.stats().mean();
        // All initially-on nodes attach at the same publish instant, so
        // they all see the config at its first pass and then read the
        // image: total ≈ wait-to-config + image read ≈ 1 cycle of the
        // image-dominated carousel (plus framing). The envelope is
        // [1, 2]× the image cycle; the simultaneous-attach case sits at
        // the low end.
        let cycle = DataSize::from_megabytes(8)
            .transfer_time(Bandwidth::from_mbps(1.0))
            .as_secs_f64();
        assert!(
            mean > 0.9 * cycle && mean < 2.2 * cycle,
            "mean wakeup {mean:.1}s vs cycle {cycle:.1}s"
        );
        let _ = req;
    }

    #[test]
    fn churn_orphans_tasks_but_job_still_completes() {
        let mut cfg = quick_config(300);
        cfg.churn = Some(ChurnConfig {
            mean_on: SimDuration::from_mins(40),
            mean_off: SimDuration::from_mins(20),
        });
        let mut sim = World::simulation(cfg, 7);
        let req = sim.submit_job(small_job(300, 60, 8), 60);
        let report = sim
            .run_request(req, SimTime::from_secs(7 * 24 * 3600))
            .expect("job completes despite churn");
        assert_eq!(report.tasks_completed, 300);
        // With 33% off-fraction churn, some loss and recomposition is
        // overwhelmingly likely over the run.
        assert!(
            report.requeues > 0 || report.wakeup_broadcasts > 1,
            "expected churn effects: {report:?}"
        );
    }

    #[test]
    fn dismantle_frees_all_nodes() {
        let mut sim = World::simulation(quick_config(100), 9);
        let req = sim.submit_job(small_job(100, 10, 10), 30);
        let report = sim.run_request(req, SimTime::from_secs(24 * 3600)).unwrap();
        let inst = report.instance;
        // Give the reset broadcast time to propagate (config cycle is short).
        let end = sim.now() + SimDuration::from_mins(30);
        sim.run_until(end);
        assert_eq!(sim.world().running_members(inst), 0, "all DVEs destroyed");
        assert_eq!(
            sim.world().controller.instance(inst).unwrap().status,
            InstanceStatus::Dismantled
        );
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = World::simulation(quick_config(150), seed);
            let req = sim.submit_job(small_job(150, 20, 99), 40);
            let report = sim.run_request(req, SimTime::from_secs(24 * 3600)).unwrap();
            (
                report.makespan,
                sim.events_processed(),
                sim.world().metrics().snapshot(),
            )
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut sim = World::simulation(quick_config(150), seed);
            let req = sim.submit_job(small_job(150, 20, 99), 40);
            let makespan = sim
                .run_request(req, SimTime::from_secs(24 * 3600))
                .unwrap()
                .makespan;
            (makespan, sim.events_processed())
        };
        // Probability gates, usage draws and heartbeat phases differ, so the
        // pair (makespan, event count) must too. Makespan alone can collide
        // between seeds: compute is jitter-free and broadcast joins are
        // simultaneous, so two seeds whose critical path is "an in-use
        // member with the longest task chain" finish at the same microsecond.
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn two_concurrent_jobs_share_the_channel() {
        let mut sim = World::simulation(quick_config(400), 13);
        let req_a = sim.submit_job(small_job(100, 30, 14), 100);
        // Second job arrives 10 minutes later.
        sim.run_until(SimTime::from_secs(600));
        let mut gen = JobGenerator::homogeneous(
            DataSize::from_megabytes(2),
            DataSize::from_bytes(200),
            DataSize::from_bytes(200),
            SimDuration::from_secs(15),
            15,
        );
        let mut job_b = gen.generate(100);
        job_b.id = oddci_types::JobId::new(1); // distinct id space per submit
        let req_b = sim.submit_job(job_b, 100);

        let a = sim
            .run_request(req_a, SimTime::from_secs(48 * 3600))
            .expect("job A");
        let b = sim
            .run_request(req_b, SimTime::from_secs(48 * 3600))
            .expect("job B");
        assert_eq!(a.tasks_completed, 100);
        assert_eq!(b.tasks_completed, 100);
        assert_ne!(a.instance, b.instance);
    }

    #[test]
    fn oversubscribed_target_still_completes_with_available_nodes() {
        // Ask for 10x more nodes than exist.
        let mut sim = World::simulation(quick_config(50), 17);
        let req = sim.submit_job(small_job(100, 5, 18), 500);
        let report = sim
            .run_request(req, SimTime::from_secs(72 * 3600))
            .expect("completes with what it has");
        assert_eq!(report.tasks_completed, 100);
        // Controller had to recompose (it never reaches 500).
        assert!(report.wakeup_broadcasts >= 1);
    }

    #[test]
    fn heartbeats_flow_and_are_counted() {
        let mut sim = World::simulation(quick_config(50), 19);
        sim.run_until(SimTime::from_secs(120));
        let m = sim.world().metrics().snapshot();
        // 50 nodes, 30 s interval, 120 s: ≥ 150 heartbeats (plus joins).
        assert!(m.heartbeats_delivered >= 150, "{}", m.heartbeats_delivered);
        assert_eq!(sim.world().controller().known_nodes(), 50);
    }
}
