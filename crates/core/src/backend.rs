//! The Backend (§3.1): application-specific management — task scheduling,
//! input provision, result collection.
//!
//! The paper assumes a suitably provisioned Backend whose result
//! post-processing time is negligible; ours is a pull-model bag-of-tasks
//! scheduler. Nodes request work over their direct channels; the Backend
//! hands out pending tasks, tracks assignments, and re-queues the tasks of
//! nodes the Controller declares lost.

use oddci_types::{JobId, NodeId, OddciError, Result, SimDuration, SimTime, TaskId};
use oddci_workload::{Job, Task};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Reply to a node's task request.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome {
    /// Run this task.
    Assigned(Task),
    /// No work left (the job is draining or complete); idle until reset.
    Drained,
}

#[derive(Debug)]
struct JobState {
    job: Job,
    pending: VecDeque<TaskId>,
    assigned: BTreeMap<TaskId, NodeId>,
    node_task: BTreeMap<NodeId, BTreeSet<TaskId>>,
    completed: BTreeSet<TaskId>,
    submitted_at: SimTime,
    completed_at: Option<SimTime>,
    /// Tasks re-queued after node loss (accounting).
    requeues: u64,
}

impl JobState {
    /// Re-queues every task `node` still holds (front of the queue — they
    /// have waited longest). Returns how many open tasks went back.
    fn recycle_node(&mut self, node: NodeId) -> u64 {
        let Some(tasks) = self.node_task.remove(&node) else {
            return 0;
        };
        let mut recycled = 0;
        for task in tasks {
            self.assigned.remove(&task);
            if !self.completed.contains(&task) {
                self.pending.push_front(task);
                self.requeues += 1;
                recycled += 1;
            }
        }
        recycled
    }
}

/// Serializable snapshot of one job's scheduling ledger.
///
/// The full [`Job`] (task definitions included) travels in the snapshot so
/// a standby can keep cutting batches without re-submission. Assignment
/// order inside `pending` is preserved — re-queued tasks sit at the front
/// and must stay there across a failover. `node_task` is *not* exported:
/// it is derivable from `assigned` and rebuilt on import.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobExport {
    /// The job definition, tasks included.
    pub job: Job,
    /// Unassigned tasks in queue order.
    pub pending: Vec<TaskId>,
    /// In-flight assignments.
    pub assigned: Vec<(TaskId, NodeId)>,
    /// Completed tasks.
    pub completed: Vec<TaskId>,
    /// How long before the snapshot the job was submitted.
    pub submitted_age: SimDuration,
    /// How long before the snapshot it completed, if it did.
    pub completed_age: Option<SimDuration>,
    /// Tasks re-queued after node losses so far.
    pub requeues: u64,
}

/// Complete exported Backend state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendState {
    /// Every registered job's ledger.
    pub jobs: Vec<JobExport>,
}

/// The Backend.
#[derive(Debug, Default)]
pub struct Backend {
    jobs: BTreeMap<JobId, JobState>,
}

impl Backend {
    /// Creates an empty Backend.
    pub fn new() -> Self {
        Backend::default()
    }

    /// Registers a job for scheduling, timestamping its submission.
    pub fn register_job(&mut self, job: Job, now: SimTime) {
        let pending = job.tasks.iter().map(|t| t.id).collect();
        self.jobs.insert(
            job.id,
            JobState {
                job,
                pending,
                assigned: BTreeMap::new(),
                node_task: BTreeMap::new(),
                completed: BTreeSet::new(),
                submitted_at: now,
                completed_at: None,
                requeues: 0,
            },
        );
    }

    /// A node asks for work on `job`.
    ///
    /// A fresh request from a node the Backend still believes busy means
    /// the node lost its previous assignment without the Controller
    /// noticing yet (it power-cycled within the heartbeat deadline): the
    /// stale task is re-queued first, exactly as if the loss had been
    /// reported.
    pub fn fetch_task(&mut self, job: JobId, node: NodeId) -> Result<TaskOutcome> {
        let mut batch = self.fetch_batch(job, node, 1)?;
        match batch.pop() {
            Some(task) => Ok(TaskOutcome::Assigned(task)),
            None => Ok(TaskOutcome::Drained),
        }
    }

    /// A node asks for up to `max` tasks of `job` in one round trip.
    ///
    /// The batched form of [`fetch_task`](Self::fetch_task), used by the
    /// sharded live headend's dispatch pool to amortize per-task channel
    /// round trips. The same stale-assignment rule applies: any task the
    /// Backend still believes this node holds is re-queued before the new
    /// batch is cut. An empty vec means the job is drained.
    pub fn fetch_batch(&mut self, job: JobId, node: NodeId, max: usize) -> Result<Vec<Task>> {
        let state = self.jobs.get_mut(&job).ok_or(OddciError::UnknownJob(job))?;
        state.recycle_node(node);
        let mut batch = Vec::new();
        while batch.len() < max {
            let Some(task_id) = state.pending.pop_front() else {
                break;
            };
            state.assigned.insert(task_id, node);
            state.node_task.entry(node).or_default().insert(task_id);
            batch.push(state.job.tasks[task_id.index()].clone());
        }
        Ok(batch)
    }

    /// A node uploads the result of `task`. Returns `true` when this was
    /// the job's last outstanding task.
    pub fn complete_task(
        &mut self,
        job: JobId,
        task: TaskId,
        node: NodeId,
        now: SimTime,
    ) -> Result<bool> {
        let state = self.jobs.get_mut(&job).ok_or(OddciError::UnknownJob(job))?;
        match state.assigned.get(&task) {
            Some(&assignee) if assignee == node => {}
            // Result from a node whose assignment was re-queued after a
            // loss declaration (it came back): accept the work anyway if
            // the task is still open, else drop the duplicate.
            _ => {
                if state.completed.contains(&task) {
                    return Ok(state.completed_at.is_some());
                }
                if task.index() >= state.job.tasks.len() {
                    return Err(OddciError::UnknownTask { job, task });
                }
                state.pending.retain(|&t| t != task);
            }
        }
        state.assigned.remove(&task);
        if let Some(held) = state.node_task.get_mut(&node) {
            held.remove(&task);
            if held.is_empty() {
                state.node_task.remove(&node);
            }
        }
        state.completed.insert(task);
        if state.completed.len() == state.job.tasks.len() {
            state.completed_at = Some(now);
            return Ok(true);
        }
        Ok(false)
    }

    /// The Controller declared `node` lost: re-queue its in-flight tasks
    /// (front of the queue — they have waited longest). Returns the jobs
    /// whose queues were refilled.
    pub fn node_lost(&mut self, node: NodeId) -> Vec<JobId> {
        let mut affected = Vec::new();
        for (&job_id, state) in &mut self.jobs {
            if state.recycle_node(node) > 0 {
                affected.push(job_id);
            }
        }
        affected
    }

    /// True once every task of `job` completed.
    pub fn is_complete(&self, job: JobId) -> bool {
        self.jobs
            .get(&job)
            .is_some_and(|s| s.completed_at.is_some())
    }

    /// The job's makespan (completion − submission), once complete.
    pub fn makespan(&self, job: JobId) -> Option<SimDuration> {
        let s = self.jobs.get(&job)?;
        s.completed_at.map(|done| done - s.submitted_at)
    }

    /// Completed-task count.
    pub fn completed_count(&self, job: JobId) -> u64 {
        self.jobs.get(&job).map_or(0, |s| s.completed.len() as u64)
    }

    /// Pending (unassigned) task count.
    pub fn pending_count(&self, job: JobId) -> u64 {
        self.jobs.get(&job).map_or(0, |s| s.pending.len() as u64)
    }

    /// In-flight (assigned, not yet completed) task count.
    pub fn assigned_count(&self, job: JobId) -> u64 {
        self.jobs.get(&job).map_or(0, |s| s.assigned.len() as u64)
    }

    /// Accounting check for shutdown barriers: how many of `job`'s tasks
    /// are in **no** ledger — neither pending, assigned to a node, nor
    /// completed. Any bookkeeping bug (a task orphaned by a lost node
    /// without a re-queue, a double pop) shows up here as a non-zero
    /// count; a healthy Backend always returns 0.
    pub fn unaccounted_tasks(&self, job: JobId) -> u64 {
        let Some(s) = self.jobs.get(&job) else {
            return 0;
        };
        let mut accounted: BTreeSet<TaskId> = s.completed.clone();
        accounted.extend(s.pending.iter().copied());
        accounted.extend(s.assigned.keys().copied());
        s.job.tasks.len() as u64 - accounted.len() as u64
    }

    /// Tasks re-queued after node losses.
    pub fn requeue_count(&self, job: JobId) -> u64 {
        self.jobs.get(&job).map_or(0, |s| s.requeues)
    }

    /// Total re-queues across every registered job.
    pub fn total_requeues(&self) -> u64 {
        self.jobs.values().map(|s| s.requeues).sum()
    }

    /// Jobs that still have unfinished tasks (pending or assigned).
    pub fn open_jobs(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|(_, s)| s.completed_at.is_none())
            .map(|(&id, _)| id)
            .collect()
    }

    /// The registered job, if any.
    pub fn job(&self, job: JobId) -> Option<&Job> {
        self.jobs.get(&job).map(|s| &s.job)
    }

    /// Exports every job's ledger for a snapshot taken at `now`.
    pub fn export_state(&self, now: SimTime) -> BackendState {
        BackendState {
            jobs: self
                .jobs
                .values()
                .map(|s| JobExport {
                    job: s.job.clone(),
                    pending: s.pending.iter().copied().collect(),
                    assigned: s.assigned.iter().map(|(&t, &n)| (t, n)).collect(),
                    completed: s.completed.iter().copied().collect(),
                    submitted_age: now.since(s.submitted_at),
                    completed_age: s.completed_at.map(|t| now.since(t)),
                    requeues: s.requeues,
                })
                .collect(),
        }
    }

    /// Replaces all state from an exported snapshot, rebasing submission
    /// timestamps onto `now` (the adopting headend's clock).
    ///
    /// In-flight assignments survive verbatim: a node that finished its
    /// task during the failover window uploads to the standby and the
    /// result is accepted against the imported ledger; a node that died
    /// during the window is declared lost by the imported heartbeat ledger
    /// and its tasks re-queue here, so no task is ever unaccounted.
    pub fn import_state(&mut self, state: BackendState, now: SimTime) {
        self.jobs = state
            .jobs
            .into_iter()
            .map(|e| {
                let mut node_task: BTreeMap<NodeId, BTreeSet<TaskId>> = BTreeMap::new();
                for &(task, node) in &e.assigned {
                    node_task.entry(node).or_default().insert(task);
                }
                (
                    e.job.id,
                    JobState {
                        pending: e.pending.into_iter().collect(),
                        assigned: e.assigned.into_iter().collect(),
                        node_task,
                        completed: e.completed.into_iter().collect(),
                        submitted_at: now.saturating_sub(e.submitted_age),
                        completed_at: e.completed_age.map(|age| now.saturating_sub(age)),
                        requeues: e.requeues,
                        job: e.job,
                    },
                )
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::{DataSize, ImageId};

    fn job(n: u64) -> Job {
        let tasks = (0..n)
            .map(|i| {
                Task::new(
                    TaskId::new(i),
                    DataSize::from_bytes(100),
                    SimDuration::from_secs(10),
                    DataSize::from_bytes(100),
                )
            })
            .collect();
        Job::new(
            JobId::new(1),
            ImageId::new(1),
            DataSize::from_megabytes(1),
            tasks,
        )
    }

    #[test]
    fn fetch_assigns_in_order_then_drains() {
        let mut b = Backend::new();
        b.register_job(job(2), SimTime::ZERO);
        let j = JobId::new(1);
        let TaskOutcome::Assigned(t0) = b.fetch_task(j, NodeId::new(10)).unwrap() else {
            panic!()
        };
        assert_eq!(t0.id, TaskId::new(0));
        let TaskOutcome::Assigned(t1) = b.fetch_task(j, NodeId::new(11)).unwrap() else {
            panic!()
        };
        assert_eq!(t1.id, TaskId::new(1));
        assert_eq!(
            b.fetch_task(j, NodeId::new(12)).unwrap(),
            TaskOutcome::Drained
        );
    }

    #[test]
    fn completion_detects_last_task() {
        let mut b = Backend::new();
        b.register_job(job(2), SimTime::ZERO);
        let j = JobId::new(1);
        b.fetch_task(j, NodeId::new(10)).unwrap();
        b.fetch_task(j, NodeId::new(11)).unwrap();
        assert!(!b
            .complete_task(j, TaskId::new(0), NodeId::new(10), SimTime::from_secs(5))
            .unwrap());
        assert!(!b.is_complete(j));
        assert!(b
            .complete_task(j, TaskId::new(1), NodeId::new(11), SimTime::from_secs(9))
            .unwrap());
        assert!(b.is_complete(j));
        assert_eq!(b.makespan(j), Some(SimDuration::from_secs(9)));
        assert_eq!(b.completed_count(j), 2);
    }

    #[test]
    fn unknown_job_errors() {
        let mut b = Backend::new();
        assert!(matches!(
            b.fetch_task(JobId::new(9), NodeId::new(1)),
            Err(OddciError::UnknownJob(_))
        ));
    }

    #[test]
    fn node_loss_requeues_in_flight_task() {
        let mut b = Backend::new();
        b.register_job(job(1), SimTime::ZERO);
        let j = JobId::new(1);
        b.fetch_task(j, NodeId::new(10)).unwrap();
        assert_eq!(b.pending_count(j), 0);
        let affected = b.node_lost(NodeId::new(10));
        assert_eq!(affected, vec![j]);
        assert_eq!(b.pending_count(j), 1);
        assert_eq!(b.requeue_count(j), 1);
        // Another node picks the re-queued task up and finishes the job.
        let TaskOutcome::Assigned(t) = b.fetch_task(j, NodeId::new(11)).unwrap() else {
            panic!()
        };
        assert_eq!(t.id, TaskId::new(0));
        assert!(b
            .complete_task(j, t.id, NodeId::new(11), SimTime::from_secs(60))
            .unwrap());
    }

    #[test]
    fn zombie_result_after_requeue_is_accepted_once() {
        let mut b = Backend::new();
        b.register_job(job(1), SimTime::ZERO);
        let j = JobId::new(1);
        b.fetch_task(j, NodeId::new(10)).unwrap();
        b.node_lost(NodeId::new(10));
        // The "lost" node was only slow; its result arrives before the
        // task is re-assigned. It must count, and the queue must drain.
        assert!(b
            .complete_task(j, TaskId::new(0), NodeId::new(10), SimTime::from_secs(99))
            .unwrap());
        assert_eq!(b.pending_count(j), 0);
        assert_eq!(
            b.fetch_task(j, NodeId::new(11)).unwrap(),
            TaskOutcome::Drained
        );
    }

    #[test]
    fn duplicate_result_is_idempotent() {
        let mut b = Backend::new();
        b.register_job(job(1), SimTime::ZERO);
        let j = JobId::new(1);
        b.fetch_task(j, NodeId::new(10)).unwrap();
        b.node_lost(NodeId::new(10));
        b.fetch_task(j, NodeId::new(11)).unwrap();
        assert!(b
            .complete_task(j, TaskId::new(0), NodeId::new(11), SimTime::from_secs(50))
            .unwrap());
        // The zombie's duplicate upload changes nothing.
        assert!(b
            .complete_task(j, TaskId::new(0), NodeId::new(10), SimTime::from_secs(60))
            .unwrap());
        assert_eq!(b.completed_count(j), 1);
        assert_eq!(b.makespan(j), Some(SimDuration::from_secs(50)));
    }

    #[test]
    fn bogus_task_id_is_rejected() {
        let mut b = Backend::new();
        b.register_job(job(1), SimTime::ZERO);
        let j = JobId::new(1);
        assert!(matches!(
            b.complete_task(j, TaskId::new(99), NodeId::new(1), SimTime::ZERO),
            Err(OddciError::UnknownTask { .. })
        ));
    }

    #[test]
    fn re_request_recycles_a_stale_assignment() {
        // A node power-cycles mid-task and asks again before the Controller
        // notices: its old task goes back to the queue and (being at the
        // front) is handed right back.
        let mut b = Backend::new();
        b.register_job(job(2), SimTime::ZERO);
        let j = JobId::new(1);
        let TaskOutcome::Assigned(first) = b.fetch_task(j, NodeId::new(10)).unwrap() else {
            panic!()
        };
        let TaskOutcome::Assigned(again) = b.fetch_task(j, NodeId::new(10)).unwrap() else {
            panic!()
        };
        assert_eq!(first.id, again.id, "stale task re-queued at the front");
        assert_eq!(b.requeue_count(j), 1);
        // The job still completes exactly once per task.
        assert!(!b
            .complete_task(j, again.id, NodeId::new(10), SimTime::from_secs(1))
            .unwrap());
        let TaskOutcome::Assigned(second) = b.fetch_task(j, NodeId::new(10)).unwrap() else {
            panic!()
        };
        assert!(b
            .complete_task(j, second.id, NodeId::new(10), SimTime::from_secs(2))
            .unwrap());
        assert_eq!(b.completed_count(j), 2);
    }

    #[test]
    fn fetch_batch_assigns_up_to_max() {
        let mut b = Backend::new();
        b.register_job(job(5), SimTime::ZERO);
        let j = JobId::new(1);
        let batch = b.fetch_batch(j, NodeId::new(10), 3).unwrap();
        assert_eq!(
            batch.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)]
        );
        assert_eq!(b.assigned_count(j), 3);
        // The remainder is a short batch; a further fetch drains.
        assert_eq!(b.fetch_batch(j, NodeId::new(11), 3).unwrap().len(), 2);
        assert!(b.fetch_batch(j, NodeId::new(12), 3).unwrap().is_empty());
        assert_eq!(b.unaccounted_tasks(j), 0);
    }

    #[test]
    fn node_loss_requeues_a_whole_batch() {
        let mut b = Backend::new();
        b.register_job(job(4), SimTime::ZERO);
        let j = JobId::new(1);
        let batch = b.fetch_batch(j, NodeId::new(10), 3).unwrap();
        // One result lands before the node dies.
        assert!(!b
            .complete_task(j, batch[0].id, NodeId::new(10), SimTime::from_secs(1))
            .unwrap());
        assert_eq!(b.node_lost(NodeId::new(10)), vec![j]);
        // The two unfinished tasks of the batch went back, the completed
        // one did not; nothing is orphaned.
        assert_eq!(b.pending_count(j), 3);
        assert_eq!(b.requeue_count(j), 2);
        assert_eq!(b.unaccounted_tasks(j), 0);
        // Another node finishes the job.
        for t in b.fetch_batch(j, NodeId::new(11), 4).unwrap() {
            b.complete_task(j, t.id, NodeId::new(11), SimTime::from_secs(9))
                .unwrap();
        }
        assert!(b.is_complete(j));
    }

    #[test]
    fn batch_refetch_recycles_stale_assignments() {
        // A node holding a batch power-cycles and fetches afresh: its old
        // batch is re-queued first, so nothing is lost or duplicated.
        let mut b = Backend::new();
        b.register_job(job(2), SimTime::ZERO);
        let j = JobId::new(1);
        b.fetch_batch(j, NodeId::new(10), 2).unwrap();
        let again = b.fetch_batch(j, NodeId::new(10), 2).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(b.requeue_count(j), 2);
        assert_eq!(b.unaccounted_tasks(j), 0);
        for t in again {
            b.complete_task(j, t.id, NodeId::new(10), SimTime::from_secs(2))
                .unwrap();
        }
        assert!(b.is_complete(j));
        assert_eq!(b.completed_count(j), 2);
    }

    #[test]
    fn loss_of_idle_node_is_a_no_op() {
        let mut b = Backend::new();
        b.register_job(job(1), SimTime::ZERO);
        assert!(b.node_lost(NodeId::new(77)).is_empty());
    }

    #[test]
    fn makespan_absent_until_done() {
        let mut b = Backend::new();
        b.register_job(job(1), SimTime::from_secs(100));
        assert_eq!(b.makespan(JobId::new(1)), None);
    }

    #[test]
    fn export_import_round_trips_ledger() {
        let mut b = Backend::new();
        b.register_job(job(4), SimTime::from_secs(1));
        let j = JobId::new(1);
        let batch = b.fetch_batch(j, NodeId::new(10), 2).unwrap();
        b.complete_task(j, batch[0].id, NodeId::new(10), SimTime::from_secs(2))
            .unwrap();
        b.node_lost(NodeId::new(10)); // re-queues batch[1] at the front
        b.fetch_task(j, NodeId::new(11)).unwrap();
        let now = SimTime::from_secs(3);
        let state = b.export_state(now);

        let mut adopted = Backend::new();
        adopted.import_state(state.clone(), now);
        assert_eq!(adopted.export_state(now), state);
        assert_eq!(adopted.completed_count(j), 1);
        assert_eq!(adopted.assigned_count(j), 1);
        assert_eq!(adopted.pending_count(j), 2);
        assert_eq!(adopted.requeue_count(j), 1);
        assert_eq!(adopted.unaccounted_tasks(j), 0);

        // The adopted ledger keeps full semantics: the in-flight node's
        // upload is accepted, a loss re-queues, and the job completes with
        // every task accounted.
        adopted
            .complete_task(j, batch[1].id, NodeId::new(11), SimTime::from_secs(4))
            .unwrap();
        for t in adopted.fetch_batch(j, NodeId::new(12), 4).unwrap() {
            adopted
                .complete_task(j, t.id, NodeId::new(12), SimTime::from_secs(5))
                .unwrap();
        }
        assert!(adopted.is_complete(j));
        assert_eq!(adopted.unaccounted_tasks(j), 0);
    }

    #[test]
    fn import_rebases_submission_onto_new_clock() {
        let mut b = Backend::new();
        // Submitted at t=100s on the primary, snapshot at t=130s: age 30s.
        b.register_job(job(1), SimTime::from_secs(100));
        let state = b.export_state(SimTime::from_secs(130));

        // Standby clock reads 40s at adoption → submission rebased to 10s.
        let mut adopted = Backend::new();
        adopted.import_state(state, SimTime::from_secs(40));
        let j = JobId::new(1);
        let TaskOutcome::Assigned(t) = adopted.fetch_task(j, NodeId::new(1)).unwrap() else {
            panic!()
        };
        adopted
            .complete_task(j, t.id, NodeId::new(1), SimTime::from_secs(70))
            .unwrap();
        assert_eq!(adopted.makespan(j), Some(SimDuration::from_secs(60)));
    }
}
