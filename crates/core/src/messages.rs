//! Control-plane message types and their authenticated envelope.
//!
//! §3.2: the Controller broadcasts *wakeup* messages (carrying the image,
//! a node-requirements filter and the probability gate) and *reset*
//! messages (destroying an instance). PNAs accept only messages signed by
//! their associated Controller. Heartbeats flow the other way over the
//! direct channels.

use oddci_crypto::{MessageAuthenticator, Tag};
use oddci_types::{DataSize, ImageId, InstanceId, MessageId, NodeId, Probability, Result, SimTime};
use serde::{Deserialize, Serialize};

/// Capability requirements a node must meet to join an instance (§3.2:
/// *"the PNA assesses its own compliance with the requirements present in
/// the message"*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeRequirements {
    /// Minimum free memory for the DVE + image.
    pub min_memory: DataSize,
    /// Whether nodes currently in active TV use may join (standby-only
    /// instances avoid degrading the viewer experience and run 1.65×
    /// faster).
    pub standby_only: bool,
}

/// The wakeup control message creating or growing an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WakeupMessage {
    /// Unique message id (deduplication and tracing).
    pub id: MessageId,
    /// Instance being created or recomposed.
    pub instance: InstanceId,
    /// Application image carried in the carousel alongside this message.
    pub image: ImageId,
    /// Size of that image (drives acquisition latency).
    pub image_size: DataSize,
    /// Probability with which an idle, compliant PNA handles the message.
    pub probability: Probability,
    /// Node filter.
    pub requirements: NodeRequirements,
}

/// The reset control message destroying an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResetMessage {
    /// Unique message id.
    pub id: MessageId,
    /// Instance to dismantle. PNAs not in this instance ignore the message.
    pub instance: InstanceId,
}

/// Any broadcast control message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlMessage {
    /// Create/grow an instance.
    Wakeup(WakeupMessage),
    /// Destroy an instance.
    Reset(ResetMessage),
}

impl ControlMessage {
    /// The message id.
    pub fn id(&self) -> MessageId {
        match self {
            ControlMessage::Wakeup(w) => w.id,
            ControlMessage::Reset(r) => r.id,
        }
    }

    /// The instance this message concerns.
    pub fn instance(&self) -> InstanceId {
        match self {
            ControlMessage::Wakeup(w) => w.instance,
            ControlMessage::Reset(r) => r.instance,
        }
    }

    /// Canonical byte encoding for signing. Field order is fixed and all
    /// integers are little-endian, so Controller and PNA always agree.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ControlMessage::Wakeup(w) => {
                out.push(0x01);
                out.extend_from_slice(&w.id.raw().to_le_bytes());
                out.extend_from_slice(&w.instance.raw().to_le_bytes());
                out.extend_from_slice(&w.image.raw().to_le_bytes());
                out.extend_from_slice(&w.image_size.bits().to_le_bytes());
                out.extend_from_slice(&w.probability.value().to_le_bytes());
                out.extend_from_slice(&w.requirements.min_memory.bits().to_le_bytes());
                out.push(w.requirements.standby_only as u8);
            }
            ControlMessage::Reset(r) => {
                out.push(0x02);
                out.extend_from_slice(&r.id.raw().to_le_bytes());
                out.extend_from_slice(&r.instance.raw().to_le_bytes());
            }
        }
        out
    }
}

/// A control message plus its authentication tag — what actually rides the
/// carousel's `configuration` file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignedMessage {
    /// The message.
    pub message: ControlMessage,
    /// HMAC tag over [`ControlMessage::canonical_bytes`].
    pub tag: Tag,
}

impl SignedMessage {
    /// Signs `message` with the Controller's authenticator.
    pub fn sign(message: ControlMessage, auth: &MessageAuthenticator) -> Self {
        let tag = auth.sign(&message.canonical_bytes());
        SignedMessage { message, tag }
    }

    /// Verifies the tag with the PNA's authenticator.
    pub fn verify(&self, auth: &MessageAuthenticator) -> Result<()> {
        auth.verify_or_err(
            &self.message.canonical_bytes(),
            &self.tag,
            &format!("control message {}", self.message.id()),
        )
    }
}

/// The PNA state carried inside heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PnaStateKind {
    /// Listening, not part of any instance.
    Idle,
    /// Executing the image of the carried instance.
    Busy,
}

/// A heartbeat message (§3.2): PNA state and current instance membership,
/// sent periodically over the direct channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Sender.
    pub node: NodeId,
    /// Idle or busy.
    pub state: PnaStateKind,
    /// Instance the node currently belongs to, if busy.
    pub instance: Option<InstanceId>,
    /// Send timestamp (sender clock; the simulation has one global clock).
    pub sent_at: SimTime,
}

/// The Controller's possible reply to a heartbeat: a direct-channel reset
/// for a single node (§3.2: instance downsizing "replying heartbeat
/// messages with a reset command").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeartbeatReply {
    /// Nothing to do.
    Ack,
    /// Leave `instance` and destroy the DVE.
    Reset(InstanceId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wakeup() -> ControlMessage {
        ControlMessage::Wakeup(WakeupMessage {
            id: MessageId::new(1),
            instance: InstanceId::new(2),
            image: ImageId::new(3),
            image_size: DataSize::from_megabytes(10),
            probability: Probability::new(0.25),
            requirements: NodeRequirements {
                min_memory: DataSize::from_megabytes(32),
                standby_only: true,
            },
        })
    }

    #[test]
    fn sign_verify_round_trip() {
        let auth = MessageAuthenticator::from_key(b"controller-key");
        let signed = SignedMessage::sign(wakeup(), &auth);
        assert!(signed.verify(&auth).is_ok());
    }

    #[test]
    fn foreign_controller_is_rejected() {
        let ours = MessageAuthenticator::from_key(b"controller-key");
        let theirs = MessageAuthenticator::from_key(b"rogue-key");
        let signed = SignedMessage::sign(wakeup(), &theirs);
        let err = signed.verify(&ours).unwrap_err();
        assert!(err.to_string().contains("msg-000001"));
    }

    #[test]
    fn tampering_any_field_breaks_the_tag() {
        let auth = MessageAuthenticator::from_key(b"controller-key");
        let mut signed = SignedMessage::sign(wakeup(), &auth);
        if let ControlMessage::Wakeup(w) = &mut signed.message {
            w.probability = Probability::new(1.0); // boost acceptance
        }
        assert!(signed.verify(&auth).is_err());
    }

    #[test]
    fn canonical_bytes_distinguish_message_kinds() {
        let reset = ControlMessage::Reset(ResetMessage {
            id: MessageId::new(1),
            instance: InstanceId::new(2),
        });
        assert_ne!(wakeup().canonical_bytes(), reset.canonical_bytes());
        assert_eq!(reset.canonical_bytes()[0], 0x02);
    }

    #[test]
    fn canonical_bytes_are_deterministic() {
        assert_eq!(wakeup().canonical_bytes(), wakeup().canonical_bytes());
    }

    #[test]
    fn accessors() {
        let m = wakeup();
        assert_eq!(m.id(), MessageId::new(1));
        assert_eq!(m.instance(), InstanceId::new(2));
    }
}
