//! Desired-state autoscaling for the Provider (elastic sizing).
//!
//! The paper's Provider sizes an instance once at submission and never
//! revisits it, but §4's economics only hold if capacity tracks demand:
//! volunteer pools are diurnal, so a production headend must re-size
//! continuously. This module is the *pure* half of that loop — a
//! [`Reconciler`] that turns observed load ([`ScaleInputs`]: Backend queue
//! depth, heartbeat lag, observed tasks/s, fetch p99) into a
//! [`ScaleDecision`] against a configurable SLO ([`AutoscalePolicy`]).
//!
//! Design rules that make the loop converge instead of oscillate:
//!
//! * **Desired state, not deltas.** Each tick computes the full target
//!   size from the inputs and jumps straight to it; two consecutive ticks
//!   under the same load agree, so the loop reaches a fixed point in one
//!   action.
//! * **Hysteresis on the way down.** Scaling down requires the target to
//!   undershoot the current desired size by a configurable band, so load
//!   hovering at a capacity boundary does not flap the instance.
//! * **Cooldown between actions.** At most one scaling action per
//!   cooldown window — except replacements after an airtime revocation,
//!   which restore *lost* capacity and therefore bypass the cooldown.
//!
//! The impure half (sampling the live gauges, applying the decision via
//! `Controller::resize` / recompose wakeups) lives in `oddci-live`; this
//! split keeps every sizing decision unit-testable and property-testable
//! without a runtime.

use oddci_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The SLO and bounds a [`Reconciler`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Never trim the instance below this many members.
    pub min_size: usize,
    /// Never grow the instance beyond this many members.
    pub max_size: usize,
    /// Target backlog per member: the desired size is the smallest
    /// membership that keeps `queue_depth / size` at or below this.
    pub slo_queue_depth: usize,
    /// Maximum acceptable p99 task-fetch latency in seconds; a breach
    /// adds one member per tick even when the queue target is met.
    /// `0` disables the latency signal.
    pub slo_fetch_p99: f64,
    /// Maximum acceptable controller heartbeat lag in seconds; a breach
    /// is treated like a latency breach. `0` disables the signal.
    pub slo_heartbeat_lag: f64,
    /// Fractional undershoot band required before scaling down: with
    /// `0.25`, a 4-member instance only trims once the computed target
    /// drops to 3 or less *and* the drop covers a quarter of the current
    /// size. Guards against flapping at capacity boundaries.
    pub hysteresis: f64,
    /// Minimum time between scaling actions (replacements excepted).
    pub cooldown: SimDuration,
}

impl Default for AutoscalePolicy {
    fn default() -> AutoscalePolicy {
        AutoscalePolicy {
            min_size: 1,
            max_size: 64,
            slo_queue_depth: 4,
            slo_fetch_p99: 0.0,
            slo_heartbeat_lag: 0.0,
            hysteresis: 0.25,
            cooldown: SimDuration::from_secs(30),
        }
    }
}

impl AutoscalePolicy {
    /// Checks the policy is self-consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_size == 0 {
            return Err("autoscale: min_size must be at least 1".into());
        }
        if self.max_size < self.min_size {
            return Err(format!(
                "autoscale: max_size {} below min_size {}",
                self.max_size, self.min_size
            ));
        }
        if self.slo_queue_depth == 0 {
            return Err("autoscale: slo_queue_depth must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.hysteresis) || !self.hysteresis.is_finite() {
            return Err(format!(
                "autoscale: hysteresis {} outside [0, 1)",
                self.hysteresis
            ));
        }
        if !self.slo_fetch_p99.is_finite() || self.slo_fetch_p99 < 0.0 {
            return Err(format!(
                "autoscale: slo_fetch_p99 {} invalid",
                self.slo_fetch_p99
            ));
        }
        if !self.slo_heartbeat_lag.is_finite() || self.slo_heartbeat_lag < 0.0 {
            return Err(format!(
                "autoscale: slo_heartbeat_lag {} invalid",
                self.slo_heartbeat_lag
            ));
        }
        Ok(())
    }
}

/// One tick's worth of observations, sampled from the telemetry plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScaleInputs {
    /// Tasks queued at the Backend and not yet assigned.
    pub queue_depth: usize,
    /// Worst per-shard `controller.heartbeat_lag` gauge, seconds.
    pub heartbeat_lag: f64,
    /// Observed completion throughput, tasks per second.
    pub tasks_per_sec: f64,
    /// Observed p99 task-fetch latency, seconds.
    pub fetch_p99: f64,
    /// Current instance membership (live members, not the target).
    pub current_size: usize,
}

/// What one reconciliation tick decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Desired state already matches the observations (or the cooldown
    /// window is still open).
    Hold,
    /// Raise the desired size from `from` to `to`.
    ScaleUp {
        /// Previous desired size.
        from: usize,
        /// New desired size.
        to: usize,
    },
    /// Lower the desired size from `from` to `to`.
    ScaleDown {
        /// Previous desired size.
        from: usize,
        /// New desired size.
        to: usize,
    },
    /// Re-request capacity after a revocation emptied the membership:
    /// keep the desired size at `to` and re-broadcast wakeups.
    Replace {
        /// Members lost to the revocation.
        from: usize,
        /// Desired size to restore.
        to: usize,
    },
}

impl ScaleDecision {
    /// True when the tick changed (or re-requested) capacity.
    pub fn acted(&self) -> bool {
        !matches!(self, ScaleDecision::Hold)
    }
}

/// Serializable reconciler state: what a snapshot must carry so a standby
/// resumes scaling without double-provisioning. Times are stored as
/// *remaining* durations, never absolute instants, because the standby's
/// clock starts from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutoscaleExport {
    /// The desired membership the loop is currently steering toward.
    pub desired: usize,
    /// Cooldown left to serve at export time, microseconds.
    pub cooldown_remaining_micros: u64,
    /// A revocation was observed and its replacement not yet issued.
    pub pending_replace: bool,
    /// Reconciliation ticks run.
    pub ticks: u64,
    /// Scale-up actions taken.
    pub scale_ups: u64,
    /// Scale-down actions taken.
    pub scale_downs: u64,
    /// Replacement (post-revocation) actions taken.
    pub replacements: u64,
}

/// The desired-state control loop. Feed it observations with
/// [`tick`](Reconciler::tick); it answers with the action that moves the
/// instance toward SLO compliance.
#[derive(Debug, Clone)]
pub struct Reconciler {
    policy: AutoscalePolicy,
    desired: usize,
    /// No scaling action before this instant (cooldown fencing).
    cooldown_until: SimTime,
    pending_replace: bool,
    ticks: u64,
    scale_ups: u64,
    scale_downs: u64,
    replacements: u64,
}

impl Reconciler {
    /// A reconciler steering toward `initial` members (clamped to the
    /// policy's bounds) with no cooldown pending.
    pub fn new(policy: AutoscalePolicy, initial: usize) -> Reconciler {
        policy.validate().expect("valid autoscale policy");
        let desired = initial.clamp(policy.min_size, policy.max_size);
        Reconciler {
            policy,
            desired,
            cooldown_until: SimTime::ZERO,
            pending_replace: false,
            ticks: 0,
            scale_ups: 0,
            scale_downs: 0,
            replacements: 0,
        }
    }

    /// The policy this loop enforces.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// The membership the loop is currently steering toward.
    pub fn desired(&self) -> usize {
        self.desired
    }

    /// (scale-ups, scale-downs, replacements) taken so far.
    pub fn actions(&self) -> (u64, u64, u64) {
        (self.scale_ups, self.scale_downs, self.replacements)
    }

    /// Records a broadcaster revocation: the next [`Reconciler::tick`] issues a
    /// [`ScaleDecision::Replace`] regardless of cooldown, because lost
    /// capacity must be restored, not rate-limited.
    pub fn observe_revocation(&mut self) {
        self.pending_replace = true;
    }

    /// The size that satisfies the queue SLO for `inputs`, before bounds.
    fn queue_target(&self, inputs: &ScaleInputs) -> usize {
        // ceil(queue / slo): the smallest membership keeping per-member
        // backlog within the SLO. An empty queue needs only the floor.
        inputs.queue_depth.div_ceil(self.policy.slo_queue_depth)
    }

    /// True when a latency-shaped SLO (fetch p99 or heartbeat lag) is
    /// breached — a signal to add capacity even with a short queue.
    fn latency_breached(&self, inputs: &ScaleInputs) -> bool {
        (self.policy.slo_fetch_p99 > 0.0 && inputs.fetch_p99 > self.policy.slo_fetch_p99)
            || (self.policy.slo_heartbeat_lag > 0.0
                && inputs.heartbeat_lag > self.policy.slo_heartbeat_lag)
    }

    /// One reconciliation pass. Pure in `(self, now, inputs)`: the same
    /// state and observations always produce the same decision.
    pub fn tick(&mut self, now: SimTime, inputs: &ScaleInputs) -> ScaleDecision {
        self.ticks += 1;

        // Replacement first: a revocation emptied the membership, and the
        // cooldown must not delay restoring it.
        if self.pending_replace {
            self.pending_replace = false;
            self.replacements += 1;
            self.cooldown_until = now + self.policy.cooldown;
            return ScaleDecision::Replace {
                from: inputs.current_size,
                to: self.desired,
            };
        }

        if now < self.cooldown_until {
            return ScaleDecision::Hold;
        }

        let mut target = self
            .queue_target(inputs)
            .clamp(self.policy.min_size, self.policy.max_size);

        // A latency breach with the queue target already met means the
        // members we have are too slow (or too laggy): add one.
        if target <= self.desired && self.latency_breached(inputs) {
            target = (self.desired + 1).min(self.policy.max_size);
        }

        if target > self.desired {
            let from = self.desired;
            self.desired = target;
            self.scale_ups += 1;
            self.cooldown_until = now + self.policy.cooldown;
            return ScaleDecision::ScaleUp { from, to: target };
        }

        if target < self.desired {
            // Hysteresis: only trim once the undershoot clears the band,
            // so load hovering at a boundary cannot flap the instance.
            let band = (self.desired as f64 * self.policy.hysteresis).ceil() as usize;
            if self.desired - target >= band.max(1) {
                let from = self.desired;
                self.desired = target;
                self.scale_downs += 1;
                self.cooldown_until = now + self.policy.cooldown;
                return ScaleDecision::ScaleDown { from, to: target };
            }
        }

        ScaleDecision::Hold
    }

    /// Serializes the loop state for a snapshot cut at `now`.
    pub fn export(&self, now: SimTime) -> AutoscaleExport {
        let remaining = if self.cooldown_until > now {
            (self.cooldown_until - now).as_micros()
        } else {
            0
        };
        AutoscaleExport {
            desired: self.desired,
            cooldown_remaining_micros: remaining,
            pending_replace: self.pending_replace,
            ticks: self.ticks,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            replacements: self.replacements,
        }
    }

    /// Rebuilds the loop from a snapshot record on a standby whose clock
    /// reads `now`. The desired size carries over verbatim — this is what
    /// prevents the standby from re-provisioning capacity the primary
    /// already requested.
    pub fn from_export(
        policy: AutoscalePolicy,
        export: &AutoscaleExport,
        now: SimTime,
    ) -> Reconciler {
        policy.validate().expect("valid autoscale policy");
        Reconciler {
            desired: export.desired.clamp(policy.min_size, policy.max_size),
            cooldown_until: now + SimDuration::from_micros(export.cooldown_remaining_micros),
            pending_replace: export.pending_replace,
            ticks: export.ticks,
            scale_ups: export.scale_ups,
            scale_downs: export.scale_downs,
            replacements: export.replacements,
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            min_size: 2,
            max_size: 12,
            slo_queue_depth: 5,
            slo_fetch_p99: 0.0,
            slo_heartbeat_lag: 0.0,
            hysteresis: 0.25,
            cooldown: SimDuration::from_secs(10),
        }
    }

    fn load(queue: usize, size: usize) -> ScaleInputs {
        ScaleInputs {
            queue_depth: queue,
            current_size: size,
            ..ScaleInputs::default()
        }
    }

    #[test]
    fn scales_up_to_the_queue_target_in_one_action() {
        let mut r = Reconciler::new(policy(), 2);
        let d = r.tick(SimTime::from_secs(1), &load(32, 2));
        assert_eq!(d, ScaleDecision::ScaleUp { from: 2, to: 7 });
        assert_eq!(r.desired(), 7);
        // Same load again: fixed point, and cooldown would gate anyway.
        let d = r.tick(SimTime::from_secs(20), &load(32, 7));
        assert_eq!(d, ScaleDecision::Hold);
    }

    #[test]
    fn cooldown_gates_consecutive_actions() {
        let mut r = Reconciler::new(policy(), 2);
        assert!(r.tick(SimTime::from_secs(1), &load(30, 2)).acted());
        // A bigger queue 1 s later must wait out the cooldown.
        assert_eq!(
            r.tick(SimTime::from_secs(2), &load(60, 2)),
            ScaleDecision::Hold
        );
        assert!(r.tick(SimTime::from_secs(11), &load(60, 6)).acted());
    }

    #[test]
    fn never_exceeds_max_size() {
        let mut r = Reconciler::new(policy(), 2);
        let d = r.tick(SimTime::from_secs(1), &load(10_000, 2));
        assert_eq!(d, ScaleDecision::ScaleUp { from: 2, to: 12 });
    }

    #[test]
    fn hysteresis_blocks_boundary_flapping() {
        let mut r = Reconciler::new(policy(), 8);
        // Target 7 is inside the 25% band of 8 (band = 2): hold.
        assert_eq!(
            r.tick(SimTime::from_secs(1), &load(35, 8)),
            ScaleDecision::Hold
        );
        // Target 4 clears the band: trim.
        assert_eq!(
            r.tick(SimTime::from_secs(2), &load(20, 8)),
            ScaleDecision::ScaleDown { from: 8, to: 4 }
        );
        // Never below min_size.
        let d = r.tick(SimTime::from_secs(20), &load(0, 4));
        assert_eq!(d, ScaleDecision::ScaleDown { from: 4, to: 2 });
    }

    #[test]
    fn latency_breach_adds_one_member() {
        let p = AutoscalePolicy {
            slo_fetch_p99: 0.5,
            ..policy()
        };
        let mut r = Reconciler::new(p, 4);
        let inputs = ScaleInputs {
            queue_depth: 5,
            fetch_p99: 2.0,
            current_size: 4,
            ..ScaleInputs::default()
        };
        assert_eq!(
            r.tick(SimTime::from_secs(1), &inputs),
            ScaleDecision::ScaleUp { from: 4, to: 5 }
        );
    }

    #[test]
    fn heartbeat_lag_breach_adds_one_member() {
        let p = AutoscalePolicy {
            slo_heartbeat_lag: 1.0,
            ..policy()
        };
        let mut r = Reconciler::new(p, 4);
        let inputs = ScaleInputs {
            queue_depth: 0,
            heartbeat_lag: 3.0,
            current_size: 4,
            ..ScaleInputs::default()
        };
        assert_eq!(
            r.tick(SimTime::from_secs(1), &inputs),
            ScaleDecision::ScaleUp { from: 4, to: 5 }
        );
    }

    #[test]
    fn revocation_replaces_immediately_despite_cooldown() {
        let mut r = Reconciler::new(policy(), 2);
        assert!(r.tick(SimTime::from_secs(1), &load(30, 2)).acted());
        r.observe_revocation();
        // 1 s later — inside the cooldown — the replacement still fires.
        let d = r.tick(SimTime::from_secs(2), &load(30, 0));
        assert_eq!(d, ScaleDecision::Replace { from: 0, to: 6 });
        assert_eq!(r.actions().2, 1);
    }

    #[test]
    fn export_round_trips_without_double_provisioning() {
        let mut r = Reconciler::new(policy(), 2);
        assert!(r.tick(SimTime::from_secs(1), &load(40, 2)).acted());
        let export = r.export(SimTime::from_secs(3));
        assert_eq!(export.desired, 8);
        assert_eq!(export.cooldown_remaining_micros, 8_000_000);

        // The standby's clock restarts from zero; the adopted loop must
        // keep both the desired size and the unserved cooldown.
        let mut standby = Reconciler::from_export(policy(), &export, SimTime::from_secs(0));
        assert_eq!(standby.desired(), 8);
        assert_eq!(
            standby.tick(SimTime::from_secs(1), &load(40, 8)),
            ScaleDecision::Hold,
            "cooldown must carry over"
        );
        assert_eq!(
            standby.tick(SimTime::from_secs(9), &load(80, 8)),
            ScaleDecision::ScaleUp { from: 8, to: 12 }
        );
    }

    #[test]
    fn export_serializes() {
        let r = Reconciler::new(policy(), 4);
        let json = serde_json::to_string(&r.export(SimTime::ZERO)).unwrap();
        let back: AutoscaleExport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r.export(SimTime::ZERO));
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        assert!(AutoscalePolicy {
            min_size: 0,
            ..AutoscalePolicy::default()
        }
        .validate()
        .is_err());
        assert!(AutoscalePolicy {
            max_size: 1,
            min_size: 2,
            ..AutoscalePolicy::default()
        }
        .validate()
        .is_err());
        assert!(AutoscalePolicy {
            slo_queue_depth: 0,
            ..AutoscalePolicy::default()
        }
        .validate()
        .is_err());
        assert!(AutoscalePolicy {
            hysteresis: 1.5,
            ..AutoscalePolicy::default()
        }
        .validate()
        .is_err());
        assert!(AutoscalePolicy::default().validate().is_ok());
    }
}
