//! The Controller (§3.1–3.2): sets up instances on the broadcast channel,
//! consolidates heartbeats, keeps instances at their target size.
//!
//! The Controller is **transport-agnostic**: it never touches the carousel
//! or the direct channels itself. Instead its methods return
//! [`ControllerOutput`] values (broadcast this signed message, reset that
//! node, tell the Backend this node died) that the surrounding runtime —
//! the discrete-event [`world`](crate::world) or the live thread runtime —
//! executes. That keeps the control logic identical across both planes and
//! directly unit-testable.

use crate::messages::{
    ControlMessage, Heartbeat, NodeRequirements, PnaStateKind, ResetMessage, SignedMessage,
    WakeupMessage,
};
use oddci_crypto::MessageAuthenticator;
use oddci_types::{
    DataSize, HeartbeatConfig, ImageId, InstanceId, MessageId, NodeId, OddciError, Probability,
    Result, SimDuration, SimTime,
};
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// A Provider's request for a new instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceRequest {
    /// Image to distribute.
    pub image: ImageId,
    /// Image size (the carousel payload).
    pub image_size: DataSize,
    /// Desired number of member nodes.
    pub target: u64,
    /// Node filter to embed in the wakeup message.
    pub requirements: NodeRequirements,
}

/// Where an instance is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Wakeup broadcast, members still joining.
    Forming,
    /// At (or near) target size.
    Active,
    /// Reset broadcast; stragglers are reset via heartbeat replies.
    Dismantled,
}

/// Controller-side bookkeeping for one instance.
#[derive(Debug, Clone)]
pub struct InstanceRecord {
    /// The original request.
    pub request: InstanceRequest,
    /// Lifecycle status.
    pub status: InstanceStatus,
    /// Nodes whose most recent heartbeat claimed membership.
    pub members: BTreeSet<NodeId>,
    /// Wakeup (re)broadcasts issued for this instance.
    pub wakeups_sent: u32,
}

/// Tunable Controller behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerPolicy {
    /// Heartbeat interval / loss threshold the PNAs are configured with.
    pub heartbeat: HeartbeatConfig,
    /// Multiplier on the sizing probability (`p = slack·target/pool`);
    /// values slightly above 1 over-admit and rely on heartbeat-reply
    /// trimming, trading broadcast round-trips for precision.
    pub sizing_slack: f64,
    /// Fraction of the target below which a Forming/Active instance is
    /// recomposed with a fresh wakeup broadcast.
    pub recompose_threshold: f64,
    /// Idle-pool estimate used before any heartbeat has been consolidated
    /// (the expected audience of the channel).
    pub assumed_audience: u64,
    /// Defer recomposition wakeups until at least one **live idle** node is
    /// in the registry. Off by default (the simulated plane must recompose
    /// to recruit churned-in receivers it has never heard from); the
    /// sharded live headend turns it on so a shard whose owned slice is
    /// fully busy — or empty — does not rebroadcast wakeups every tick
    /// that nobody can accept.
    #[serde(default)]
    pub recompose_requires_idle: bool,
}

impl Default for ControllerPolicy {
    fn default() -> Self {
        ControllerPolicy {
            heartbeat: HeartbeatConfig::default(),
            sizing_slack: 1.0,
            recompose_threshold: 0.95,
            assumed_audience: 10_000,
            recompose_requires_idle: false,
        }
    }
}

/// Side effects the runtime must carry out for the Controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerOutput {
    /// Publish this signed control message (and, for wakeups, the image)
    /// through the carousel.
    Broadcast(SignedMessage),
    /// Send a direct-channel reset to one node (downsizing / stragglers).
    DirectReset {
        /// Target node.
        node: NodeId,
        /// Instance it must leave.
        instance: InstanceId,
    },
    /// A busy node was declared lost; the Backend must re-queue its task.
    NodeLost {
        /// The node that timed out.
        node: NodeId,
        /// Instance it belonged to.
        instance: InstanceId,
    },
}

#[derive(Debug, Clone, Copy)]
struct NodeRecord {
    last_heartbeat: SimTime,
    state: PnaStateKind,
    instance: Option<InstanceId>,
}

/// Serializable snapshot of one instance's controller-side bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceExport {
    /// Instance identity.
    pub id: InstanceId,
    /// The original Provider request (target, image, requirements).
    pub request: InstanceRequest,
    /// Lifecycle status at snapshot time.
    pub status: InstanceStatus,
    /// Member nodes at snapshot time.
    pub members: Vec<NodeId>,
    /// Wakeup (re)broadcasts issued so far.
    pub wakeups_sent: u32,
}

/// Serializable snapshot of one heartbeat-registry entry.
///
/// Heartbeat recency is stored as an **age** relative to the snapshot
/// instant rather than an absolute [`SimTime`]: the primary and a standby
/// headend run separate clocks (each starts at its own process launch), so
/// absolute instants from one are meaningless on the other. Ages rebase
/// cleanly via [`SimTime::saturating_sub`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeExport {
    /// The node.
    pub node: NodeId,
    /// How long before the snapshot its last heartbeat arrived.
    pub heartbeat_age: SimDuration,
    /// Last reported PNA state.
    pub state: PnaStateKind,
    /// Instance membership claimed by that heartbeat.
    pub instance: Option<InstanceId>,
}

/// Complete exported Controller state: membership, heartbeat ledger, and —
/// critically — the message-id namespace. An adopting Controller must keep
/// signing from the same `next_message`/`message_stride` stream, because
/// PNAs deduplicate carousel repetitions by [`MessageId`] and would drop a
/// restarted id sequence as already-seen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// All instances and their membership.
    pub instances: Vec<InstanceExport>,
    /// The heartbeat registry, ages relative to the snapshot instant.
    pub registry: Vec<NodeExport>,
    /// Next locally allocated instance id.
    pub next_instance: u64,
    /// Next control-message id to sign with.
    pub next_message: u64,
    /// Id-namespace stride (shard count).
    pub message_stride: u64,
    /// Heartbeats processed so far.
    pub heartbeats_received: u64,
}

/// The Controller.
pub struct Controller {
    auth: MessageAuthenticator,
    policy: ControllerPolicy,
    instances: BTreeMap<InstanceId, InstanceRecord>,
    registry: BTreeMap<NodeId, NodeRecord>,
    next_instance: u64,
    next_message: u64,
    message_stride: u64,
    /// Heartbeats processed (experiment X2 accounting).
    pub heartbeats_received: u64,
}

impl Controller {
    /// Creates a Controller signing with `key` under `policy`.
    pub fn new(key: &[u8], policy: ControllerPolicy) -> Self {
        Controller::with_id_namespace(key, policy, 0, 1)
    }

    /// Creates a Controller whose control messages are numbered `offset,
    /// offset + stride, offset + 2·stride, …`.
    ///
    /// PNAs deduplicate carousel repetitions by [`MessageId`], so when
    /// several Controllers share one broadcast channel (the shards of a
    /// [`ShardedController`](crate::sharded::ShardedController)) each must
    /// sign from a disjoint id namespace — otherwise a node that consumed
    /// shard 0's message `#7` would silently drop shard 1's.
    pub fn with_id_namespace(
        key: &[u8],
        policy: ControllerPolicy,
        offset: u64,
        stride: u64,
    ) -> Self {
        assert!(stride > 0, "message-id stride must be positive");
        Controller {
            auth: MessageAuthenticator::from_key(key),
            policy,
            instances: BTreeMap::new(),
            registry: BTreeMap::new(),
            next_instance: 0,
            next_message: offset,
            message_stride: stride,
            heartbeats_received: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &ControllerPolicy {
        &self.policy
    }

    fn next_message_id(&mut self) -> MessageId {
        let id = MessageId::new(self.next_message);
        self.next_message += self.message_stride;
        id
    }

    /// Nodes currently believed idle (alive and not in any instance).
    pub fn idle_pool_estimate(&self, now: SimTime) -> u64 {
        let deadline = self.policy.heartbeat.loss_deadline();
        let live_idle = self
            .registry
            .values()
            .filter(|r| r.state == PnaStateKind::Idle && now.since(r.last_heartbeat) <= deadline)
            .count() as u64;
        if self.registry.is_empty() {
            self.policy.assumed_audience
        } else {
            live_idle
        }
    }

    /// Creates an instance: allocates an id and returns it along with the
    /// wakeup broadcast to publish.
    pub fn create_instance(
        &mut self,
        req: InstanceRequest,
        now: SimTime,
    ) -> (InstanceId, Vec<ControllerOutput>) {
        let id = InstanceId::new(self.next_instance);
        self.next_instance += 1;
        let outputs = self.admit_instance(id, req, now);
        (id, outputs)
    }

    /// Creates an instance under an **externally allocated** id, returning
    /// the wakeup broadcast to publish. Used when a coordinator (e.g. a
    /// [`ShardedController`](crate::sharded::ShardedController) or the
    /// sharded live headend) hands the same instance to several shard
    /// Controllers and needs them all to agree on its identity.
    pub fn admit_instance(
        &mut self,
        id: InstanceId,
        req: InstanceRequest,
        now: SimTime,
    ) -> Vec<ControllerOutput> {
        let mut record = InstanceRecord {
            request: req,
            status: InstanceStatus::Forming,
            members: BTreeSet::new(),
            wakeups_sent: 0,
        };
        let wakeup = self.wakeup_message(id, &req, req.target, now);
        record.wakeups_sent = 1;
        self.instances.insert(id, record);
        self.next_instance = self.next_instance.max(id.raw() + 1);
        vec![ControllerOutput::Broadcast(wakeup)]
    }

    fn wakeup_message(
        &mut self,
        id: InstanceId,
        req: &InstanceRequest,
        deficit: u64,
        now: SimTime,
    ) -> SignedMessage {
        let pool = self.idle_pool_estimate(now).max(1);
        let p = Probability::new(self.policy.sizing_slack * deficit as f64 / pool as f64);
        SignedMessage::sign(
            ControlMessage::Wakeup(WakeupMessage {
                id: self.next_message_id(),
                instance: id,
                image: req.image,
                image_size: req.image_size,
                probability: p,
                requirements: req.requirements,
            }),
            &self.auth,
        )
    }

    /// Dismantles an instance: broadcasts a reset; stragglers that heartbeat
    /// later are trimmed via heartbeat replies.
    pub fn dismantle(&mut self, id: InstanceId) -> Result<Vec<ControllerOutput>> {
        let record = self
            .instances
            .get_mut(&id)
            .ok_or(OddciError::UnknownInstance(id))?;
        record.status = InstanceStatus::Dismantled;
        record.members.clear();
        let msg_id = self.next_message_id();
        let msg = SignedMessage::sign(
            ControlMessage::Reset(ResetMessage {
                id: msg_id,
                instance: id,
            }),
            &self.auth,
        );
        Ok(vec![ControllerOutput::Broadcast(msg)])
    }

    /// Adjusts the target size of a live instance. Growing may trigger a
    /// recomposition wakeup on the next [`tick`](Self::tick); shrinking is
    /// enforced lazily through heartbeat replies.
    pub fn resize(&mut self, id: InstanceId, new_target: u64) -> Result<()> {
        let record = self
            .instances
            .get_mut(&id)
            .ok_or(OddciError::UnknownInstance(id))?;
        if record.status == InstanceStatus::Dismantled {
            return Err(OddciError::InvalidState {
                operation: "resize",
                state: "Dismantled".into(),
            });
        }
        record.request.target = new_target;
        Ok(())
    }

    /// Evicts every member of an instance at once — the broadcaster
    /// reclaimed the channel (spot-style `airtime-revoked` fault). Each
    /// member produces a [`ControllerOutput::NodeLost`] so the Backend
    /// requeues its in-flight task, plus a [`ControllerOutput::DirectReset`]
    /// so the PNA returns to idle. The instance itself stays alive at its
    /// target (status back to Forming) so the next [`tick`](Self::tick)
    /// recomposes it with fresh wakeups once the reconciler re-requests
    /// capacity.
    pub fn revoke_members(&mut self, id: InstanceId) -> Result<Vec<ControllerOutput>> {
        let record = self
            .instances
            .get_mut(&id)
            .ok_or(OddciError::UnknownInstance(id))?;
        if record.status == InstanceStatus::Dismantled {
            return Err(OddciError::InvalidState {
                operation: "revoke_members",
                state: "Dismantled".into(),
            });
        }
        let members: Vec<NodeId> = std::mem::take(&mut record.members).into_iter().collect();
        if !members.is_empty() {
            record.status = InstanceStatus::Forming;
        }
        let mut out = Vec::with_capacity(members.len() * 2);
        for node in members {
            out.push(ControllerOutput::NodeLost { node, instance: id });
            out.push(ControllerOutput::DirectReset { node, instance: id });
            if let Entry::Occupied(mut e) = self.registry.entry(node) {
                e.get_mut().state = PnaStateKind::Idle;
                e.get_mut().instance = None;
            }
        }
        Ok(out)
    }

    /// Consolidated view of one instance.
    pub fn instance(&self, id: InstanceId) -> Option<&InstanceRecord> {
        self.instances.get(&id)
    }

    /// Current member count of an instance (0 if unknown).
    pub fn instance_size(&self, id: InstanceId) -> u64 {
        self.instances
            .get(&id)
            .map_or(0, |r| r.members.len() as u64)
    }

    /// Total live members across every instance this controller tracks —
    /// what the autoscale reconciler samples as the current capacity of
    /// one shard.
    pub fn total_members(&self) -> u64 {
        self.instances
            .values()
            .map(|r| r.members.len() as u64)
            .sum()
    }

    /// Processes one heartbeat, returning the reply plus any side effects.
    ///
    /// Membership bookkeeping happens here: a Busy heartbeat adds the node
    /// to its instance (unless the instance is over target or dismantled, in
    /// which case the node is reset); an Idle heartbeat removes it.
    pub fn on_heartbeat(&mut self, hb: Heartbeat, now: SimTime) -> Vec<ControllerOutput> {
        self.heartbeats_received += 1;
        let mut out = Vec::new();

        // Membership transition bookkeeping needs the previous record.
        let prev = self.registry.insert(
            hb.node,
            NodeRecord {
                last_heartbeat: now,
                state: hb.state,
                instance: hb.instance,
            },
        );
        if let Some(prev) = prev {
            if let Some(prev_inst) = prev.instance {
                if prev.instance != hb.instance {
                    if let Some(rec) = self.instances.get_mut(&prev_inst) {
                        if rec.members.remove(&hb.node) {
                            // The node left its instance without a reset
                            // from us (PNA crash and reboot, viewer
                            // action). Whatever task it held must go back
                            // into the Backend's queue *now* — waiting for
                            // the node to re-join on a later wakeup can
                            // stall a job's tail indefinitely.
                            out.push(ControllerOutput::NodeLost {
                                node: hb.node,
                                instance: prev_inst,
                            });
                        }
                    }
                }
            }
        }

        if let (PnaStateKind::Busy, Some(inst)) = (hb.state, hb.instance) {
            match self.instances.get_mut(&inst) {
                Some(rec) if rec.status == InstanceStatus::Dismantled => {
                    // Straggler that missed the broadcast reset.
                    out.push(ControllerOutput::DirectReset {
                        node: hb.node,
                        instance: inst,
                    });
                    if let Entry::Occupied(mut e) = self.registry.entry(hb.node) {
                        e.get_mut().state = PnaStateKind::Idle;
                        e.get_mut().instance = None;
                    }
                }
                Some(rec) => {
                    let is_member = rec.members.contains(&hb.node);
                    let size = rec.members.len() as u64;
                    // §3.2: adjust exceeding size by replying with reset —
                    // both for non-members knocking on a full instance and
                    // for existing members after a shrink lowered the target.
                    let trim =
                        (!is_member && size >= rec.request.target) || size > rec.request.target;
                    if trim {
                        rec.members.remove(&hb.node);
                        out.push(ControllerOutput::DirectReset {
                            node: hb.node,
                            instance: inst,
                        });
                        if let Entry::Occupied(mut e) = self.registry.entry(hb.node) {
                            e.get_mut().state = PnaStateKind::Idle;
                            e.get_mut().instance = None;
                        }
                    } else {
                        rec.members.insert(hb.node);
                        if rec.members.len() as u64 >= rec.request.target {
                            rec.status = InstanceStatus::Active;
                        }
                    }
                }
                None => {
                    // Unknown instance (e.g. Controller restart): reset.
                    out.push(ControllerOutput::DirectReset {
                        node: hb.node,
                        instance: inst,
                    });
                }
            }
        }
        out
    }

    /// Periodic maintenance: declares nodes lost after missed heartbeats
    /// (producing [`ControllerOutput::NodeLost`]) and recomposes
    /// under-target instances with fresh wakeup broadcasts (§3.2: *"from
    /// time to time the Controller may need to retransmit wakeup control
    /// messages to recompose OddCI instances"*).
    pub fn tick(&mut self, now: SimTime) -> Vec<ControllerOutput> {
        let mut out = Vec::new();
        let deadline = self.policy.heartbeat.loss_deadline();

        // Loss detection.
        let mut lost = Vec::new();
        for (&node, rec) in &self.registry {
            if now.since(rec.last_heartbeat) > deadline {
                lost.push((node, rec.instance));
            }
        }
        for (node, instance) in lost {
            self.registry.remove(&node);
            if let Some(inst) = instance {
                if let Some(rec) = self.instances.get_mut(&inst) {
                    if rec.members.remove(&node) {
                        out.push(ControllerOutput::NodeLost {
                            node,
                            instance: inst,
                        });
                    }
                }
            }
        }

        // Recomposition. Optionally gated on the registry actually holding
        // a live idle node: a wakeup nobody can accept is pure carousel
        // noise, and a sharded headend would otherwise emit one per tick
        // from every shard whose slice is saturated.
        if self.policy.recompose_requires_idle {
            let deadline = self.policy.heartbeat.loss_deadline();
            let live_idle = self
                .registry
                .values()
                .any(|r| r.state == PnaStateKind::Idle && now.since(r.last_heartbeat) <= deadline);
            if !live_idle {
                return out;
            }
        }
        let mut rebroadcasts = Vec::new();
        for (&id, rec) in &self.instances {
            if rec.status == InstanceStatus::Dismantled {
                continue;
            }
            let have = rec.members.len() as u64;
            let target = rec.request.target;
            if (have as f64) < target as f64 * self.policy.recompose_threshold {
                rebroadcasts.push((id, rec.request, target - have));
            }
        }
        for (id, req, deficit) in rebroadcasts {
            let msg = self.wakeup_message(id, &req, deficit, now);
            if let Some(rec) = self.instances.get_mut(&id) {
                rec.wakeups_sent += 1;
                rec.status = InstanceStatus::Forming;
            }
            out.push(ControllerOutput::Broadcast(msg));
        }
        out
    }

    /// Number of nodes the Controller currently tracks.
    pub fn known_nodes(&self) -> usize {
        self.registry.len()
    }

    /// Exports all mutable state for a snapshot taken at `now`.
    ///
    /// The signing key and policy are *not* exported — they are deployment
    /// configuration the standby already holds; only the dynamic ledger
    /// travels in the snapshot.
    pub fn export_state(&self, now: SimTime) -> ControllerState {
        ControllerState {
            instances: self
                .instances
                .iter()
                .map(|(&id, rec)| InstanceExport {
                    id,
                    request: rec.request,
                    status: rec.status,
                    members: rec.members.iter().copied().collect(),
                    wakeups_sent: rec.wakeups_sent,
                })
                .collect(),
            registry: self
                .registry
                .iter()
                .map(|(&node, rec)| NodeExport {
                    node,
                    heartbeat_age: now.since(rec.last_heartbeat),
                    state: rec.state,
                    instance: rec.instance,
                })
                .collect(),
            next_instance: self.next_instance,
            next_message: self.next_message,
            message_stride: self.message_stride,
            heartbeats_received: self.heartbeats_received,
        }
    }

    /// Replaces all mutable state from an exported snapshot, rebasing
    /// heartbeat ages onto `now` (the adopting headend's clock).
    pub fn import_state(&mut self, state: ControllerState, now: SimTime) {
        self.instances = state
            .instances
            .into_iter()
            .map(|e| {
                (
                    e.id,
                    InstanceRecord {
                        request: e.request,
                        status: e.status,
                        members: e.members.into_iter().collect(),
                        wakeups_sent: e.wakeups_sent,
                    },
                )
            })
            .collect();
        self.registry = state
            .registry
            .into_iter()
            .map(|e| {
                (
                    e.node,
                    NodeRecord {
                        last_heartbeat: now.saturating_sub(e.heartbeat_age),
                        state: e.state,
                        instance: e.instance,
                    },
                )
            })
            .collect();
        self.next_instance = state.next_instance;
        self.next_message = state.next_message;
        self.message_stride = state.message_stride;
        self.heartbeats_received = state.heartbeats_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"ctl-key";

    fn request(target: u64) -> InstanceRequest {
        InstanceRequest {
            image: ImageId::new(1),
            image_size: DataSize::from_megabytes(10),
            target,
            requirements: NodeRequirements::default(),
        }
    }

    fn busy_hb(node: u64, inst: InstanceId, t: u64) -> Heartbeat {
        Heartbeat {
            node: NodeId::new(node),
            state: PnaStateKind::Busy,
            instance: Some(inst),
            sent_at: SimTime::from_secs(t),
        }
    }

    fn idle_hb(node: u64, t: u64) -> Heartbeat {
        Heartbeat {
            node: NodeId::new(node),
            state: PnaStateKind::Idle,
            instance: None,
            sent_at: SimTime::from_secs(t),
        }
    }

    #[test]
    fn create_instance_broadcasts_signed_wakeup() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, out) = c.create_instance(request(100), SimTime::ZERO);
        assert_eq!(out.len(), 1);
        let ControllerOutput::Broadcast(signed) = &out[0] else {
            panic!("expected broadcast")
        };
        signed.verify(&MessageAuthenticator::from_key(KEY)).unwrap();
        let ControlMessage::Wakeup(w) = signed.message else {
            panic!("expected wakeup")
        };
        assert_eq!(w.instance, id);
        // Pool estimate falls back to assumed audience (10k): p = 100/10k.
        assert!((w.probability.value() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn membership_tracks_heartbeats() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(2), SimTime::ZERO);
        assert!(c
            .on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1))
            .is_empty());
        assert_eq!(c.instance_size(id), 1);
        assert_eq!(c.instance(id).unwrap().status, InstanceStatus::Forming);
        c.on_heartbeat(busy_hb(2, id, 1), SimTime::from_secs(1));
        assert_eq!(c.instance_size(id), 2);
        assert_eq!(c.instance(id).unwrap().status, InstanceStatus::Active);
    }

    #[test]
    fn excess_members_are_reset() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(1), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        let out = c.on_heartbeat(busy_hb(2, id, 1), SimTime::from_secs(1));
        assert_eq!(
            out,
            vec![ControllerOutput::DirectReset {
                node: NodeId::new(2),
                instance: id
            }]
        );
        assert_eq!(c.instance_size(id), 1);
        // An existing member is NOT reset.
        assert!(c
            .on_heartbeat(busy_hb(1, id, 2), SimTime::from_secs(2))
            .is_empty());
    }

    #[test]
    fn dismantle_then_straggler_reset() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(1), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        let out = c.dismantle(id).unwrap();
        assert!(matches!(
            &out[0],
            ControllerOutput::Broadcast(SignedMessage {
                message: ControlMessage::Reset(_),
                ..
            })
        ));
        // A straggler still claiming membership gets a direct reset.
        let out = c.on_heartbeat(busy_hb(1, id, 10), SimTime::from_secs(10));
        assert_eq!(
            out,
            vec![ControllerOutput::DirectReset {
                node: NodeId::new(1),
                instance: id
            }]
        );
    }

    #[test]
    fn dismantle_unknown_instance_errors() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        assert!(matches!(
            c.dismantle(InstanceId::new(42)),
            Err(OddciError::UnknownInstance(_))
        ));
    }

    #[test]
    fn lost_nodes_are_detected_and_reported() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(5), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 0), SimTime::ZERO);
        // Default policy: 60 s interval × 3 misses = 180 s deadline.
        let out = c.tick(SimTime::from_secs(181));
        assert!(out.contains(&ControllerOutput::NodeLost {
            node: NodeId::new(1),
            instance: id
        }));
        assert_eq!(c.instance_size(id), 0);
        assert_eq!(c.known_nodes(), 0);
    }

    #[test]
    fn under_target_instances_are_recomposed() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(10), SimTime::ZERO);
        // Only 5 of 10 joined.
        for n in 0..5 {
            c.on_heartbeat(busy_hb(n, id, 1), SimTime::from_secs(1));
        }
        // Some idle listeners are known too.
        for n in 100..200 {
            c.on_heartbeat(idle_hb(n, 1), SimTime::from_secs(1));
        }
        let out = c.tick(SimTime::from_secs(2));
        let wakeups: Vec<_> = out
            .iter()
            .filter_map(|o| match o {
                ControllerOutput::Broadcast(SignedMessage {
                    message: ControlMessage::Wakeup(w),
                    ..
                }) => Some(w),
                _ => None,
            })
            .collect();
        assert_eq!(wakeups.len(), 1);
        // Deficit 5 over an idle pool of 100 → p = 0.05.
        assert!((wakeups[0].probability.value() - 0.05).abs() < 1e-9);
        assert_eq!(c.instance(id).unwrap().wakeups_sent, 2);
    }

    #[test]
    fn recompose_gate_waits_for_live_idle_nodes() {
        let policy = ControllerPolicy {
            recompose_requires_idle: true,
            ..Default::default()
        };
        let mut c = Controller::new(KEY, policy);
        let (id, _) = c.create_instance(request(4), SimTime::ZERO);
        // Under target, but no idle node has ever heartbeated: deferred.
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        assert!(c.tick(SimTime::from_secs(2)).is_empty());
        // An idle listener appears: recomposition resumes.
        c.on_heartbeat(idle_hb(7, 3), SimTime::from_secs(3));
        let out = c.tick(SimTime::from_secs(4));
        assert!(
            out.iter().any(|o| matches!(
                o,
                ControllerOutput::Broadcast(SignedMessage {
                    message: ControlMessage::Wakeup(_),
                    ..
                })
            )),
            "{out:?}"
        );
    }

    #[test]
    fn at_target_instances_are_left_alone() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(2), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        c.on_heartbeat(busy_hb(2, id, 1), SimTime::from_secs(1));
        let out = c.tick(SimTime::from_secs(2));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn dismantled_instances_are_never_recomposed() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(10), SimTime::ZERO);
        c.dismantle(id).unwrap();
        assert!(c.tick(SimTime::from_secs(5)).is_empty());
    }

    #[test]
    fn resize_updates_target() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(1), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        c.resize(id, 2).unwrap();
        // A second member is now admitted instead of reset.
        assert!(c
            .on_heartbeat(busy_hb(2, id, 2), SimTime::from_secs(2))
            .is_empty());
        assert_eq!(c.instance_size(id), 2);
        // Resizing a dismantled instance fails.
        c.dismantle(id).unwrap();
        assert!(c.resize(id, 5).is_err());
    }

    #[test]
    fn shrink_trims_existing_members_via_heartbeats() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(3), SimTime::ZERO);
        for n in 1..=3 {
            c.on_heartbeat(busy_hb(n, id, 1), SimTime::from_secs(1));
        }
        assert_eq!(c.instance_size(id), 3);
        c.resize(id, 1).unwrap();
        // Next heartbeats from members trim the excess one by one.
        let out = c.on_heartbeat(busy_hb(1, id, 2), SimTime::from_secs(2));
        assert_eq!(
            out,
            vec![ControllerOutput::DirectReset {
                node: NodeId::new(1),
                instance: id
            }]
        );
        let out = c.on_heartbeat(busy_hb(2, id, 2), SimTime::from_secs(2));
        assert_eq!(out.len(), 1);
        assert_eq!(c.instance_size(id), 1);
        // The survivor is left alone at exactly the target.
        assert!(c
            .on_heartbeat(busy_hb(3, id, 3), SimTime::from_secs(3))
            .is_empty());
        assert_eq!(c.instance_size(id), 1);
    }

    #[test]
    fn revoke_members_evicts_everyone_and_recomposes() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(3), SimTime::ZERO);
        for n in 1..=3 {
            c.on_heartbeat(busy_hb(n, id, 1), SimTime::from_secs(1));
        }
        assert_eq!(c.instance(id).unwrap().status, InstanceStatus::Active);
        let out = c.revoke_members(id).unwrap();
        // Every member is reported lost (task requeue) and reset (to idle).
        for n in 1..=3u64 {
            assert!(out.contains(&ControllerOutput::NodeLost {
                node: NodeId::new(n),
                instance: id
            }));
            assert!(out.contains(&ControllerOutput::DirectReset {
                node: NodeId::new(n),
                instance: id
            }));
        }
        assert_eq!(c.instance_size(id), 0);
        assert_eq!(c.instance(id).unwrap().status, InstanceStatus::Forming);
        // The evicted nodes are idle again, so the next tick recomposes.
        let out = c.tick(SimTime::from_secs(2));
        assert!(
            out.iter().any(|o| matches!(
                o,
                ControllerOutput::Broadcast(SignedMessage {
                    message: ControlMessage::Wakeup(_),
                    ..
                })
            )),
            "{out:?}"
        );
        // Revoking a dismantled instance is an error, as is an unknown id.
        c.dismantle(id).unwrap();
        assert!(c.revoke_members(id).is_err());
        assert!(c.revoke_members(InstanceId::new(99)).is_err());
    }

    #[test]
    fn idle_heartbeat_clears_membership() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(5), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        assert_eq!(c.instance_size(id), 1);
        c.on_heartbeat(idle_hb(1, 2), SimTime::from_secs(2));
        assert_eq!(c.instance_size(id), 0);
    }

    #[test]
    fn idle_pool_estimate_uses_live_idle_nodes() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        assert_eq!(
            c.idle_pool_estimate(SimTime::ZERO),
            10_000,
            "assumed audience fallback"
        );
        for n in 0..50 {
            c.on_heartbeat(idle_hb(n, 1), SimTime::from_secs(1));
        }
        assert_eq!(c.idle_pool_estimate(SimTime::from_secs(2)), 50);
        // Stale nodes fall out of the estimate.
        assert_eq!(c.idle_pool_estimate(SimTime::from_secs(10_000)), 0);
    }

    #[test]
    fn heartbeat_counter_increments() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        c.on_heartbeat(idle_hb(1, 1), SimTime::from_secs(1));
        c.on_heartbeat(idle_hb(2, 1), SimTime::from_secs(1));
        assert_eq!(c.heartbeats_received, 2);
    }

    #[test]
    fn export_import_round_trips_state() {
        let mut c = Controller::with_id_namespace(KEY, ControllerPolicy::default(), 3, 8);
        let (id, _) = c.create_instance(request(2), SimTime::ZERO);
        c.on_heartbeat(busy_hb(1, id, 1), SimTime::from_secs(1));
        c.on_heartbeat(busy_hb(2, id, 1), SimTime::from_secs(1));
        c.on_heartbeat(idle_hb(9, 2), SimTime::from_secs(2));
        let now = SimTime::from_secs(3);
        let state = c.export_state(now);

        let mut adopted = Controller::new(KEY, ControllerPolicy::default());
        adopted.import_state(state.clone(), now);
        // Same snapshot instant → byte-identical re-export.
        assert_eq!(adopted.export_state(now), state);
        assert_eq!(adopted.instance_size(id), 2);
        assert_eq!(adopted.known_nodes(), 3);
        assert_eq!(adopted.heartbeats_received, 3);
        // Message-id namespace continues where the primary stopped: the
        // first post-adoption broadcast must carry a *fresh* id, offset 3
        // stride 8, after the two messages (#3 wakeup implicit in create,
        // none since) the primary already signed.
        let (_, out) = adopted.create_instance(request(1), now);
        let ControllerOutput::Broadcast(signed) = &out[0] else {
            panic!("expected broadcast")
        };
        let ControlMessage::Wakeup(w) = signed.message else {
            panic!("expected wakeup")
        };
        assert_eq!(w.id, MessageId::new(3 + 8));
    }

    #[test]
    fn import_rebases_heartbeat_ages_onto_new_clock() {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (id, _) = c.create_instance(request(1), SimTime::ZERO);
        // Heartbeat at t=100s, snapshot at t=150s: age 50s.
        c.on_heartbeat(busy_hb(1, id, 100), SimTime::from_secs(100));
        let state = c.export_state(SimTime::from_secs(150));

        // Standby's clock reads only 60s when it adopts.
        let mut adopted = Controller::new(KEY, ControllerPolicy::default());
        adopted.import_state(state, SimTime::from_secs(60));
        // Node is 50s stale on the standby clock — inside the default 180s
        // deadline, so it survives the first tick...
        assert!(adopted.tick(SimTime::from_secs(61)).is_empty());
        assert_eq!(adopted.instance_size(id), 1);
        // ...and is lost once the rebased age crosses the deadline.
        let out = adopted.tick(SimTime::from_secs(191));
        assert!(out.contains(&ControllerOutput::NodeLost {
            node: NodeId::new(1),
            instance: id
        }));
    }
}
