//! The Processing Node Agent — the resident trigger application (§3.2,
//! Figure 2; implemented as an Xlet in §4.3).
//!
//! The PNA is a small state machine: **idle** (listening) or **busy**
//! (hosting a DVE that executes an instance's image). It
//!
//! * verifies that control messages come from its associated Controller,
//! * deduplicates them (the carousel repeats the same message every cycle),
//! * applies the probability gate and the node-requirements filter to
//!   wakeup messages,
//! * creates/destroys the DVE, and
//! * produces heartbeats.
//!
//! It is deliberately independent of the event loop driving it: the same
//! type runs inside the discrete-event [`world`](crate::world) and inside
//! the thread-per-node live runtime.

use crate::messages::{
    ControlMessage, Heartbeat, NodeRequirements, PnaStateKind, SignedMessage, WakeupMessage,
};
use oddci_crypto::MessageAuthenticator;
use oddci_receiver::compute::UsageMode;
use oddci_receiver::dve::Dve;
use oddci_types::{DataSize, InstanceId, MessageId, NodeId, OddciError, Result, SimTime};
use rand::Rng;

/// Idle or hosting a DVE.
#[derive(Debug, Clone, PartialEq)]
pub enum PnaState {
    /// Listening for wakeup messages.
    Idle,
    /// Member of an instance, hosting its DVE.
    Busy(Dve),
}

/// What the host environment must do after the PNA handled an input.
#[derive(Debug, Clone, PartialEq)]
pub enum PnaAction {
    /// Nothing — message dropped (gate, busy, duplicate, bad signature,
    /// unmet requirements, or reset for someone else's instance).
    None,
    /// Wakeup accepted: start acquiring the image from the carousel and
    /// call [`Pna::image_ready`] when the acquisition completes.
    BeginAcquisition {
        /// Instance joined.
        instance: InstanceId,
        /// Image to fetch from the carousel.
        image: oddci_types::ImageId,
        /// Its size (determines acquisition latency).
        image_size: DataSize,
    },
    /// Reset handled: the DVE of `instance` was destroyed; the node is idle
    /// again.
    DveDestroyed {
        /// The instance that was dismantled.
        instance: InstanceId,
    },
}

/// Host facts the PNA checks wakeup requirements against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostInfo {
    /// Memory available for a DVE + image.
    pub free_memory: DataSize,
    /// Whether the box is actively rendering TV.
    pub usage: UsageMode,
}

/// Drop/accept counters, exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PnaCounters {
    /// Wakeups accepted (DVE created).
    pub accepted: u64,
    /// Wakeups dropped by the probability gate.
    pub gated: u64,
    /// Messages dropped because the PNA was busy.
    pub busy_drops: u64,
    /// Wakeups dropped because requirements were unmet.
    pub requirement_drops: u64,
    /// Messages with invalid signatures.
    pub bad_signatures: u64,
    /// Duplicate carousel passes ignored.
    pub duplicates: u64,
    /// Resets handled.
    pub resets: u64,
}

/// The agent itself.
#[derive(Debug, Clone)]
pub struct Pna {
    node: NodeId,
    auth: MessageAuthenticator,
    state: PnaState,
    /// Control-message ids already handled or consciously dropped this
    /// power cycle, for carousel-repeat deduplication.
    seen: std::collections::BTreeSet<MessageId>,
    /// Event counters.
    pub counters: PnaCounters,
}

impl Pna {
    /// Creates an idle PNA bound to `node`, trusting messages signed with
    /// `key` (the association with its Controller).
    pub fn new(node: NodeId, key: &[u8]) -> Self {
        Pna {
            node,
            auth: MessageAuthenticator::from_key(key),
            state: PnaState::Idle,
            seen: std::collections::BTreeSet::new(),
            counters: PnaCounters::default(),
        }
    }

    /// Node identity.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current state.
    pub fn state(&self) -> &PnaState {
        &self.state
    }

    /// True when listening.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, PnaState::Idle)
    }

    /// Instance this node currently belongs to.
    pub fn instance(&self) -> Option<InstanceId> {
        match &self.state {
            PnaState::Idle => None,
            PnaState::Busy(dve) => Some(dve.instance),
        }
    }

    /// Handles one control message read from the carousel.
    pub fn on_control_message<R: Rng + ?Sized>(
        &mut self,
        signed: &SignedMessage,
        host: HostInfo,
        rng: &mut R,
    ) -> PnaAction {
        if signed.verify(&self.auth).is_err() {
            self.counters.bad_signatures += 1;
            return PnaAction::None;
        }
        // Carousel repetition: each message is considered exactly once per
        // power cycle.
        if !self.seen.insert(signed.message.id()) {
            self.counters.duplicates += 1;
            return PnaAction::None;
        }

        match signed.message {
            ControlMessage::Wakeup(w) => self.on_wakeup(w, host, rng),
            ControlMessage::Reset(r) => self.on_reset(r.instance),
        }
    }

    fn on_wakeup<R: Rng + ?Sized>(
        &mut self,
        w: WakeupMessage,
        host: HostInfo,
        rng: &mut R,
    ) -> PnaAction {
        // §3.2: "if the PNA is not idle, the message is simply dropped".
        if !self.is_idle() {
            self.counters.busy_drops += 1;
            return PnaAction::None;
        }
        if !meets(&w.requirements, host) {
            self.counters.requirement_drops += 1;
            return PnaAction::None;
        }
        // The probability gate.
        if !w.probability.sample(rng) {
            self.counters.gated += 1;
            return PnaAction::None;
        }
        self.counters.accepted += 1;
        self.state = PnaState::Busy(Dve::create(w.instance, w.image, w.image_size));
        PnaAction::BeginAcquisition {
            instance: w.instance,
            image: w.image,
            image_size: w.image_size,
        }
    }

    fn on_reset(&mut self, instance: InstanceId) -> PnaAction {
        match &mut self.state {
            PnaState::Busy(dve) if dve.instance == instance => {
                dve.destroy();
                self.state = PnaState::Idle;
                self.counters.resets += 1;
                PnaAction::DveDestroyed { instance }
            }
            // Idle PNAs and members of other instances ignore resets.
            _ => PnaAction::None,
        }
    }

    /// A single-node reset delivered over the direct channel (heartbeat
    /// reply). Returns true if the DVE was destroyed.
    pub fn on_direct_reset(&mut self, instance: InstanceId) -> bool {
        matches!(self.on_reset(instance), PnaAction::DveDestroyed { .. })
    }

    /// Marks the image acquisition complete; the DVE starts running.
    pub fn image_ready(&mut self) -> Result<()> {
        match &mut self.state {
            PnaState::Busy(dve) => dve.image_loaded(),
            PnaState::Idle => Err(OddciError::InvalidState {
                operation: "image_ready",
                state: "Idle".into(),
            }),
        }
    }

    /// Records a completed task in the DVE.
    pub fn task_done(&mut self) -> Result<()> {
        match &mut self.state {
            PnaState::Busy(dve) => dve.task_done(),
            PnaState::Idle => Err(OddciError::InvalidState {
                operation: "task_done",
                state: "Idle".into(),
            }),
        }
    }

    /// The receiver was switched off: the DVE dies with it and the
    /// dedup memory clears (a fresh power cycle re-reads the carousel).
    pub fn power_off(&mut self) {
        if let PnaState::Busy(dve) = &mut self.state {
            dve.destroy();
        }
        self.state = PnaState::Idle;
        self.seen.clear();
    }

    /// Builds the periodic heartbeat (§3.2: state + instance membership).
    pub fn heartbeat(&self, now: SimTime) -> Heartbeat {
        Heartbeat {
            node: self.node,
            state: if self.is_idle() {
                PnaStateKind::Idle
            } else {
                PnaStateKind::Busy
            },
            instance: self.instance(),
            sent_at: now,
        }
    }
}

fn meets(req: &NodeRequirements, host: HostInfo) -> bool {
    if host.free_memory < req.min_memory {
        return false;
    }
    if req.standby_only && host.usage == UsageMode::InUse {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::{ImageId, Probability};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const KEY: &[u8] = b"test-controller-key";

    fn auth() -> MessageAuthenticator {
        MessageAuthenticator::from_key(KEY)
    }

    fn host() -> HostInfo {
        HostInfo {
            free_memory: DataSize::from_megabytes(128),
            usage: UsageMode::Standby,
        }
    }

    fn wakeup(id: u64, p: f64) -> SignedMessage {
        SignedMessage::sign(
            ControlMessage::Wakeup(WakeupMessage {
                id: MessageId::new(id),
                instance: InstanceId::new(1),
                image: ImageId::new(1),
                image_size: DataSize::from_megabytes(10),
                probability: Probability::new(p),
                requirements: NodeRequirements::default(),
            }),
            &auth(),
        )
    }

    fn reset(id: u64, instance: u64) -> SignedMessage {
        SignedMessage::sign(
            ControlMessage::Reset(crate::messages::ResetMessage {
                id: MessageId::new(id),
                instance: InstanceId::new(instance),
            }),
            &auth(),
        )
    }

    #[test]
    fn accepts_wakeup_and_runs_lifecycle() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        let action = pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng);
        assert!(matches!(action, PnaAction::BeginAcquisition { .. }));
        assert!(!pna.is_idle());
        pna.image_ready().unwrap();
        pna.task_done().unwrap();
        assert_eq!(pna.counters.accepted, 1);
    }

    #[test]
    fn rejects_foreign_signature() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        let rogue = MessageAuthenticator::from_key(b"rogue");
        let msg = SignedMessage::sign(
            ControlMessage::Reset(crate::messages::ResetMessage {
                id: MessageId::new(9),
                instance: InstanceId::new(1),
            }),
            &rogue,
        );
        assert_eq!(
            pna.on_control_message(&msg, host(), &mut rng),
            PnaAction::None
        );
        assert_eq!(pna.counters.bad_signatures, 1);
    }

    #[test]
    fn busy_pna_drops_wakeups() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng);
        let action = pna.on_control_message(&wakeup(2, 1.0), host(), &mut rng);
        assert_eq!(action, PnaAction::None);
        assert_eq!(pna.counters.busy_drops, 1);
    }

    #[test]
    fn duplicate_carousel_passes_are_ignored() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        // Gate p=0 drops the message...
        let w = wakeup(5, 0.0);
        assert_eq!(
            pna.on_control_message(&w, host(), &mut rng),
            PnaAction::None
        );
        assert_eq!(pna.counters.gated, 1);
        // ...and the next pass of the SAME message id is not re-sampled.
        assert_eq!(
            pna.on_control_message(&w, host(), &mut rng),
            PnaAction::None
        );
        assert_eq!(pna.counters.duplicates, 1);
        assert_eq!(pna.counters.gated, 1);
    }

    #[test]
    fn probability_gate_rate() {
        let mut accepted = 0;
        for node in 0..4000 {
            let mut pna = Pna::new(NodeId::new(node), KEY);
            let mut rng = SmallRng::seed_from_u64(node ^ 0xabcdef);
            if !matches!(
                pna.on_control_message(&wakeup(1, 0.25), host(), &mut rng),
                PnaAction::None
            ) {
                accepted += 1;
            }
        }
        // 4000 nodes at p = 0.25: expect ~1000, allow ±4 sigma (~110).
        assert!((890..1110).contains(&accepted), "accepted={accepted}");
    }

    #[test]
    fn requirements_filter() {
        let mut rng = SmallRng::seed_from_u64(1);
        let msg = SignedMessage::sign(
            ControlMessage::Wakeup(WakeupMessage {
                id: MessageId::new(1),
                instance: InstanceId::new(1),
                image: ImageId::new(1),
                image_size: DataSize::from_megabytes(10),
                probability: Probability::ALWAYS,
                requirements: NodeRequirements {
                    min_memory: DataSize::from_megabytes(64),
                    standby_only: true,
                },
            }),
            &auth(),
        );

        // Too little memory.
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let poor = HostInfo {
            free_memory: DataSize::from_megabytes(16),
            usage: UsageMode::Standby,
        };
        assert_eq!(
            pna.on_control_message(&msg, poor, &mut rng),
            PnaAction::None
        );
        assert_eq!(pna.counters.requirement_drops, 1);

        // In use when standby-only was demanded.
        let mut pna = Pna::new(NodeId::new(2), KEY);
        let watching = HostInfo {
            free_memory: DataSize::from_megabytes(128),
            usage: UsageMode::InUse,
        };
        assert_eq!(
            pna.on_control_message(&msg, watching, &mut rng),
            PnaAction::None
        );

        // Compliant.
        let mut pna = Pna::new(NodeId::new(3), KEY);
        assert!(matches!(
            pna.on_control_message(&msg, host(), &mut rng),
            PnaAction::BeginAcquisition { .. }
        ));
    }

    #[test]
    fn reset_destroys_only_matching_instance() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng);
        // Reset for a different instance: ignored.
        assert_eq!(
            pna.on_control_message(&reset(2, 99), host(), &mut rng),
            PnaAction::None
        );
        assert!(!pna.is_idle());
        // Reset for ours: DVE destroyed.
        let action = pna.on_control_message(&reset(3, 1), host(), &mut rng);
        assert_eq!(
            action,
            PnaAction::DveDestroyed {
                instance: InstanceId::new(1)
            }
        );
        assert!(pna.is_idle());
    }

    #[test]
    fn direct_reset_path() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng);
        assert!(!pna.on_direct_reset(InstanceId::new(5)));
        assert!(pna.on_direct_reset(InstanceId::new(1)));
        assert!(pna.is_idle());
    }

    #[test]
    fn power_off_clears_state_and_dedup() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng);
        pna.power_off();
        assert!(pna.is_idle());
        // The same message id is reconsidered after a power cycle.
        assert!(matches!(
            pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng),
            PnaAction::BeginAcquisition { .. }
        ));
    }

    #[test]
    fn heartbeat_reflects_state() {
        let mut pna = Pna::new(NodeId::new(7), KEY);
        let mut rng = SmallRng::seed_from_u64(1);
        let hb = pna.heartbeat(SimTime::from_secs(1));
        assert_eq!(hb.state, PnaStateKind::Idle);
        assert_eq!(hb.instance, None);
        assert_eq!(hb.node, NodeId::new(7));

        pna.on_control_message(&wakeup(1, 1.0), host(), &mut rng);
        let hb = pna.heartbeat(SimTime::from_secs(2));
        assert_eq!(hb.state, PnaStateKind::Busy);
        assert_eq!(hb.instance, Some(InstanceId::new(1)));
    }

    #[test]
    fn lifecycle_errors() {
        let mut pna = Pna::new(NodeId::new(1), KEY);
        assert!(pna.image_ready().is_err());
        assert!(pna.task_done().is_err());
    }
}
