//! The Provider (§3.1): the user-facing component that creates, manages
//! and destroys OddCI instances according to users' requests.
//!
//! Like the [`Controller`](crate::controller::Controller), the Provider is
//! pure bookkeeping over an abstract runtime: it records which job runs on
//! which instance, tracks request lifecycles, and decides *when* to
//! dismantle (when the Backend reports the job complete). The runtime
//! executes those decisions.

use oddci_types::{InstanceId, JobId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to one user request ("run this job on an instance of size N").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProviderRequest(pub u64);

/// Lifecycle of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Instance requested, job running (OddCI starts work immediately:
    /// image + config travel together through the carousel).
    Running,
    /// Job finished; instance dismantle commanded.
    Complete,
}

/// Final report for a completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Instance that ran it.
    pub instance: InstanceId,
    /// Requested instance size `N`.
    pub target_nodes: u64,
    /// Submission → last-result makespan.
    pub makespan: SimDuration,
    /// Tasks completed (equals the job's `n` on success).
    pub tasks_completed: u64,
    /// Tasks re-queued due to node churn.
    pub requeues: u64,
    /// Wakeup broadcasts the Controller needed (1 = no recomposition).
    pub wakeup_broadcasts: u32,
}

#[derive(Debug, Clone)]
struct RequestRecord {
    job: JobId,
    instance: InstanceId,
    target: u64,
    submitted_at: SimTime,
    state: RequestState,
    report: Option<JobReport>,
}

/// Serializable snapshot of one request record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestExport {
    /// Request handle.
    pub request: ProviderRequest,
    /// The job it drives.
    pub job: JobId,
    /// Instance serving it.
    pub instance: InstanceId,
    /// Requested instance size.
    pub target: u64,
    /// How long before the snapshot it was submitted.
    pub submitted_age: SimDuration,
    /// Lifecycle state.
    pub state: RequestState,
    /// Final report, if complete.
    pub report: Option<JobReport>,
}

/// Complete exported Provider state. `by_job` is derivable and rebuilt on
/// import.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderState {
    /// Every request record.
    pub requests: Vec<RequestExport>,
    /// Next request id to allocate.
    pub next: u64,
}

/// The Provider.
#[derive(Debug, Default)]
pub struct Provider {
    requests: BTreeMap<ProviderRequest, RequestRecord>,
    by_job: BTreeMap<JobId, ProviderRequest>,
    next: u64,
}

impl Provider {
    /// Creates an empty Provider.
    pub fn new() -> Self {
        Provider::default()
    }

    /// Records a new request binding `job` to `instance`.
    pub fn open_request(
        &mut self,
        job: JobId,
        instance: InstanceId,
        target: u64,
        now: SimTime,
    ) -> ProviderRequest {
        let id = ProviderRequest(self.next);
        self.next += 1;
        self.requests.insert(
            id,
            RequestRecord {
                job,
                instance,
                target,
                submitted_at: now,
                state: RequestState::Running,
                report: None,
            },
        );
        self.by_job.insert(job, id);
        id
    }

    /// The request driving `job`, if any.
    pub fn request_for_job(&self, job: JobId) -> Option<ProviderRequest> {
        self.by_job.get(&job).copied()
    }

    /// The instance serving a request.
    pub fn instance_of(&self, req: ProviderRequest) -> Option<InstanceId> {
        self.requests.get(&req).map(|r| r.instance)
    }

    /// The job of a request.
    pub fn job_of(&self, req: ProviderRequest) -> Option<JobId> {
        self.requests.get(&req).map(|r| r.job)
    }

    /// Current state of a request.
    pub fn state(&self, req: ProviderRequest) -> Option<RequestState> {
        self.requests.get(&req).map(|r| r.state)
    }

    /// Submission time of a request.
    pub fn submitted_at(&self, req: ProviderRequest) -> Option<SimTime> {
        self.requests.get(&req).map(|r| r.submitted_at)
    }

    /// Marks the request complete with its final metrics; returns the
    /// instance to dismantle.
    ///
    /// Returns `None` (and changes nothing) if the request is unknown or
    /// already complete — completion signals can race churn re-deliveries.
    pub fn complete(
        &mut self,
        req: ProviderRequest,
        now: SimTime,
        tasks_completed: u64,
        requeues: u64,
        wakeup_broadcasts: u32,
    ) -> Option<InstanceId> {
        let rec = self.requests.get_mut(&req)?;
        if rec.state == RequestState::Complete {
            return None;
        }
        rec.state = RequestState::Complete;
        rec.report = Some(JobReport {
            job: rec.job,
            instance: rec.instance,
            target_nodes: rec.target,
            makespan: now - rec.submitted_at,
            tasks_completed,
            requeues,
            wakeup_broadcasts,
        });
        Some(rec.instance)
    }

    /// The final report, once complete.
    pub fn report(&self, req: ProviderRequest) -> Option<JobReport> {
        self.requests.get(&req).and_then(|r| r.report)
    }

    /// Requests still running.
    pub fn running(&self) -> impl Iterator<Item = ProviderRequest> + '_ {
        self.requests
            .iter()
            .filter(|(_, r)| r.state == RequestState::Running)
            .map(|(&id, _)| id)
    }

    /// Exports every request record for a snapshot taken at `now`.
    pub fn export_state(&self, now: SimTime) -> ProviderState {
        ProviderState {
            requests: self
                .requests
                .iter()
                .map(|(&id, r)| RequestExport {
                    request: id,
                    job: r.job,
                    instance: r.instance,
                    target: r.target,
                    submitted_age: now.since(r.submitted_at),
                    state: r.state,
                    report: r.report,
                })
                .collect(),
            next: self.next,
        }
    }

    /// Replaces all state from an exported snapshot, rebasing submission
    /// timestamps onto `now` (the adopting headend's clock).
    pub fn import_state(&mut self, state: ProviderState, now: SimTime) {
        self.requests = state
            .requests
            .iter()
            .map(|e| {
                (
                    e.request,
                    RequestRecord {
                        job: e.job,
                        instance: e.instance,
                        target: e.target,
                        submitted_at: now.saturating_sub(e.submitted_age),
                        state: e.state,
                        report: e.report,
                    },
                )
            })
            .collect();
        self.by_job = state.requests.iter().map(|e| (e.job, e.request)).collect();
        self.next = state.next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_complete_report_cycle() {
        let mut p = Provider::new();
        let req = p.open_request(
            JobId::new(1),
            InstanceId::new(5),
            100,
            SimTime::from_secs(10),
        );
        assert_eq!(p.state(req), Some(RequestState::Running));
        assert_eq!(p.instance_of(req), Some(InstanceId::new(5)));
        assert_eq!(p.job_of(req), Some(JobId::new(1)));
        assert_eq!(p.request_for_job(JobId::new(1)), Some(req));
        assert_eq!(p.report(req), None);

        let inst = p.complete(req, SimTime::from_secs(510), 1000, 3, 2);
        assert_eq!(inst, Some(InstanceId::new(5)));
        let report = p.report(req).unwrap();
        assert_eq!(report.makespan, SimDuration::from_secs(500));
        assert_eq!(report.tasks_completed, 1000);
        assert_eq!(report.requeues, 3);
        assert_eq!(report.wakeup_broadcasts, 2);
    }

    #[test]
    fn double_completion_is_ignored() {
        let mut p = Provider::new();
        let req = p.open_request(JobId::new(1), InstanceId::new(1), 10, SimTime::ZERO);
        assert!(p.complete(req, SimTime::from_secs(1), 10, 0, 1).is_some());
        assert!(p.complete(req, SimTime::from_secs(2), 10, 0, 1).is_none());
        // Report keeps the first completion's makespan.
        assert_eq!(p.report(req).unwrap().makespan, SimDuration::from_secs(1));
    }

    #[test]
    fn unknown_request_is_none() {
        let mut p = Provider::new();
        assert!(p
            .complete(ProviderRequest(9), SimTime::ZERO, 0, 0, 0)
            .is_none());
        assert_eq!(p.state(ProviderRequest(9)), None);
    }

    #[test]
    fn running_iterator_tracks_lifecycle() {
        let mut p = Provider::new();
        let a = p.open_request(JobId::new(1), InstanceId::new(1), 10, SimTime::ZERO);
        let b = p.open_request(JobId::new(2), InstanceId::new(2), 10, SimTime::ZERO);
        let running: Vec<_> = p.running().collect();
        assert_eq!(running.len(), 2);
        p.complete(a, SimTime::from_secs(1), 10, 0, 1);
        let running: Vec<_> = p.running().collect();
        assert_eq!(running, vec![b]);
    }

    #[test]
    fn export_import_round_trips_requests() {
        let mut p = Provider::new();
        let a = p.open_request(JobId::new(1), InstanceId::new(1), 10, SimTime::from_secs(1));
        let b = p.open_request(JobId::new(2), InstanceId::new(2), 20, SimTime::from_secs(2));
        p.complete(a, SimTime::from_secs(5), 10, 0, 1);
        let now = SimTime::from_secs(6);
        let state = p.export_state(now);

        let mut adopted = Provider::new();
        adopted.import_state(state.clone(), now);
        assert_eq!(adopted.export_state(now), state);
        assert_eq!(adopted.running().collect::<Vec<_>>(), vec![b]);
        assert_eq!(adopted.report(a), p.report(a));
        assert_eq!(adopted.request_for_job(JobId::new(2)), Some(b));
        // The open request completes normally on the standby...
        assert_eq!(
            adopted.complete(b, SimTime::from_secs(9), 20, 1, 1),
            Some(InstanceId::new(2))
        );
        // ...and fresh ids continue past the imported namespace.
        let c = adopted.open_request(JobId::new(3), InstanceId::new(3), 5, SimTime::from_secs(9));
        assert!(c > b);
    }

    #[test]
    fn request_ids_are_unique() {
        let mut p = Provider::new();
        let a = p.open_request(JobId::new(1), InstanceId::new(1), 1, SimTime::ZERO);
        let b = p.open_request(JobId::new(2), InstanceId::new(2), 1, SimTime::ZERO);
        assert_ne!(a, b);
    }
}
