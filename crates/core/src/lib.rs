#![forbid(unsafe_code)]

//! The OddCI control plane — the paper's primary contribution (§3).
//!
//! Four components extend a standard broadcast network into an on-demand
//! distributed computing infrastructure:
//!
//! * the [`provider::Provider`] creates, manages and destroys
//!   OddCI instances on behalf of users;
//! * the [`controller::Controller`] formats and injects control
//!   messages (wakeup / reset, carrying the application image) into the
//!   broadcast channel, consolidates heartbeats, and keeps instances at
//!   their target size;
//! * the [`backend::Backend`] schedules tasks, serves inputs and
//!   collects results over the direct channels;
//! * the [`pna::Pna`] (Processing Node Agent) runs on every receiver,
//!   listens to the broadcast channel, probabilistically accepts wakeup
//!   messages, hosts the DVE executing the user image, and emits
//!   heartbeats.
//!
//! The [`world`] module assembles all of the above plus the substrates
//! (broadcast carousel, receivers, direct links, churn) into one
//! discrete-event simulation — the OddCI-DTV system of §4 at configurable
//! scale.
//!
//! # Example: a complete simulated OddCI-DTV run
//!
//! ```
//! use oddci_core::world::{World, WorldConfig};
//! use oddci_types::{DataSize, SimDuration};
//! use oddci_workload::JobGenerator;
//!
//! let mut cfg = WorldConfig::default();
//! cfg.nodes = 200;
//! let mut gen = JobGenerator::homogeneous(
//!     DataSize::from_megabytes(1),
//!     DataSize::from_bytes(500),
//!     DataSize::from_bytes(500),
//!     SimDuration::from_secs(30),
//!     7,
//! );
//! let job = gen.generate(400);
//!
//! let mut sim = World::simulation(cfg, 42);
//! let request = sim.submit_job(job, 100); // 100-node instance
//! let report = sim
//!     .run_request(request, oddci_types::SimTime::from_secs(24 * 3600))
//!     .expect("job ran");
//! assert_eq!(report.tasks_completed, 400);
//! ```

pub mod autoscale;
pub mod backend;
pub mod controller;
pub mod federation;
pub mod messages;
pub mod pna;
pub mod profiles;
pub mod provider;
pub mod sharded;
pub mod world;

pub use autoscale::{AutoscaleExport, AutoscalePolicy, Reconciler, ScaleDecision, ScaleInputs};
pub use backend::{Backend, TaskOutcome};
pub use controller::{Controller, ControllerPolicy, InstanceRequest, InstanceStatus};
pub use federation::{FederatedReport, Federation};
pub use messages::{
    ControlMessage, Heartbeat, NodeRequirements, PnaStateKind, ResetMessage, SignedMessage,
    WakeupMessage,
};
pub use pna::{Pna, PnaAction, PnaState};
pub use profiles::BroadcastTechnology;
pub use provider::{JobReport, Provider, ProviderRequest};
pub use sharded::{shard_of, split_target, ShardedController};
pub use world::{ChurnConfig, OddciSim, World, WorldConfig, WorldEvent, WorldMetrics};
