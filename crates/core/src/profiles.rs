//! Broadcast-technology profiles (§3.3).
//!
//! The paper names several one-to-many technologies an OddCI can ride:
//! digital TV "in their different modalities (satellite, terrestrial,
//! cable, mobile)", IPTV/WebTV multicast and mobile-phone broadcast. Each
//! modality has characteristic spare capacity β, return-channel capacity
//! δ, viewer churn and device class. A [`BroadcastTechnology`] bundles
//! defensible 2009-era calibrations of those parameters into a ready
//! [`WorldConfig`], so the same experiment can be swept across modalities
//! (the `technologies` harness does exactly that).

use crate::controller::ControllerPolicy;
use crate::world::{ChurnConfig, WorldConfig};
use oddci_receiver::compute::ComputeModel;
use oddci_types::{Bandwidth, DirectChannelConfig, DtvSystemConfig, SimDuration};
use serde::{Deserialize, Serialize};

/// A broadcast modality from §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BroadcastTechnology {
    /// Terrestrial DTV (ISDB-T/DVB-T): the paper's reference — ~1 Mbps
    /// spare, ADSL return channels, living-room boxes.
    TerrestrialDtv,
    /// Satellite DTV (DVB-S): fat transponders leave more spare capacity;
    /// return channel still terrestrial ADSL.
    SatelliteDtv,
    /// Cable DTV (DVB-C): good spare capacity and a DOCSIS return channel.
    CableDtv,
    /// IPTV multicast over managed broadband: broadcast is just another
    /// multicast group, return channel is the same broadband line.
    IptvMulticast,
    /// Mobile broadcast (DVB-H / MediaFLO class): thin pipes both ways,
    /// battery-driven churn, weaker devices.
    MobileBroadcast,
}

impl BroadcastTechnology {
    /// All modalities, reference first.
    pub const ALL: [BroadcastTechnology; 5] = [
        BroadcastTechnology::TerrestrialDtv,
        BroadcastTechnology::SatelliteDtv,
        BroadcastTechnology::CableDtv,
        BroadcastTechnology::IptvMulticast,
        BroadcastTechnology::MobileBroadcast,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BroadcastTechnology::TerrestrialDtv => "Terrestrial DTV",
            BroadcastTechnology::SatelliteDtv => "Satellite DTV",
            BroadcastTechnology::CableDtv => "Cable DTV",
            BroadcastTechnology::IptvMulticast => "IPTV multicast",
            BroadcastTechnology::MobileBroadcast => "Mobile broadcast",
        }
    }

    /// Spare broadcast capacity β.
    pub fn beta(self) -> Bandwidth {
        match self {
            BroadcastTechnology::TerrestrialDtv => Bandwidth::from_mbps(1.0),
            BroadcastTechnology::SatelliteDtv => Bandwidth::from_mbps(4.0),
            BroadcastTechnology::CableDtv => Bandwidth::from_mbps(2.0),
            BroadcastTechnology::IptvMulticast => Bandwidth::from_mbps(8.0),
            BroadcastTechnology::MobileBroadcast => Bandwidth::from_kbps(384.0),
        }
    }

    /// Return-channel capacity δ.
    pub fn delta(self) -> Bandwidth {
        match self {
            BroadcastTechnology::TerrestrialDtv => Bandwidth::from_kbps(150.0),
            BroadcastTechnology::SatelliteDtv => Bandwidth::from_kbps(150.0),
            BroadcastTechnology::CableDtv => Bandwidth::from_mbps(1.0),
            BroadcastTechnology::IptvMulticast => Bandwidth::from_mbps(2.0),
            BroadcastTechnology::MobileBroadcast => Bandwidth::from_kbps(128.0),
        }
    }

    /// Characteristic viewer churn (mean on / mean off), or `None` for
    /// always-on boxes (cable/IPTV boxes typically stay powered).
    pub fn churn(self) -> Option<ChurnConfig> {
        let mins = |on: u64, off: u64| {
            Some(ChurnConfig {
                mean_on: SimDuration::from_mins(on),
                mean_off: SimDuration::from_mins(off),
            })
        };
        match self {
            BroadcastTechnology::TerrestrialDtv => mins(180, 60),
            BroadcastTechnology::SatelliteDtv => mins(180, 60),
            BroadcastTechnology::CableDtv => None,
            BroadcastTechnology::IptvMulticast => None,
            // Phones hop networks and save battery: short sessions.
            BroadcastTechnology::MobileBroadcast => mins(30, 30),
        }
    }

    /// Compute model: TV boxes use the paper's calibration; phones of the
    /// era are slower still (~2× an STB).
    pub fn compute(self) -> ComputeModel {
        match self {
            BroadcastTechnology::MobileBroadcast => ComputeModel {
                stb_in_use_vs_pc: 41.2, // 2x the STB's 20.6
                in_use_vs_standby: 1.65,
                jitter_cv: 0.0,
            },
            _ => ComputeModel::paper(),
        }
    }

    /// Fraction of powered devices actively used (mobile screens are on
    /// when the device is awake; TV boxes are often on standby).
    pub fn in_use_fraction(self) -> f64 {
        match self {
            BroadcastTechnology::MobileBroadcast => 0.9,
            _ => 0.5,
        }
    }

    /// A ready world configuration for this modality with `audience`
    /// reachable devices.
    pub fn world_config(self, audience: u64) -> WorldConfig {
        WorldConfig {
            nodes: audience,
            dtv: DtvSystemConfig {
                beta: self.beta(),
                ..Default::default()
            },
            direct: DirectChannelConfig {
                delta: self.delta(),
                ..Default::default()
            },
            policy: ControllerPolicy::default(),
            compute: self.compute(),
            churn: self.churn(),
            in_use_fraction: self.in_use_fraction(),
            controller_tick: SimDuration::from_secs(60),
            key: format!("oddci-{}", self.label()).into_bytes(),
            trace_capacity: None,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_analytics::wakeup_mean;
    use oddci_types::DataSize;

    #[test]
    fn all_profiles_produce_valid_configs() {
        for tech in BroadcastTechnology::ALL {
            let cfg = tech.world_config(100);
            cfg.dtv.validate().unwrap();
            cfg.direct.validate().unwrap();
            assert_eq!(cfg.nodes, 100);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            BroadcastTechnology::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), BroadcastTechnology::ALL.len());
    }

    #[test]
    fn wakeup_ordering_follows_beta() {
        // Fatter broadcast pipes wake instances faster.
        let image = DataSize::from_megabytes(8);
        let w = |t: BroadcastTechnology| wakeup_mean(image, t.beta()).as_secs_f64();
        assert!(w(BroadcastTechnology::IptvMulticast) < w(BroadcastTechnology::SatelliteDtv));
        assert!(w(BroadcastTechnology::SatelliteDtv) < w(BroadcastTechnology::TerrestrialDtv));
        assert!(w(BroadcastTechnology::TerrestrialDtv) < w(BroadcastTechnology::MobileBroadcast));
    }

    #[test]
    fn mobile_is_the_weak_profile() {
        let m = BroadcastTechnology::MobileBroadcast;
        assert!(m.compute().stb_in_use_vs_pc > ComputeModel::paper().stb_in_use_vs_pc);
        assert!(m.churn().is_some());
        assert!(m.delta().bps() < BroadcastTechnology::TerrestrialDtv.delta().bps());
    }

    #[test]
    fn a_small_job_completes_on_every_technology() {
        use crate::world::World;
        use oddci_types::{SimDuration as D, SimTime};
        use oddci_workload::JobGenerator;
        for tech in BroadcastTechnology::ALL {
            let mut cfg = tech.world_config(150);
            cfg.policy.heartbeat.interval = D::from_secs(30);
            cfg.controller_tick = D::from_secs(30);
            let job = JobGenerator::homogeneous(
                DataSize::from_megabytes(1),
                DataSize::from_bytes(200),
                DataSize::from_bytes(200),
                D::from_secs(20),
                3,
            )
            .generate(100);
            let mut sim = World::simulation(cfg, 7);
            let request = sim.submit_job(job, 40);
            let report = sim
                .run_request(request, SimTime::from_secs(14 * 24 * 3600))
                .unwrap_or_else(|| panic!("{} run completes", tech.label()));
            assert_eq!(report.tasks_completed, 100, "{}", tech.label());
        }
    }
}
