//! Property tests on Controller invariants under arbitrary heartbeat
//! interleavings.

use oddci_core::controller::{Controller, ControllerOutput, ControllerPolicy, InstanceRequest};
use oddci_core::messages::{Heartbeat, NodeRequirements, PnaStateKind};
use oddci_types::{DataSize, ImageId, NodeId, SimTime};
use proptest::prelude::*;

const KEY: &[u8] = b"prop-key";

fn request(target: u64) -> InstanceRequest {
    InstanceRequest {
        image: ImageId::new(1),
        image_size: DataSize::from_megabytes(1),
        target,
        requirements: NodeRequirements::default(),
    }
}

/// A random heartbeat script: (node, busy?, at_seconds).
fn hb_script() -> impl Strategy<Value = Vec<(u64, bool, u64)>> {
    proptest::collection::vec((0u64..50, any::<bool>(), 0u64..1_000), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The member set never exceeds the target, no matter the heartbeat
    /// interleaving — excess is always trimmed with a direct reset.
    #[test]
    fn membership_never_exceeds_target(target in 1u64..20, script in hb_script()) {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (inst, _) = c.create_instance(request(target), SimTime::ZERO);
        let mut sorted = script;
        sorted.sort_by_key(|&(_, _, t)| t);
        for (node, busy, t) in sorted {
            let hb = Heartbeat {
                node: NodeId::new(node),
                state: if busy { PnaStateKind::Busy } else { PnaStateKind::Idle },
                instance: busy.then_some(inst),
                sent_at: SimTime::from_secs(t),
            };
            let outputs = c.on_heartbeat(hb, SimTime::from_secs(t));
            prop_assert!(c.instance_size(inst) <= target,
                         "size {} exceeded target {target}", c.instance_size(inst));
            // Every emitted reset targets this instance.
            for o in outputs {
                if let ControllerOutput::DirectReset { instance, .. } = o {
                    prop_assert_eq!(instance, inst);
                }
            }
        }
    }

    /// After dismantle, every busy heartbeat for the instance draws a
    /// direct reset and the member set stays empty.
    #[test]
    fn dismantled_instances_shed_all_members(script in hb_script()) {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (inst, _) = c.create_instance(request(100), SimTime::ZERO);
        c.dismantle(inst).unwrap();
        for (node, busy, t) in script {
            let hb = Heartbeat {
                node: NodeId::new(node),
                state: if busy { PnaStateKind::Busy } else { PnaStateKind::Idle },
                instance: busy.then_some(inst),
                sent_at: SimTime::from_secs(t),
            };
            let outputs = c.on_heartbeat(hb, SimTime::from_secs(t));
            prop_assert_eq!(c.instance_size(inst), 0);
            if busy {
                let reset_sent = outputs.iter().any(|o| matches!(
                    o,
                    ControllerOutput::DirectReset { node: n, instance }
                        if *n == NodeId::new(node) && *instance == inst
                ));
                prop_assert!(reset_sent, "busy straggler must be reset");
            }
        }
    }

    /// The idle-pool estimate is never larger than the number of known
    /// nodes (once any heartbeat has been seen).
    #[test]
    fn idle_pool_bounded_by_registry(script in hb_script()) {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (inst, _) = c.create_instance(request(10), SimTime::ZERO);
        let mut latest = 0;
        for (node, busy, t) in script {
            latest = latest.max(t);
            let hb = Heartbeat {
                node: NodeId::new(node),
                state: if busy { PnaStateKind::Busy } else { PnaStateKind::Idle },
                instance: busy.then_some(inst),
                sent_at: SimTime::from_secs(t),
            };
            c.on_heartbeat(hb, SimTime::from_secs(t));
        }
        let estimate = c.idle_pool_estimate(SimTime::from_secs(latest));
        prop_assert!(estimate <= c.known_nodes() as u64,
                     "estimate {estimate} > registry {}", c.known_nodes());
    }

    /// Ticks never grow an instance by themselves, never panic, and only
    /// report losses for nodes that actually went silent.
    #[test]
    fn ticks_are_safe(script in hb_script(), tick_at in 0u64..5_000) {
        let mut c = Controller::new(KEY, ControllerPolicy::default());
        let (inst, _) = c.create_instance(request(25), SimTime::ZERO);
        let mut sorted = script;
        sorted.sort_by_key(|&(_, _, t)| t);
        for (node, busy, t) in sorted {
            let hb = Heartbeat {
                node: NodeId::new(node),
                state: if busy { PnaStateKind::Busy } else { PnaStateKind::Idle },
                instance: busy.then_some(inst),
                sent_at: SimTime::from_secs(t),
            };
            c.on_heartbeat(hb, SimTime::from_secs(t));
        }
        let before = c.instance_size(inst);
        let outputs = c.tick(SimTime::from_secs(tick_at));
        prop_assert!(c.instance_size(inst) <= before);
        let deadline = c.policy().heartbeat.loss_deadline();
        for o in outputs {
            if let ControllerOutput::NodeLost { .. } = o {
                // A loss implies the tick time is past the deadline of the
                // earliest possible heartbeat (t=0).
                prop_assert!(SimTime::from_secs(tick_at) > SimTime::ZERO + deadline);
            }
        }
    }
}
