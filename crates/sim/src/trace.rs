//! Lightweight event tracing.
//!
//! A [`TraceLog`] records timestamped, human-readable milestones (instance
//! created, node joined, job finished, ...). It is bounded, cheap when
//! disabled, and renders as a timeline — the observability hook the world
//! model and the examples use.

use oddci_types::SimTime;
use std::fmt;

/// A bounded, optionally-disabled event log.
#[derive(Debug, Clone)]
pub struct TraceLog {
    entries: Vec<(SimTime, String)>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::disabled()
    }
}

impl TraceLog {
    /// A log that records up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            entries: Vec::new(),
            enabled: true,
            capacity,
            dropped: 0,
        }
    }

    /// A log that records nothing (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceLog {
            entries: Vec::new(),
            enabled: false,
            capacity: 0,
            dropped: 0,
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a milestone. The message closure is only evaluated when the
    /// log is enabled and below capacity, so hot paths can trace freely.
    pub fn record(&mut self, at: SimTime, message: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.entries.push((at, message()));
    }

    /// Recorded entries, in recording order (which is time order when the
    /// producer is a discrete-event simulation).
    pub fn entries(&self) -> &[(SimTime, String)] {
        &self.entries
    }

    /// Entries dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of entries matching a substring (for assertions).
    pub fn count_matching(&self, needle: &str) -> usize {
        self.entries
            .iter()
            .filter(|(_, m)| m.contains(needle))
            .count()
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (at, msg) in &self.entries {
            writeln!(f, "[{:>12.3}s] {}", at.as_secs_f64(), msg)?;
        }
        if self.dropped > 0 {
            writeln!(
                f,
                "... and {} more entries dropped (capacity bound)",
                self.dropped
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_up_to_capacity() {
        let mut log = TraceLog::new(2);
        log.record(SimTime::from_secs(1), || "first".into());
        log.record(SimTime::from_secs(2), || "second".into());
        log.record(SimTime::from_secs(3), || "third".into());
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.entries()[0].1, "first");
    }

    #[test]
    fn disabled_log_never_evaluates_messages() {
        let mut log = TraceLog::disabled();
        let mut evaluated = false;
        log.record(SimTime::ZERO, || {
            evaluated = true;
            "never".into()
        });
        assert!(!evaluated);
        assert!(log.entries().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn display_renders_timeline() {
        let mut log = TraceLog::new(10);
        log.record(SimTime::from_secs(5), || {
            "instance inst-000001 created".into()
        });
        let text = log.to_string();
        assert!(text.contains("5.000s"));
        assert!(text.contains("inst-000001"));
    }

    #[test]
    fn count_matching() {
        let mut log = TraceLog::new(10);
        log.record(SimTime::ZERO, || "join pna-1".into());
        log.record(SimTime::ZERO, || "join pna-2".into());
        log.record(SimTime::ZERO, || "reset".into());
        assert_eq!(log.count_matching("join"), 2);
    }
}
