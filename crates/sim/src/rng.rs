//! Deterministic randomness plumbing.
//!
//! All randomness in a simulation derives from one master `u64` seed. Each
//! component asks the [`SeedForge`] for a child seed (or ready-made
//! [`SmallRng`]) under a **label**, so adding a new random consumer never
//! perturbs the streams of existing ones — the property that keeps
//! regression traces stable as the codebase grows.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent child seeds from a master seed by label.
#[derive(Debug, Clone, Copy)]
pub struct SeedForge {
    master: u64,
}

impl SeedForge {
    /// Creates a forge for `master`.
    pub fn new(master: u64) -> Self {
        SeedForge { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the child seed for `label`.
    pub fn seed(&self, label: &str) -> u64 {
        // FNV-1a over the label, then a splitmix64 finalization mixed with
        // the master. Not cryptographic — just well-spread and stable.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        splitmix64(self.master ^ h)
    }

    /// Derives the child seed for a `(label, index)` pair — used for
    /// per-node streams (`forge.indexed_seed("pna", node.raw())`).
    pub fn indexed_seed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.seed(label) ^ splitmix64(index.wrapping_add(0x9e3779b97f4a7c15)))
    }

    /// A ready-made [`SmallRng`] for `label`.
    pub fn rng(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed(label))
    }

    /// A ready-made [`SmallRng`] for a `(label, index)` pair.
    pub fn indexed_rng(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.indexed_seed(label, index))
    }

    /// A sub-forge whose master is derived from this one — lets a subsystem
    /// hand out its own labeled streams without coordinating label names
    /// globally.
    pub fn fork(&self, label: &str) -> SeedForge {
        SeedForge {
            master: self.seed(label),
        }
    }
}

/// The splitmix64 finalizer (public-domain; Steele, Lea & Flood 2014).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Samples an exponential inter-arrival time with the given mean, in
/// seconds, from a uniform draw. Exposed as a free function so every model
/// uses the same inverse-CDF convention.
pub fn exp_sample(rng: &mut impl rand::Rng, mean_secs: f64) -> f64 {
    assert!(mean_secs > 0.0, "exponential mean must be positive");
    // Inverse CDF; `1 - u` keeps the argument strictly positive since
    // `random::<f64>()` is in [0, 1).
    let u: f64 = rng.random();
    -mean_secs * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn labels_give_distinct_streams() {
        let forge = SeedForge::new(1);
        assert_ne!(forge.seed("a"), forge.seed("b"));
        assert_ne!(forge.seed("pna"), forge.seed("controller"));
    }

    #[test]
    fn same_label_same_seed() {
        let forge = SeedForge::new(99);
        assert_eq!(forge.seed("x"), forge.seed("x"));
        assert_eq!(forge.indexed_seed("x", 5), forge.indexed_seed("x", 5));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(SeedForge::new(1).seed("a"), SeedForge::new(2).seed("a"));
    }

    #[test]
    fn indexed_seeds_are_spread() {
        let forge = SeedForge::new(7);
        let seeds: Vec<u64> = (0..1000).map(|i| forge.indexed_seed("pna", i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            seeds.len(),
            "collision among 1000 indexed seeds"
        );
    }

    #[test]
    fn fork_is_independent_of_parent_labels() {
        let forge = SeedForge::new(3);
        let sub = forge.fork("broadcast");
        assert_ne!(sub.seed("a"), forge.seed("a"));
        // Fork is deterministic.
        assert_eq!(forge.fork("broadcast").seed("a"), sub.seed("a"));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let forge = SeedForge::new(11);
        let a: Vec<u64> = (0..10)
            .map({
                let mut r = forge.rng("s");
                move |_| r.random()
            })
            .collect();
        let b: Vec<u64> = (0..10)
            .map({
                let mut r = forge.rng("s");
                move |_| r.random()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn exp_sample_mean_is_close() {
        let mut rng = SeedForge::new(5).rng("exp");
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp_sample(&mut rng, 10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn exp_sample_is_nonnegative_and_finite() {
        let mut rng = SeedForge::new(5).rng("exp2");
        for _ in 0..10_000 {
            let v = exp_sample(&mut rng, 0.001);
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_sample_rejects_zero_mean() {
        let mut rng = SeedForge::new(5).rng("exp3");
        let _ = exp_sample(&mut rng, 0.0);
    }

    #[test]
    fn splitmix_known_value() {
        // splitmix64(0) from the reference implementation.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }
}
