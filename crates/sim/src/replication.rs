//! Independent-replication experiment runner.
//!
//! Discrete-event results are point estimates; experiments report a mean
//! and confidence interval over independent replications (different seeds,
//! same configuration). Replications are embarrassingly parallel, so this
//! runner is the workspace's main consumer of data parallelism.
//!
//! (Kept dependency-light: parallelism is injected by the caller mapping
//! over [`replication_seeds`] with rayon; this module owns the statistics.)

use crate::stats::Welford;
use serde::{Deserialize, Serialize};

/// Student-t 97.5% quantiles for small sample sizes (df = n-1), indexed by
/// df starting at 1; falls back to the normal 1.96 beyond the table.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Result of aggregating replications of one scalar metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedEstimate {
    /// Number of replications.
    pub replications: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval around the mean.
    pub ci95_half_width: f64,
}

impl ReplicatedEstimate {
    /// Aggregates raw per-replication values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one replication");
        let mut w = Welford::new();
        for &s in samples {
            w.add(s);
        }
        let n = w.count();
        let hw = if n < 2 {
            f64::INFINITY
        } else {
            let df = (n - 1) as usize;
            let t = if df <= T_975.len() {
                T_975[df - 1]
            } else {
                1.96
            };
            t * w.std_dev() / (n as f64).sqrt()
        };
        ReplicatedEstimate {
            replications: n,
            mean: w.mean(),
            std_dev: w.std_dev(),
            ci95_half_width: hw,
        }
    }

    /// Relative 95% CI half-width (`hw / mean`); infinite when mean is 0.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci95_half_width / self.mean.abs()
        }
    }

    /// True when the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95_half_width
    }
}

/// The seeds for `n` independent replications of an experiment identified
/// by `base_seed` — spread via splitmix so adjacent experiments do not
/// share streams.
pub fn replication_seeds(base_seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| crate::rng::splitmix64(base_seed ^ (i.wrapping_mul(0x2545F4914F6CDD1D))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_from_constant_samples_has_zero_width() {
        let e = ReplicatedEstimate::from_samples(&[5.0; 10]);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.ci95_half_width, 0.0);
        assert!(e.contains(5.0));
        assert!(!e.contains(5.1));
    }

    #[test]
    fn single_sample_has_infinite_interval() {
        let e = ReplicatedEstimate::from_samples(&[3.0]);
        assert_eq!(e.replications, 1);
        assert!(e.ci95_half_width.is_infinite());
        assert!(e.contains(1e9));
    }

    #[test]
    fn known_small_sample_t_interval() {
        // Samples 1..=5: mean 3, sd sqrt(2.5), df=4 → t=2.776,
        // hw = 2.776 * sqrt(2.5)/sqrt(5) ≈ 1.963.
        let e = ReplicatedEstimate::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.mean - 3.0).abs() < 1e-12);
        assert!(
            (e.ci95_half_width - 1.963).abs() < 1e-3,
            "{}",
            e.ci95_half_width
        );
    }

    #[test]
    fn coverage_is_roughly_95_percent() {
        // Draw many batches from a known distribution and count how often
        // the interval covers the true mean.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(8);
        let mut covered = 0;
        let batches = 1_000;
        for _ in 0..batches {
            let samples: Vec<f64> = (0..20).map(|_| rng.random::<f64>() * 10.0).collect();
            let e = ReplicatedEstimate::from_samples(&samples);
            if e.contains(5.0) {
                covered += 1;
            }
        }
        let rate = covered as f64 / batches as f64;
        assert!((0.92..0.98).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let a = replication_seeds(42, 100);
        let b = replication_seeds(42, 100);
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 100);
        assert_ne!(replication_seeds(43, 100), a);
    }

    #[test]
    fn relative_error() {
        let e = ReplicatedEstimate::from_samples(&[9.0, 10.0, 11.0]);
        assert!(e.relative_error() > 0.0 && e.relative_error() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_samples_rejected() {
        let _ = ReplicatedEstimate::from_samples(&[]);
    }
}
