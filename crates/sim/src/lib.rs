#![forbid(unsafe_code)]

//! Deterministic discrete-event simulation engine.
//!
//! This is the substrate on which the whole OddCI-DTV emulation runs: the
//! broadcast carousel, the set-top-box population, the direct channels and
//! the control plane are all actors exchanging timestamped events through
//! the [`Simulator`] defined here.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Two runs with the same seed produce byte-identical
//!    traces. Event ordering is total: ties on the timestamp are broken by
//!    insertion sequence number, and all randomness flows from a single
//!    master seed through [`rng::SeedForge`].
//! 2. **Scale.** A million simulated PNAs must be cheap. Events are small
//!    POD values in a binary heap; actors are dense `Vec`-indexed state, not
//!    boxed objects.
//! 3. **Ergonomics.** A [`Model`] implements one `handle` method; the
//!    [`Context`] passed in can schedule follow-up events, sample
//!    randomness, and record statistics.
//!
//! # Example
//!
//! ```
//! use oddci_sim::{Context, Model, Simulator};
//! use oddci_types::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! #[derive(Debug)]
//! struct Tick;
//!
//! impl Model for Counter {
//!     type Event = Tick;
//!     fn handle(&mut self, _ev: Tick, ctx: &mut Context<'_, Tick>) {
//!         self.fired += 1;
//!         if self.fired < 5 {
//!             ctx.schedule_after(SimDuration::from_secs(1), Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Counter { fired: 0 }, 42);
//! sim.schedule_at(SimTime::ZERO, Tick);
//! sim.run();
//! assert_eq!(sim.model().fired, 5);
//! assert_eq!(sim.now(), SimTime::from_secs(4));
//! ```

pub mod churn;
pub mod queue;
pub mod replication;
pub mod rng;
pub mod stats;
pub mod trace;

pub use churn::{ChurnProcess, OnOffState};
pub use queue::EventQueue;
pub use replication::{replication_seeds, ReplicatedEstimate};
pub use rng::SeedForge;
pub use stats::{Histogram, Summary, Welford};
pub use trace::TraceLog;

use oddci_types::{SimDuration, SimTime};
use rand::rngs::SmallRng;

/// A simulation model: one type of event, one handler.
///
/// Large models (like the full OddCI world) use an event *enum* and
/// dispatch internally; this keeps the engine monomorphic and fast.
pub trait Model {
    /// The event payload type routed through the queue.
    type Event;

    /// Handles one event at the current simulation time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<'_, Self::Event>);
}

/// Everything a handler may touch besides its own state: the clock, the
/// event queue and the model's deterministic RNG.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SmallRng,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at` (must not be in the past).
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Schedules `event` after a relative delay.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// The model's deterministic random source.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Requests that the simulation stop after this handler returns,
    /// leaving any queued events unprocessed.
    #[inline]
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

/// The discrete-event simulator: an event queue, a clock and a [`Model`].
pub struct Simulator<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    rng: SmallRng,
    now: SimTime,
    processed: u64,
}

impl<M: Model> Simulator<M> {
    /// Creates a simulator over `model`, seeding all randomness from `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        Simulator {
            model,
            queue: EventQueue::new(),
            rng: SeedForge::new(seed).rng("simulator"),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an initial event (before or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Schedules an initial event after a delay from the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, event: M::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Runs until the event queue drains or a handler calls [`Context::stop`].
    /// Returns the number of events processed during this call.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains, a handler stops the run, or the next
    /// event would be strictly later than `horizon` (events *at* the horizon
    /// are processed). Returns the number of events processed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut stop = false;
        let mut processed_now = 0;
        while let Some(&at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event exists");
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop: &mut stop,
            };
            self.model.handle(event, &mut ctx);
            processed_now += 1;
            if stop {
                break;
            }
        }
        // If we stopped on the horizon with events still pending, advance
        // the clock to the horizon so repeated run_until calls are seamless.
        if !stop && self.now < horizon && horizon != SimTime::MAX {
            self.now = horizon;
        }
        self.processed += processed_now;
        processed_now
    }

    /// Processes exactly one event, if any is pending. Returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.queue.pop()?;
        self.now = at;
        let mut stop = false;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            rng: &mut self.rng,
            stop: &mut stop,
        };
        self.model.handle(event, &mut ctx);
        self.processed += 1;
        Some(at)
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed since construction.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for out-of-band inspection/injection in
    /// tests and harnesses).
    #[inline]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulator and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::SimDuration;

    /// Model that records (time, tag) pairs to verify ordering.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Context<'_, u32>) {
            self.log.push((ctx.now(), ev));
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::new(Recorder { log: vec![] }, 1);
        sim.schedule_at(SimTime::from_secs(3), 3);
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(2), 2);
        sim.run();
        let tags: Vec<u32> = sim.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new(Recorder { log: vec![] }, 1);
        for tag in 0..10 {
            sim.schedule_at(SimTime::from_secs(5), tag);
        }
        sim.run();
        let tags: Vec<u32> = sim.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_horizon_inclusive() {
        let mut sim = Simulator::new(Recorder { log: vec![] }, 1);
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(2), 2);
        sim.schedule_at(SimTime::from_secs(3), 3);
        let n = sim.run_until(SimTime::from_secs(2));
        assert_eq!(n, 2);
        assert_eq!(sim.pending_events(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        // Continue seamlessly.
        sim.run();
        assert_eq!(sim.model().log.len(), 3);
    }

    #[test]
    fn run_until_advances_clock_to_horizon_when_idle() {
        let mut sim = Simulator::new(Recorder { log: vec![] }, 1);
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    struct Stopper {
        handled: u32,
    }
    impl Model for Stopper {
        type Event = ();
        fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
            self.handled += 1;
            if self.handled == 2 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn stop_halts_mid_queue() {
        let mut sim = Simulator::new(Stopper { handled: 0 }, 1);
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(i), ());
        }
        sim.run();
        assert_eq!(sim.model().handled, 2);
        assert_eq!(sim.pending_events(), 3);
    }

    struct Chainer {
        hops: u32,
    }
    impl Model for Chainer {
        type Event = ();
        fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
            self.hops += 1;
            if self.hops < 100 {
                ctx.schedule_after(SimDuration::from_millis(10), ());
            }
        }
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut sim = Simulator::new(Chainer { hops: 0 }, 1);
        sim.schedule_at(SimTime::ZERO, ());
        let n = sim.run();
        assert_eq!(n, 100);
        assert_eq!(sim.now(), SimTime::from_micros(99 * 10_000));
    }

    struct RngUser {
        draws: Vec<u64>,
    }
    impl Model for RngUser {
        type Event = ();
        fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
            use rand::Rng;
            let v = ctx.rng().random::<u64>();
            self.draws.push(v);
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Simulator::new(RngUser { draws: vec![] }, seed);
            for i in 0..50 {
                sim.schedule_at(SimTime::from_secs(i), ());
            }
            sim.run();
            sim.into_model().draws
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn step_processes_single_events() {
        let mut sim = Simulator::new(Recorder { log: vec![] }, 1);
        sim.schedule_at(SimTime::from_secs(1), 10);
        sim.schedule_at(SimTime::from_secs(2), 20);
        assert_eq!(sim.step(), Some(SimTime::from_secs(1)));
        assert_eq!(sim.model().log.len(), 1);
        assert_eq!(sim.step(), Some(SimTime::from_secs(2)));
        assert_eq!(sim.step(), None);
        assert_eq!(sim.events_processed(), 2);
    }
}
