//! The pending-event set: a binary heap keyed on (time, sequence).
//!
//! The sequence number makes the ordering **total** — two events scheduled
//! for the same instant pop in the order they were pushed — which is what
//! makes whole-simulation determinism possible.

use oddci_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<&SimTime> {
        self.heap.peek().map(|e| &e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the sequence counter keeps advancing so
    /// ordering stays total across clears).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 2);
        q.push(SimTime::from_secs(4), 4);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(&SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_but_preserves_sequencing() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(1), 2);
        q.push(SimTime::from_secs(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn large_volume_stays_sorted() {
        // Pseudo-random insertion order, verify monotone pop times.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push(SimTime::from_micros(x % 1_000_000), x);
        }
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
        }
    }
}
