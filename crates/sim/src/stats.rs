//! Online statistics used by every experiment harness.
//!
//! [`Welford`] accumulates count/mean/variance/min/max in O(1) memory;
//! [`Histogram`] buckets samples on a log scale for latency-style data;
//! [`Summary`] is the serializable snapshot both produce.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance, plus min/max.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. parallel merge).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Serializable snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// A point-in-time statistical summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

/// Log₂-bucketed histogram for positive samples spanning many decades
/// (latencies from microseconds to hours).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)` relative to `unit`;
    /// bucket 0 holds samples below `unit`.
    buckets: Vec<u64>,
    unit: f64,
    stats: Welford,
}

impl Histogram {
    /// Creates a histogram whose first bucket boundary is `unit` (samples
    /// are measured in multiples of it).
    pub fn new(unit: f64) -> Self {
        assert!(unit > 0.0, "histogram unit must be positive");
        Histogram {
            buckets: vec![0; 64],
            unit,
            stats: Welford::new(),
        }
    }

    /// Adds one (non-negative) sample.
    pub fn add(&mut self, x: f64) {
        assert!(
            x >= 0.0 && x.is_finite(),
            "histogram samples must be finite and >= 0"
        );
        self.stats.add(x);
        let ratio = x / self.unit;
        let idx = if ratio < 1.0 {
            0
        } else {
            (ratio.log2().floor() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Approximate p-quantile (`q` in `[0,1]`) from the bucket boundaries.
    /// Returns the upper edge of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Upper edge of bucket i: unit * 2^i (bucket 0 edge = unit).
                return Some(self.unit * 2f64.powi(i as i32));
            }
        }
        None
    }

    /// Underlying moment statistics.
    pub fn stats(&self) -> &Welford {
        &self.stats
    }

    /// Non-empty `(lower_edge, upper_edge, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let hi = self.unit * 2f64.powi(i as i32);
                let lo = if i == 0 {
                    0.0
                } else {
                    self.unit * 2f64.powi(i as i32 - 1)
                };
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_sane() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.add(1.0);
        w.add(3.0);
        let before = w.summary();
        w.merge(&Welford::new());
        assert_eq!(w.summary(), before);

        let mut empty = Welford::new();
        empty.merge(&w);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(1.0);
        for x in [0.5, 1.5, 3.0, 3.5, 100.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 5);
        // Median should land in the [2,4) bucket -> upper edge 4.
        assert_eq!(h.quantile(0.5), Some(4.0));
        // Everything is below the p100 edge.
        assert!(h.quantile(1.0).unwrap() >= 100.0);
        assert_eq!(h.quantile(0.0), Some(1.0)); // first sample's bucket edge
    }

    #[test]
    fn histogram_nonzero_buckets() {
        let mut h = Histogram::new(1.0);
        h.add(0.1);
        h.add(5.0);
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 2);
        assert_eq!(nz[0].2, 1);
        assert_eq!(nz[0].0, 0.0);
        // 5.0 falls in [4, 8).
        assert_eq!(nz[1], (4.0, 8.0, 1));
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new(1.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn histogram_rejects_nan() {
        let mut h = Histogram::new(1.0);
        h.add(f64::NAN);
    }
}
