//! Viewer churn: receivers switch on and off at their owners' will (§3.2:
//! *"a PNA can generally be switched off at the will of its owner"*).
//!
//! Each node follows an independent alternating-renewal (on/off) process
//! with exponentially distributed sojourn times. The Controller never sees
//! this directly — it only observes missed heartbeats — but the simulation
//! uses it to drive node availability.

use crate::rng::exp_sample;
use oddci_types::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Whether a receiver is currently powered on (tuned) or off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnOffState {
    /// Powered and tuned to the OddCI channel.
    On,
    /// Switched off (or tuned away); unreachable by broadcast and direct
    /// channels.
    Off,
}

impl OnOffState {
    /// The opposite state.
    pub fn toggled(self) -> OnOffState {
        match self {
            OnOffState::On => OnOffState::Off,
            OnOffState::Off => OnOffState::On,
        }
    }
}

/// An exponential on/off churn process for one node.
///
/// `mean_on` / `mean_off` are the expected sojourn times; the long-run
/// availability is `mean_on / (mean_on + mean_off)`.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    mean_on: f64,
    mean_off: f64,
    state: OnOffState,
    next_toggle: SimTime,
    rng: SmallRng,
}

impl ChurnProcess {
    /// Creates a process starting in `initial` at time zero.
    ///
    /// A `mean_on` of `f64::INFINITY` models a node that never leaves once
    /// on (and symmetrically for `mean_off`).
    pub fn new(
        mean_on: SimDuration,
        mean_off: SimDuration,
        initial: OnOffState,
        seed: u64,
    ) -> Self {
        let mean_on = mean_on.as_secs_f64();
        let mean_off = mean_off.as_secs_f64();
        assert!(
            mean_on > 0.0 && mean_off > 0.0,
            "sojourn means must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let first_sojourn = match initial {
            OnOffState::On => exp_sample(&mut rng, mean_on),
            OnOffState::Off => exp_sample(&mut rng, mean_off),
        };
        ChurnProcess {
            mean_on,
            mean_off,
            state: initial,
            next_toggle: SimTime::from_secs_f64(first_sojourn),
            rng,
        }
    }

    /// A process that never churns (always on). Useful for baseline runs.
    pub fn always_on(seed: u64) -> Self {
        ChurnProcess {
            mean_on: f64::INFINITY,
            mean_off: 1.0,
            state: OnOffState::On,
            next_toggle: SimTime::MAX,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current state.
    pub fn state(&self) -> OnOffState {
        self.state
    }

    /// When the next on↔off transition fires.
    pub fn next_toggle(&self) -> SimTime {
        self.next_toggle
    }

    /// Long-run fraction of time spent On.
    pub fn availability(&self) -> f64 {
        if self.mean_on.is_infinite() {
            1.0
        } else {
            self.mean_on / (self.mean_on + self.mean_off)
        }
    }

    /// Performs the transition scheduled at [`next_toggle`](Self::next_toggle)
    /// and draws the following sojourn. Returns the new state.
    ///
    /// The caller (the simulation model) is responsible for invoking this
    /// exactly when the toggle event fires.
    pub fn toggle(&mut self) -> OnOffState {
        self.state = self.state.toggled();
        let mean = match self.state {
            OnOffState::On => self.mean_on,
            OnOffState::Off => self.mean_off,
        };
        if mean.is_infinite() {
            // Absorbing state: no further transitions.
            self.next_toggle = SimTime::MAX;
            return self.state;
        }
        let sojourn = exp_sample(&mut self.rng, mean);
        self.next_toggle = self
            .next_toggle
            .checked_add(SimDuration::from_secs_f64(sojourn))
            .unwrap_or(SimTime::MAX);
        self.state
    }

    /// Draws a fresh Bernoulli initial state with the long-run availability,
    /// so a population starts in steady state rather than all-on.
    pub fn steady_state_init(
        mean_on: SimDuration,
        mean_off: SimDuration,
        seed: u64,
    ) -> ChurnProcess {
        let avail = mean_on.as_secs_f64() / (mean_on.as_secs_f64() + mean_off.as_secs_f64());
        let mut boot = SmallRng::seed_from_u64(seed ^ 0xc0ffee);
        let initial = if boot.random::<f64>() < avail {
            OnOffState::On
        } else {
            OnOffState::Off
        };
        ChurnProcess::new(mean_on, mean_off, initial, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling_alternates() {
        let mut p = ChurnProcess::new(
            SimDuration::from_secs(100),
            SimDuration::from_secs(50),
            OnOffState::On,
            1,
        );
        assert_eq!(p.state(), OnOffState::On);
        assert_eq!(p.toggle(), OnOffState::Off);
        assert_eq!(p.toggle(), OnOffState::On);
    }

    #[test]
    fn toggle_times_increase() {
        let mut p = ChurnProcess::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            OnOffState::On,
            2,
        );
        let mut prev = SimTime::ZERO;
        for _ in 0..100 {
            let t = p.next_toggle();
            assert!(t > prev, "toggle times must be strictly increasing");
            prev = t;
            p.toggle();
        }
    }

    #[test]
    fn availability_formula() {
        let p = ChurnProcess::new(
            SimDuration::from_secs(300),
            SimDuration::from_secs(100),
            OnOffState::On,
            3,
        );
        assert!((p.availability() - 0.75).abs() < 1e-12);
        assert_eq!(ChurnProcess::always_on(1).availability(), 1.0);
    }

    #[test]
    fn always_on_never_toggles() {
        let p = ChurnProcess::always_on(4);
        assert_eq!(p.next_toggle(), SimTime::MAX);
        assert_eq!(p.state(), OnOffState::On);
    }

    #[test]
    fn long_run_fraction_matches_availability() {
        // Simulate one process for a long horizon and measure time On.
        let mean_on = SimDuration::from_secs(120);
        let mean_off = SimDuration::from_secs(60);
        let mut p = ChurnProcess::new(mean_on, mean_off, OnOffState::On, 5);
        let horizon = SimTime::from_secs(4_000_000);
        let mut t = SimTime::ZERO;
        let mut on_time = SimDuration::ZERO;
        while p.next_toggle() < horizon {
            let next = p.next_toggle();
            if p.state() == OnOffState::On {
                on_time += next - t;
            }
            t = next;
            p.toggle();
        }
        if p.state() == OnOffState::On {
            on_time += horizon - t;
        }
        let frac = on_time.as_secs_f64() / horizon.as_secs_f64();
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn steady_state_init_mixes_states() {
        let on_count = (0..1000)
            .filter(|&i| {
                ChurnProcess::steady_state_init(
                    SimDuration::from_secs(100),
                    SimDuration::from_secs(100),
                    i,
                )
                .state()
                    == OnOffState::On
            })
            .count();
        // 50% availability: expect roughly half.
        assert!((400..600).contains(&on_count), "on_count={on_count}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = ChurnProcess::new(
                SimDuration::from_secs(10),
                SimDuration::from_secs(10),
                OnOffState::On,
                seed,
            );
            (0..20)
                .map(|_| {
                    p.toggle();
                    p.next_toggle().as_micros()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        let _ = ChurnProcess::new(
            SimDuration::ZERO,
            SimDuration::from_secs(1),
            OnOffState::On,
            1,
        );
    }
}
