#![forbid(unsafe_code)]

//! Deterministic, seed-driven fault injection for the OddCI stack.
//!
//! A declarative [`FaultPlan`] lists *which* fault ([`FaultClass`]), *when*
//! (an optional activity window), *how often* (a per-opportunity rate or a
//! burst-episode rate) and *how hard* (a class-specific magnitude). The plan
//! compiles into a [`FaultInjector`] whose every decision is a **pure
//! function** of `(master seed, fault class, node, instant)` — no mutable
//! state, no RNG stream to perturb. Two consequences the rest of the stack
//! relies on:
//!
//! * **Determinism:** the same seed and plan yield bit-identical injection
//!   decisions, so a faulted simulation replays exactly (tested by the
//!   workspace's property suite).
//! * **Order independence:** adding a query site (or reordering event
//!   handling) never shifts decisions made elsewhere, because there is no
//!   shared stream to advance.
//!
//! Two decision shapes cover all fault classes:
//!
//! * **Per-opportunity rolls** (`CarouselCorruption`, `HeartbeatDrop`, …):
//!   each opportunity (a completed carousel read, a heartbeat send) is
//!   independently faulted with probability `rate`.
//! * **Episodes** (`DirectLoss`, `Partition`, `BackendStall`, …): time is
//!   cut into windows of `magnitude` length per `(class, node)`, and each
//!   window is *entirely* faulty with probability `rate`. This yields the
//!   bursty losses and stalls real networks produce, still statelessly.
//!
//! The crate also ships the control-plane hardening primitives the fault
//! classes make necessary: [`Backoff`] (bounded retries, exponential delay,
//! deterministic jitter) and [`FaultCounters`] (per-class accounting that
//! the world metrics surface).
//!
//! # Example
//!
//! ```
//! use oddci_faults::{FaultClass, FaultInjector, FaultPlan, FaultSpec};
//! use oddci_types::{NodeId, SimTime};
//!
//! let plan = FaultPlan::none().with(FaultSpec::new(FaultClass::HeartbeatDrop, 0.5));
//! let injector = FaultInjector::new(plan, 42);
//!
//! // Every decision is a pure function of (seed, class, node, instant):
//! let now = SimTime::from_secs(10);
//! let first = injector.heartbeat_dropped(NodeId::new(3), now);
//! assert_eq!(first, injector.heartbeat_dropped(NodeId::new(3), now));
//! ```

use oddci_types::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Fault classes
// ---------------------------------------------------------------------

/// Everything the injector knows how to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// A completed carousel module read fails its digest check; the
    /// receiver must re-read the file on a later cycle.
    CarouselCorruption,
    /// A carousel read ends early (signal glitch); same recovery as
    /// corruption but counted separately.
    CarouselTruncation,
    /// Direct-channel messages vanish in bursts of `magnitude` seconds.
    DirectLoss,
    /// Direct-channel transfers take `magnitude`× their nominal time
    /// during spike episodes.
    LatencySpike,
    /// A node's direct channel is fully cut (both directions, heartbeats
    /// included) for episodes of `magnitude` seconds.
    Partition,
    /// Individual heartbeats are silently dropped.
    HeartbeatDrop,
    /// Carousel control deliveries reach the PNA `magnitude` seconds late.
    ControlDelay,
    /// The PNA process crashes and restarts after `magnitude` seconds,
    /// losing its DVE and any task in flight.
    PnaCrash,
    /// The Backend stops answering task fetches for episodes of
    /// `magnitude` seconds; nodes must retry with backoff.
    BackendStall,
    /// A wire frame is corrupted in flight (one bit flipped); the
    /// receiving envelope layer must reject it on its checksum.
    FrameCorrupt,
    /// A wire frame is cut short on the wire; the receiving decoder must
    /// resynchronize on the next frame boundary.
    FrameTruncate,
    /// Wire frames of one send are duplicated / reordered; the
    /// reassembler must still deliver each message exactly once.
    FrameReorder,
    /// The headend process is killed outright (no shutdown handshake);
    /// the `oddci failover` scenario uses the roll to time the SIGKILL,
    /// after which a standby must adopt the last snapshot.
    HeadendCrash,
    /// The broadcaster reclaims the channel mid-job (spot-style): every
    /// member of the running instance is evicted at once, their in-flight
    /// tasks requeued, and the autoscale reconciler must re-request
    /// replacement capacity.
    AirtimeRevoked,
}

impl FaultClass {
    /// All classes, in declaration order.
    pub const ALL: [FaultClass; 14] = [
        FaultClass::CarouselCorruption,
        FaultClass::CarouselTruncation,
        FaultClass::DirectLoss,
        FaultClass::LatencySpike,
        FaultClass::Partition,
        FaultClass::HeartbeatDrop,
        FaultClass::ControlDelay,
        FaultClass::PnaCrash,
        FaultClass::BackendStall,
        FaultClass::FrameCorrupt,
        FaultClass::FrameTruncate,
        FaultClass::FrameReorder,
        FaultClass::HeadendCrash,
        FaultClass::AirtimeRevoked,
    ];

    /// Stable kebab-case name (CLI syntax and seed derivation).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::CarouselCorruption => "carousel-corruption",
            FaultClass::CarouselTruncation => "carousel-truncation",
            FaultClass::DirectLoss => "direct-loss",
            FaultClass::LatencySpike => "latency-spike",
            FaultClass::Partition => "partition",
            FaultClass::HeartbeatDrop => "heartbeat-drop",
            FaultClass::ControlDelay => "control-delay",
            FaultClass::PnaCrash => "pna-crash",
            FaultClass::BackendStall => "backend-stall",
            FaultClass::FrameCorrupt => "frame-corrupt",
            FaultClass::FrameTruncate => "frame-truncate",
            FaultClass::FrameReorder => "frame-reorder",
            FaultClass::HeadendCrash => "headend-crash",
            FaultClass::AirtimeRevoked => "airtime-revoked",
        }
    }

    /// Parses a [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.label() == s)
    }

    /// Default magnitude when a spec does not override it: seconds for
    /// durations, a multiplier for [`LatencySpike`](FaultClass::LatencySpike).
    pub fn default_magnitude(self) -> f64 {
        match self {
            FaultClass::CarouselCorruption | FaultClass::CarouselTruncation => 0.0,
            FaultClass::DirectLoss => 20.0,
            FaultClass::LatencySpike => 8.0,
            FaultClass::Partition => 120.0,
            FaultClass::HeartbeatDrop => 0.0,
            FaultClass::ControlDelay => 30.0,
            FaultClass::PnaCrash => 60.0,
            FaultClass::BackendStall => 45.0,
            FaultClass::FrameCorrupt | FaultClass::FrameTruncate | FaultClass::FrameReorder => 0.0,
            FaultClass::HeadendCrash => 0.0,
            FaultClass::AirtimeRevoked => 0.0,
        }
    }

    /// Whether the class is decided per *episode* (time window) rather
    /// than per opportunity.
    fn episodic(self) -> bool {
        matches!(
            self,
            FaultClass::DirectLoss
                | FaultClass::LatencySpike
                | FaultClass::Partition
                | FaultClass::BackendStall
        )
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------

/// One injected fault: class, rate, magnitude and optional activity window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What to break.
    pub class: FaultClass,
    /// Probability per opportunity (point faults) or per episode window
    /// (episodic faults), in `[0, 1]`.
    pub rate: f64,
    /// Class-specific intensity: episode/outage length in seconds, delay
    /// in seconds, or the latency multiplier.
    pub magnitude: f64,
    /// Inject only within `[from, until)`; `None` means always active.
    pub window: Option<(SimTime, SimTime)>,
}

impl FaultSpec {
    /// A spec with the class's default magnitude and no window.
    pub fn new(class: FaultClass, rate: f64) -> FaultSpec {
        FaultSpec {
            class,
            rate,
            magnitude: class.default_magnitude(),
            window: None,
        }
    }

    /// Overrides the magnitude.
    pub fn magnitude(mut self, magnitude: f64) -> FaultSpec {
        self.magnitude = magnitude;
        self
    }

    /// Restricts injection to `[from, until)`.
    pub fn window(mut self, from: SimTime, until: SimTime) -> FaultSpec {
        self.window = Some((from, until));
        self
    }

    fn active_at(&self, now: SimTime) -> bool {
        match self.window {
            None => true,
            Some((from, until)) => now >= from && now < until,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.rate) || !self.rate.is_finite() {
            return Err(format!("{}: rate {} outside [0, 1]", self.class, self.rate));
        }
        if !self.magnitude.is_finite() || self.magnitude < 0.0 {
            return Err(format!(
                "{}: magnitude {} invalid",
                self.class, self.magnitude
            ));
        }
        if self.class.episodic() && self.rate > 0.0 && self.magnitude <= 0.0 {
            return Err(format!(
                "{}: episodic fault needs a positive magnitude",
                self.class
            ));
        }
        if let Some((from, until)) = self.window {
            if from >= until {
                return Err(format!("{}: empty window {from}..{until}", self.class));
            }
        }
        Ok(())
    }
}

/// The declarative list of faults to inject into a run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected faults. Multiple specs of the same class compose
    /// (first active spec wins per query).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: nothing is injected.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// True when no spec can ever fire.
    pub fn is_empty(&self) -> bool {
        self.specs.iter().all(|s| s.rate <= 0.0)
    }

    /// A copy with every rate multiplied by `factor` (clamped to 1) —
    /// the intensity knob the X7 sweep turns.
    pub fn scaled(&self, factor: f64) -> FaultPlan {
        FaultPlan {
            specs: self
                .specs
                .iter()
                .map(|s| FaultSpec {
                    rate: (s.rate * factor).clamp(0.0, 1.0),
                    ..s.clone()
                })
                .collect(),
        }
    }

    /// Checks every spec; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for spec in &self.specs {
            spec.validate()?;
        }
        Ok(())
    }

    /// Parses the CLI syntax: a comma-separated list of
    /// `class=rate[:magnitude][@start..end]`, e.g.
    /// `heartbeat-drop=0.2,pna-crash=0.01:90,partition=0.05@600..1800`.
    /// The optional `@start..end` suffix limits the fault to an activity
    /// window given in seconds of run time.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}`: expected class=rate[:magnitude][@start..end]"))?;
            let class = FaultClass::from_label(name.trim())
                .ok_or_else(|| format!("unknown fault class `{}`", name.trim()))?;
            let (value, window) = match value.split_once('@') {
                Some((v, w)) => (v, Some(w)),
                None => (value, None),
            };
            let (rate_s, mag) = match value.split_once(':') {
                Some((r, m)) => (r, Some(m)),
                None => (value, None),
            };
            let rate: f64 = rate_s
                .trim()
                .parse()
                .map_err(|_| format!("{class}: `{rate_s}` is not a rate"))?;
            let mut spec = FaultSpec::new(class, rate);
            if let Some(m) = mag {
                let magnitude: f64 = m
                    .trim()
                    .parse()
                    .map_err(|_| format!("{class}: `{m}` is not a magnitude"))?;
                spec = spec.magnitude(magnitude);
            }
            if let Some(w) = window {
                let (from_s, until_s) = w
                    .split_once("..")
                    .ok_or_else(|| format!("{class}: `@{w}` is not a start..end window"))?;
                let from: f64 = from_s
                    .trim()
                    .parse()
                    .map_err(|_| format!("{class}: `{from_s}` is not a window start (seconds)"))?;
                let until: f64 = until_s
                    .trim()
                    .parse()
                    .map_err(|_| format!("{class}: `{until_s}` is not a window end (seconds)"))?;
                if from < 0.0 || until < 0.0 {
                    return Err(format!("{class}: window bounds must be non-negative"));
                }
                spec = spec.window(
                    SimTime::from_micros((from * 1e6) as u64),
                    SimTime::from_micros((until * 1e6) as u64),
                );
            }
            plan.specs.push(spec);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// A moderate-intensity plan exercising several classes at once — the
    /// default scenario of the `oddci chaos` command and the X7 sweep.
    pub fn standard_mix() -> FaultPlan {
        FaultPlan::none()
            .with(FaultSpec::new(FaultClass::CarouselCorruption, 0.10))
            .with(FaultSpec::new(FaultClass::DirectLoss, 0.05).magnitude(20.0))
            .with(FaultSpec::new(FaultClass::HeartbeatDrop, 0.10))
            .with(FaultSpec::new(FaultClass::PnaCrash, 0.005).magnitude(60.0))
            .with(FaultSpec::new(FaultClass::BackendStall, 0.02).magnitude(45.0))
    }
}

// ---------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------

/// FNV-1a over the label, mixed with splitmix64 — the same construction
/// [`oddci_sim::SeedForge`] uses, applied to pure per-query inputs.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn fnv1a(seed: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sentinel node for global (node-independent) faults like
/// [`FaultClass::BackendStall`].
const GLOBAL: u64 = u64::MAX;

/// The compiled plan: answers "does fault X hit node N at instant T?"
/// with pure, replayable decisions.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-class derived seeds, parallel to [`FaultClass::ALL`].
    class_seeds: [u64; 14],
}

impl FaultInjector {
    /// Compiles `plan` under `seed` (derive it from the world's
    /// [`SeedForge`](oddci_sim::SeedForge) so plans don't perturb other
    /// streams).
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        plan.validate().expect("valid fault plan");
        let mut class_seeds = [0u64; 14];
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            class_seeds[i] = mix(fnv1a(seed, class.label()));
        }
        FaultInjector { plan, class_seeds }
    }

    /// An injector that never fires (cheap: empty plan short-circuits).
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    /// The plan this injector was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when no fault can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.plan.is_empty()
    }

    fn class_seed(&self, class: FaultClass) -> u64 {
        let idx = FaultClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("known class");
        self.class_seeds[idx]
    }

    /// Uniform `[0, 1)` from the pure inputs.
    fn unit(&self, class: FaultClass, node: u64, nonce: u64) -> f64 {
        let h = mix(self.class_seed(class) ^ node.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ nonce);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// First active spec of `class` at `now`.
    fn spec(&self, class: FaultClass, now: SimTime) -> Option<&FaultSpec> {
        self.plan
            .specs
            .iter()
            .find(|s| s.class == class && s.rate > 0.0 && s.active_at(now))
    }

    /// Per-opportunity roll: fault with probability `rate`, independently
    /// per `(node, instant)`.
    fn roll(&self, class: FaultClass, node: u64, now: SimTime) -> Option<&FaultSpec> {
        let spec = self.spec(class, now)?;
        (self.unit(class, node, now.as_micros()) < spec.rate).then_some(spec)
    }

    /// Episode decision: the window of `magnitude` seconds containing
    /// `now` is faulty (for this node) with probability `rate`.
    fn episode(&self, class: FaultClass, node: u64, now: SimTime) -> Option<&FaultSpec> {
        let spec = self.spec(class, now)?;
        let len = SimDuration::from_secs_f64(spec.magnitude)
            .as_micros()
            .max(1);
        let bucket = now.as_micros() / len;
        (self.unit(class, node, bucket) < spec.rate).then_some(spec)
    }

    // --- query API, one entry point per hook site -------------------

    /// A carousel module read completing at `now`: corrupted or truncated?
    pub fn carousel_fault(&self, node: NodeId, now: SimTime) -> Option<FaultClass> {
        if self
            .roll(FaultClass::CarouselCorruption, node.raw(), now)
            .is_some()
        {
            return Some(FaultClass::CarouselCorruption);
        }
        if self
            .roll(FaultClass::CarouselTruncation, node.raw(), now)
            .is_some()
        {
            return Some(FaultClass::CarouselTruncation);
        }
        None
    }

    /// Is `node`'s direct channel fully cut at `now`?
    pub fn partitioned(&self, node: NodeId, now: SimTime) -> bool {
        self.episode(FaultClass::Partition, node.raw(), now)
            .is_some()
    }

    /// Does a direct-channel message from/to `node` vanish at `now`?
    /// (Loss burst or partition.)
    pub fn direct_dropped(&self, node: NodeId, now: SimTime) -> bool {
        self.episode(FaultClass::DirectLoss, node.raw(), now)
            .is_some()
            || self.partitioned(node, now)
    }

    /// Latency multiplier for `node`'s transfers at `now` (1.0 = nominal).
    pub fn latency_multiplier(&self, node: NodeId, now: SimTime) -> f64 {
        match self.episode(FaultClass::LatencySpike, node.raw(), now) {
            Some(spec) => spec.magnitude.max(1.0),
            None => 1.0,
        }
    }

    /// Is the heartbeat `node` sends at `now` lost? (Individual drop or
    /// partition.)
    pub fn heartbeat_dropped(&self, node: NodeId, now: SimTime) -> bool {
        self.roll(FaultClass::HeartbeatDrop, node.raw(), now)
            .is_some()
            || self.partitioned(node, now)
    }

    /// Extra delay before the control message delivered to `node` at
    /// `now` actually reaches its PNA.
    pub fn control_delay(&self, node: NodeId, now: SimTime) -> Option<SimDuration> {
        self.roll(FaultClass::ControlDelay, node.raw(), now)
            .map(|s| SimDuration::from_secs_f64(s.magnitude))
    }

    /// Does `node`'s PNA crash at this opportunity? Returns the downtime
    /// before it restarts.
    pub fn pna_crash(&self, node: NodeId, now: SimTime) -> Option<SimDuration> {
        self.roll(FaultClass::PnaCrash, node.raw(), now)
            .map(|s| SimDuration::from_secs_f64(s.magnitude))
    }

    /// Is the Backend inside a stall episode at `now`? Returns the episode
    /// length (callers retry with backoff; re-rolling later re-queries).
    pub fn backend_stalled(&self, now: SimTime) -> Option<SimDuration> {
        self.episode(FaultClass::BackendStall, GLOBAL, now)
            .map(|s| SimDuration::from_secs_f64(s.magnitude))
    }

    /// Is the wire frame `node` puts on the socket at `now` corrupted in
    /// flight (a flipped bit the receiver's checksum must catch)?
    pub fn frame_corrupted(&self, node: NodeId, now: SimTime) -> bool {
        self.roll(FaultClass::FrameCorrupt, node.raw(), now)
            .is_some()
    }

    /// Is the wire frame `node` puts on the socket at `now` cut short
    /// (the receiver's decoder must resynchronize)?
    pub fn frame_truncated(&self, node: NodeId, now: SimTime) -> bool {
        self.roll(FaultClass::FrameTruncate, node.raw(), now)
            .is_some()
    }

    /// Are the frames of the send `node` performs at `now` duplicated /
    /// reordered on the wire?
    pub fn frame_reordered(&self, node: NodeId, now: SimTime) -> bool {
        self.roll(FaultClass::FrameReorder, node.raw(), now)
            .is_some()
    }

    /// Does the headend crash at this opportunity? Global (node-free) roll;
    /// the `oddci failover` scenario polls it each tick and SIGKILLs the
    /// primary on the first hit.
    pub fn headend_crashed(&self, now: SimTime) -> bool {
        self.roll(FaultClass::HeadendCrash, GLOBAL, now).is_some()
    }

    /// Does the broadcaster reclaim the channel at this opportunity?
    /// Global (node-free) roll: when it fires, the *whole* instance loses
    /// its membership at once — the spot-reclamation event the autoscale
    /// reconciler absorbs by re-requesting capacity.
    pub fn airtime_revoked(&self, now: SimTime) -> bool {
        self.roll(FaultClass::AirtimeRevoked, GLOBAL, now).is_some()
    }
}

// ---------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------

/// Bounded exponential backoff with deterministic jitter, shared by the
/// simulated world ([`SimDuration`] delays) and the live runtime
/// ([`std::time::Duration`] via [`Backoff::delay_std`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    /// First retry delay, microseconds.
    pub base_micros: u64,
    /// Multiplier between attempts (integer; 2 doubles each retry).
    pub factor: u32,
    /// Delay ceiling, microseconds.
    pub max_micros: u64,
    /// Retries before giving up.
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        // 500 ms, 1 s, 2 s, ... capped at 60 s; 8 tries ≈ 2 min of patience.
        Backoff {
            base_micros: 500_000,
            factor: 2,
            max_micros: 60_000_000,
            max_attempts: 8,
        }
    }
}

impl Backoff {
    /// A backoff suited to wall-clock (live-runtime) retries.
    pub fn live() -> Backoff {
        Backoff {
            base_micros: 50_000,
            factor: 2,
            max_micros: 2_000_000,
            max_attempts: 6,
        }
    }

    /// Raw delay before retry number `attempt` (0-based), with ±25%
    /// deterministic jitter derived from `jitter_seed`. `None` once
    /// `max_attempts` is exhausted.
    pub fn delay_micros(&self, attempt: u32, jitter_seed: u64) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let factor = u64::from(self.factor.max(1));
        let mut d = self.base_micros.max(1);
        for _ in 0..attempt {
            d = d.saturating_mul(factor);
            if d >= self.max_micros {
                d = self.max_micros;
                break;
            }
        }
        d = d.min(self.max_micros);
        // Jitter in [-25%, +25%), deterministic in (seed, attempt).
        let h = mix(jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let jittered = d as f64 * (0.75 + 0.5 * unit);
        Some((jittered as u64).max(1))
    }

    /// [`delay_micros`](Self::delay_micros) as a [`SimDuration`].
    pub fn delay(&self, attempt: u32, jitter_seed: u64) -> Option<SimDuration> {
        self.delay_micros(attempt, jitter_seed)
            .map(SimDuration::from_micros)
    }

    /// [`delay_micros`](Self::delay_micros) as a wall-clock duration.
    pub fn delay_std(&self, attempt: u32, jitter_seed: u64) -> Option<std::time::Duration> {
        self.delay_micros(attempt, jitter_seed)
            .map(std::time::Duration::from_micros)
    }
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// Per-class injection counts, surfaced through the world metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Carousel reads failing their digest check.
    pub carousel_corruptions: u64,
    /// Carousel reads cut short.
    pub carousel_truncations: u64,
    /// Direct-channel messages lost to loss bursts.
    pub direct_losses: u64,
    /// Transfers slowed by latency spikes.
    pub latency_spikes: u64,
    /// Messages swallowed by partitions.
    pub partitions: u64,
    /// Heartbeats dropped.
    pub heartbeat_drops: u64,
    /// Control deliveries delayed.
    pub control_delays: u64,
    /// PNA crash/restart cycles.
    pub pna_crashes: u64,
    /// Task fetches bounced off a stalled Backend.
    pub backend_stalls: u64,
    /// Wire frames corrupted in flight.
    pub frame_corruptions: u64,
    /// Wire frames truncated in flight.
    pub frame_truncations: u64,
    /// Wire sends duplicated / reordered in flight.
    pub frame_reorders: u64,
    /// Headend kills injected (failover drills).
    pub headend_crashes: u64,
    /// Broadcast channels reclaimed mid-job (spot-style instance kills).
    pub airtime_revocations: u64,
}

impl FaultCounters {
    /// Bumps the counter of `class`.
    pub fn record(&mut self, class: FaultClass) {
        match class {
            FaultClass::CarouselCorruption => self.carousel_corruptions += 1,
            FaultClass::CarouselTruncation => self.carousel_truncations += 1,
            FaultClass::DirectLoss => self.direct_losses += 1,
            FaultClass::LatencySpike => self.latency_spikes += 1,
            FaultClass::Partition => self.partitions += 1,
            FaultClass::HeartbeatDrop => self.heartbeat_drops += 1,
            FaultClass::ControlDelay => self.control_delays += 1,
            FaultClass::PnaCrash => self.pna_crashes += 1,
            FaultClass::BackendStall => self.backend_stalls += 1,
            FaultClass::FrameCorrupt => self.frame_corruptions += 1,
            FaultClass::FrameTruncate => self.frame_truncations += 1,
            FaultClass::FrameReorder => self.frame_reorders += 1,
            FaultClass::HeadendCrash => self.headend_crashes += 1,
            FaultClass::AirtimeRevoked => self.airtime_revocations += 1,
        }
    }

    /// The count for `class`.
    pub fn get(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::CarouselCorruption => self.carousel_corruptions,
            FaultClass::CarouselTruncation => self.carousel_truncations,
            FaultClass::DirectLoss => self.direct_losses,
            FaultClass::LatencySpike => self.latency_spikes,
            FaultClass::Partition => self.partitions,
            FaultClass::HeartbeatDrop => self.heartbeat_drops,
            FaultClass::ControlDelay => self.control_delays,
            FaultClass::PnaCrash => self.pna_crashes,
            FaultClass::BackendStall => self.backend_stalls,
            FaultClass::FrameCorrupt => self.frame_corruptions,
            FaultClass::FrameTruncate => self.frame_truncations,
            FaultClass::FrameReorder => self.frame_reorders,
            FaultClass::HeadendCrash => self.headend_crashes,
            FaultClass::AirtimeRevoked => self.airtime_revocations,
        }
    }

    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        FaultClass::ALL.iter().map(|&c| self.get(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::standard_mix();
        let a = FaultInjector::new(plan.clone(), 7);
        let b = FaultInjector::new(plan.clone(), 7);
        let c = FaultInjector::new(plan, 8);
        let mut diverged = false;
        for node in 0..200u64 {
            for s in 0..50u64 {
                let n = NodeId::new(node);
                let at = t(s * 13);
                assert_eq!(a.heartbeat_dropped(n, at), b.heartbeat_dropped(n, at));
                assert_eq!(a.carousel_fault(n, at), b.carousel_fault(n, at));
                assert_eq!(a.pna_crash(n, at), b.pna_crash(n, at));
                if a.heartbeat_dropped(n, at) != c.heartbeat_dropped(n, at) {
                    diverged = true;
                }
            }
        }
        assert!(
            diverged,
            "different seeds must decide differently somewhere"
        );
    }

    #[test]
    fn roll_rate_is_statistically_honest() {
        let plan = FaultPlan::none().with(FaultSpec::new(FaultClass::HeartbeatDrop, 0.25));
        let inj = FaultInjector::new(plan, 99);
        let n = 40_000;
        let hits = (0..n)
            .filter(|&i| inj.heartbeat_dropped(NodeId::new(i % 100), t(i * 7 + 1)))
            .count();
        let p = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&p), "observed rate {p}");
    }

    #[test]
    fn episodes_are_contiguous_and_rate_bound() {
        let plan =
            FaultPlan::none().with(FaultSpec::new(FaultClass::DirectLoss, 0.3).magnitude(10.0));
        let inj = FaultInjector::new(plan, 5);
        let node = NodeId::new(3);
        // Within one 10 s bucket the decision never changes.
        for base in [0u64, 40, 130] {
            let first = inj.direct_dropped(node, SimTime::from_micros(base * 10_000_000 + 1));
            for off in 1..10u64 {
                let inside = SimTime::from_micros(base * 10_000_000 + off * 999_999);
                assert_eq!(inj.direct_dropped(node, inside), first);
            }
        }
        // Across many buckets, roughly `rate` are faulty.
        let buckets = 4000u64;
        let faulty = (0..buckets)
            .filter(|&b| inj.direct_dropped(node, SimTime::from_micros(b * 10_000_000 + 5)))
            .count();
        let p = faulty as f64 / buckets as f64;
        assert!((0.25..0.35).contains(&p), "episode rate {p}");
    }

    #[test]
    fn windows_gate_injection() {
        let plan = FaultPlan::none()
            .with(FaultSpec::new(FaultClass::HeartbeatDrop, 1.0).window(t(100), t(200)));
        let inj = FaultInjector::new(plan, 1);
        let n = NodeId::new(0);
        assert!(!inj.heartbeat_dropped(n, t(99)));
        assert!(inj.heartbeat_dropped(n, t(100)));
        assert!(inj.heartbeat_dropped(n, t(199)));
        assert!(!inj.heartbeat_dropped(n, t(200)));
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(inj.is_disabled());
        for i in 0..1000u64 {
            let n = NodeId::new(i);
            assert!(!inj.direct_dropped(n, t(i)));
            assert!(!inj.heartbeat_dropped(n, t(i)));
            assert!(inj.carousel_fault(n, t(i)).is_none());
            assert!(inj.pna_crash(n, t(i)).is_none());
            assert!(inj.backend_stalled(t(i)).is_none());
            assert_eq!(inj.latency_multiplier(n, t(i)), 1.0);
        }
    }

    #[test]
    fn backoff_grows_caps_and_bounds() {
        let b = Backoff {
            base_micros: 1_000,
            factor: 2,
            max_micros: 10_000,
            max_attempts: 5,
        };
        let d: Vec<u64> = (0..5).map(|a| b.delay_micros(a, 42).unwrap()).collect();
        // Jitter is ±25%, so consecutive nominal doublings still order.
        assert!(d[0] >= 750 && d[0] < 1_250, "{d:?}");
        assert!(d[1] > d[0], "{d:?}");
        assert!(d[4] <= 12_500, "cap + jitter ceiling: {d:?}");
        assert_eq!(b.delay_micros(5, 42), None, "bounded retries");
        // Deterministic.
        assert_eq!(b.delay_micros(3, 42), b.delay_micros(3, 42));
        assert_ne!(
            b.delay_micros(3, 1),
            b.delay_micros(3, 2),
            "jitter uses the seed"
        );
    }

    #[test]
    fn plan_parse_round_trip_and_errors() {
        let plan =
            FaultPlan::parse("heartbeat-drop=0.2, pna-crash=0.01:90,partition=0.05").unwrap();
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.specs[0].class, FaultClass::HeartbeatDrop);
        assert_eq!(plan.specs[1].magnitude, 90.0);
        assert_eq!(
            plan.specs[2].magnitude,
            FaultClass::Partition.default_magnitude()
        );
        assert!(FaultPlan::parse("bogus=0.5").is_err());
        assert!(FaultPlan::parse("heartbeat-drop=1.5").is_err());
        assert!(FaultPlan::parse("heartbeat-drop").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn plan_parse_window_suffix() {
        let plan = FaultPlan::parse("partition=0.05@600..1800").unwrap();
        assert_eq!(
            plan.specs[0].window,
            Some((SimTime::from_secs(600), SimTime::from_secs(1800)))
        );
        // Window composes with an explicit magnitude.
        let plan = FaultPlan::parse("pna-crash=0.01:90@0..3600").unwrap();
        assert_eq!(plan.specs[0].magnitude, 90.0);
        assert_eq!(
            plan.specs[0].window,
            Some((SimTime::ZERO, SimTime::from_secs(3600)))
        );
        // Fractional seconds are honoured at micro resolution.
        let plan = FaultPlan::parse("heartbeat-drop=1.0@0.5..1.25").unwrap();
        assert_eq!(
            plan.specs[0].window,
            Some((
                SimTime::from_micros(500_000),
                SimTime::from_micros(1_250_000)
            ))
        );
        // Malformed or empty windows are rejected.
        assert!(FaultPlan::parse("partition=0.05@600").is_err());
        assert!(FaultPlan::parse("partition=0.05@x..y").is_err());
        assert!(FaultPlan::parse("partition=0.05@1800..600").is_err());
        assert!(FaultPlan::parse("partition=0.05@-5..600").is_err());
    }

    #[test]
    fn scaling_clamps_rates() {
        let plan = FaultPlan::standard_mix().scaled(100.0);
        assert!(plan.specs.iter().all(|s| s.rate <= 1.0));
        assert!(FaultPlan::standard_mix().scaled(0.0).is_empty());
    }

    #[test]
    fn counters_account_per_class() {
        let mut c = FaultCounters::default();
        c.record(FaultClass::PnaCrash);
        c.record(FaultClass::PnaCrash);
        c.record(FaultClass::BackendStall);
        assert_eq!(c.pna_crashes, 2);
        assert_eq!(c.get(FaultClass::BackendStall), 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn headend_crash_rolls_inside_its_window() {
        let plan = FaultPlan::parse("headend-crash=1.0@1.5..2").unwrap();
        let inj = FaultInjector::new(plan, 3);
        assert!(!inj.headend_crashed(SimTime::from_secs_f64(1.0)));
        assert!(inj.headend_crashed(SimTime::from_secs_f64(1.5)));
        assert!(!inj.headend_crashed(SimTime::from_secs_f64(2.0)));
        let mut c = FaultCounters::default();
        c.record(FaultClass::HeadendCrash);
        assert_eq!(c.get(FaultClass::HeadendCrash), 1);
    }

    #[test]
    fn airtime_revocation_rolls_inside_its_window() {
        let plan = FaultPlan::parse("airtime-revoked=1.0@2..2.5").unwrap();
        let inj = FaultInjector::new(plan, 17);
        assert!(!inj.airtime_revoked(SimTime::from_secs_f64(1.9)));
        assert!(inj.airtime_revoked(SimTime::from_secs_f64(2.0)));
        assert!(!inj.airtime_revoked(SimTime::from_secs_f64(2.5)));
        let mut c = FaultCounters::default();
        c.record(FaultClass::AirtimeRevoked);
        assert_eq!(c.get(FaultClass::AirtimeRevoked), 1);
        assert_eq!(c.airtime_revocations, 1);
    }

    #[test]
    fn plan_serializes() {
        let plan = FaultPlan::standard_mix();
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("CarouselCorruption"), "{json}");
    }

    #[test]
    fn backend_stall_is_global_and_episodic() {
        let plan =
            FaultPlan::none().with(FaultSpec::new(FaultClass::BackendStall, 0.4).magnitude(30.0));
        let inj = FaultInjector::new(plan, 11);
        let episodes = 2000u64;
        let stalled = (0..episodes)
            .filter(|&b| {
                inj.backend_stalled(SimTime::from_micros(b * 30_000_000 + 9))
                    .is_some()
            })
            .count();
        let p = stalled as f64 / episodes as f64;
        assert!((0.34..0.46).contains(&p), "stall rate {p}");
    }
}
