//! The live-plane wire vocabulary: every message a headend and a PNA
//! exchange over TCP, with a hand-rolled deterministic binary codec.
//!
//! Request/reply pairs (heartbeat, task fetch) carry a `corr`elation id
//! chosen by the requester — the single-socket transport multiplexes all
//! of a node's traffic over one connection, so replies must name the
//! request they answer (SNIPPETS.md snippet 3's single-channel plan).
//! Broadcast traffic (wakeups, resets, shutdown) flows server → client
//! with no correlation: it is the socket mirror of the carousel bus.

use crate::codec::{Reader, Writer};
use crate::tcp::ConnTraffic;
use crate::WireError;
use oddci_core::messages::{
    ControlMessage, Heartbeat, HeartbeatReply, NodeRequirements, PnaStateKind, ResetMessage,
    SignedMessage, WakeupMessage,
};
use oddci_crypto::{Tag, TAG_LEN};
use oddci_telemetry::{HistogramSummary, RegistrySnapshot};
use oddci_types::{
    DataSize, ImageId, InstanceId, JobId, MessageId, NodeId, Probability, SimDuration, SimTime,
    TaskId,
};
use oddci_workload::Task;

/// Wire protocol version spoken in [`WireMsg::Hello`].
///
/// v2 added the headend **epoch** to the handshake (and an optional resume
/// identity to `Hello`): each headend incarnation speaks from a monotonic
/// epoch, and a PNA that has seen epoch `e` refuses any `HelloAck` with a
/// lower one — the fencing token that prevents a zombie primary from
/// reclaiming nodes after a standby adopted them.
pub const PROTO_VERSION: u16 = 2;

/// A batch of tasks answering one [`WireMsg::TaskRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireBatch {
    /// No work left for this instance.
    Drained,
    /// Tasks plus their query payloads.
    Assigned {
        /// Owning job.
        job: JobId,
        /// `(task, query bytes)` pairs.
        tasks: Vec<(Task, Vec<u8>)>,
    },
}

/// Every message of the live wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client → server: first message on a connection.
    Hello {
        /// Protocol version the client speaks.
        proto: u16,
        /// Highest headend epoch the client has spoken with (0 on a fresh
        /// connect). A server never acks from a lower epoch.
        epoch: u64,
        /// Node identity to resume after a reconnect, so a standby that
        /// adopted this node's membership from a snapshot re-acks the
        /// *same* id instead of minting a fresh one.
        resume: Option<NodeId>,
    },
    /// Server → client: node identity assigned to this connection.
    HelloAck {
        /// The node id the PNA runs under.
        node: NodeId,
        /// The serving headend's epoch. Clients reject acks whose epoch is
        /// lower than the highest they have seen.
        epoch: u64,
    },
    /// Client → server: one heartbeat, expecting a reply.
    Heartbeat {
        /// Correlation id echoed by the reply.
        corr: u64,
        /// The heartbeat.
        hb: Heartbeat,
    },
    /// Server → client: answer to a heartbeat.
    HeartbeatReply {
        /// Correlation id of the heartbeat answered.
        corr: u64,
        /// Ack or direct reset.
        reply: HeartbeatReply,
    },
    /// Client → server: fetch a batch of tasks.
    TaskRequest {
        /// Correlation id echoed by the reply.
        corr: u64,
        /// Instance the node executes.
        instance: InstanceId,
        /// Requesting node.
        node: NodeId,
    },
    /// Server → client: answer to a task request.
    TaskBatch {
        /// Correlation id of the request answered.
        corr: u64,
        /// The batch (or `Drained`).
        batch: WireBatch,
    },
    /// Client → server: completed task scores (fire and forget; the
    /// Backend's ledgers recover losses via reassignment).
    Results {
        /// Owning job.
        job: JobId,
        /// Reporting node.
        node: NodeId,
        /// `(task, best score)` pairs.
        results: Vec<(TaskId, i32)>,
    },
    /// Server → client: a signed control message, plus the application
    /// image bytes for wakeups (this is the payload that streams in
    /// multiple chunks).
    Broadcast {
        /// The authenticated wakeup/reset.
        signed: SignedMessage,
        /// Encoded image (recipe + database) for wakeups.
        image: Option<Vec<u8>>,
    },
    /// Server → client: the plane is shutting down.
    Shutdown,
    /// Client → server: ask for the headend's live metrics. Answered
    /// without a `Hello` handshake so a monitoring client never consumes
    /// a node identity.
    StatsQuery {
        /// Correlation id echoed by the reply.
        corr: u64,
    },
    /// Server → client: the headend's metrics registry plus the
    /// per-connection wire counters, answering one [`WireMsg::StatsQuery`].
    StatsReply {
        /// Correlation id of the query answered.
        corr: u64,
        /// Counters, gauges, and latency histogram summaries.
        registry: RegistrySnapshot,
        /// One row per connection the headend has seen.
        connections: Vec<ConnTraffic>,
    },
}

impl WireMsg {
    /// The frame-header kind byte of this message.
    pub fn kind(&self) -> u8 {
        match self {
            WireMsg::Hello { .. } => 1,
            WireMsg::HelloAck { .. } => 2,
            WireMsg::Heartbeat { .. } => 3,
            WireMsg::HeartbeatReply { .. } => 4,
            WireMsg::TaskRequest { .. } => 5,
            WireMsg::TaskBatch { .. } => 6,
            WireMsg::Results { .. } => 7,
            WireMsg::Broadcast { .. } => 8,
            WireMsg::Shutdown => 9,
            WireMsg::StatsQuery { .. } => 10,
            WireMsg::StatsReply { .. } => 11,
        }
    }

    /// Encodes the message payload (the frame layer adds kind/seq).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            WireMsg::Hello {
                proto,
                epoch,
                resume,
            } => {
                w.u16(*proto);
                w.u64(*epoch);
                match resume {
                    None => w.u8(0),
                    Some(node) => {
                        w.u8(1);
                        w.u64(node.raw());
                    }
                }
            }
            WireMsg::HelloAck { node, epoch } => {
                w.u64(node.raw());
                w.u64(*epoch);
            }
            WireMsg::Heartbeat { corr, hb } => {
                w.u64(*corr);
                encode_heartbeat(&mut w, hb);
            }
            WireMsg::HeartbeatReply { corr, reply } => {
                w.u64(*corr);
                match reply {
                    HeartbeatReply::Ack => w.u8(0),
                    HeartbeatReply::Reset(inst) => {
                        w.u8(1);
                        w.u64(inst.raw());
                    }
                }
            }
            WireMsg::TaskRequest {
                corr,
                instance,
                node,
            } => {
                w.u64(*corr);
                w.u64(instance.raw());
                w.u64(node.raw());
            }
            WireMsg::TaskBatch { corr, batch } => {
                w.u64(*corr);
                match batch {
                    WireBatch::Drained => w.u8(0),
                    WireBatch::Assigned { job, tasks } => {
                        w.u8(1);
                        w.u64(job.raw());
                        w.u32(tasks.len() as u32);
                        for (task, query) in tasks {
                            encode_task(&mut w, task);
                            w.bytes(query);
                        }
                    }
                }
            }
            WireMsg::Results { job, node, results } => {
                w.u64(job.raw());
                w.u64(node.raw());
                w.u32(results.len() as u32);
                for (task, score) in results {
                    w.u64(task.raw());
                    w.i32(*score);
                }
            }
            WireMsg::Broadcast { signed, image } => {
                encode_signed(&mut w, signed);
                match image {
                    None => w.u8(0),
                    Some(bytes) => {
                        w.u8(1);
                        w.bytes(bytes);
                    }
                }
            }
            WireMsg::Shutdown => {}
            WireMsg::StatsQuery { corr } => w.u64(*corr),
            WireMsg::StatsReply {
                corr,
                registry,
                connections,
            } => {
                w.u64(*corr);
                w.u32(registry.counters.len() as u32);
                for (name, value) in &registry.counters {
                    w.bytes(name.as_bytes());
                    w.u64(*value);
                }
                w.u32(registry.gauges.len() as u32);
                for (name, value) in &registry.gauges {
                    w.bytes(name.as_bytes());
                    w.f64(*value);
                }
                w.u32(registry.histograms.len() as u32);
                for (name, h) in &registry.histograms {
                    w.bytes(name.as_bytes());
                    w.u64(h.count);
                    w.f64(h.mean);
                    w.f64(h.p50);
                    w.f64(h.p90);
                    w.f64(h.p99);
                    w.f64(h.max);
                }
                w.u32(connections.len() as u32);
                for c in connections {
                    w.u64(c.conn);
                    w.bool(c.open);
                    w.u64(c.tx_frames);
                    w.u64(c.rx_frames);
                    w.u64(c.tx_bytes);
                    w.u64(c.rx_bytes);
                    w.u64(c.checksum_rejects);
                    w.u64(c.resyncs);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a message from its frame `kind` and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<WireMsg, WireError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            1 => {
                let proto = r.u16()?;
                let epoch = r.u64()?;
                let resume = match r.u8()? {
                    0 => None,
                    1 => Some(NodeId::new(r.u64()?)),
                    _ => return Err(WireError::Malformed("unknown resume tag")),
                };
                WireMsg::Hello {
                    proto,
                    epoch,
                    resume,
                }
            }
            2 => WireMsg::HelloAck {
                node: NodeId::new(r.u64()?),
                epoch: r.u64()?,
            },
            3 => WireMsg::Heartbeat {
                corr: r.u64()?,
                hb: decode_heartbeat(&mut r)?,
            },
            4 => {
                let corr = r.u64()?;
                let reply = match r.u8()? {
                    0 => HeartbeatReply::Ack,
                    1 => HeartbeatReply::Reset(InstanceId::new(r.u64()?)),
                    _ => return Err(WireError::Malformed("unknown heartbeat reply tag")),
                };
                WireMsg::HeartbeatReply { corr, reply }
            }
            5 => WireMsg::TaskRequest {
                corr: r.u64()?,
                instance: InstanceId::new(r.u64()?),
                node: NodeId::new(r.u64()?),
            },
            6 => {
                let corr = r.u64()?;
                let batch = match r.u8()? {
                    0 => WireBatch::Drained,
                    1 => {
                        let job = JobId::new(r.u64()?);
                        let n = r.u32()? as usize;
                        let mut tasks = Vec::with_capacity(n.min(4096));
                        for _ in 0..n {
                            let task = decode_task(&mut r)?;
                            let query = r.bytes()?.to_vec();
                            tasks.push((task, query));
                        }
                        WireBatch::Assigned { job, tasks }
                    }
                    _ => return Err(WireError::Malformed("unknown batch tag")),
                };
                WireMsg::TaskBatch { corr, batch }
            }
            7 => {
                let job = JobId::new(r.u64()?);
                let node = NodeId::new(r.u64()?);
                let n = r.u32()? as usize;
                let mut results = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let task = TaskId::new(r.u64()?);
                    let score = r.i32()?;
                    results.push((task, score));
                }
                WireMsg::Results { job, node, results }
            }
            8 => {
                let signed = decode_signed(&mut r)?;
                let image = match r.u8()? {
                    0 => None,
                    1 => Some(r.bytes()?.to_vec()),
                    _ => return Err(WireError::Malformed("unknown image tag")),
                };
                WireMsg::Broadcast { signed, image }
            }
            9 => WireMsg::Shutdown,
            10 => WireMsg::StatsQuery { corr: r.u64()? },
            11 => {
                let corr = r.u64()?;
                let mut registry = RegistrySnapshot::default();
                for _ in 0..r.u32()? {
                    let name = read_metric_name(&mut r)?;
                    registry.counters.insert(name, r.u64()?);
                }
                for _ in 0..r.u32()? {
                    let name = read_metric_name(&mut r)?;
                    registry.gauges.insert(name, r.f64()?);
                }
                for _ in 0..r.u32()? {
                    let name = read_metric_name(&mut r)?;
                    let h = HistogramSummary {
                        count: r.u64()?,
                        mean: r.f64()?,
                        p50: r.f64()?,
                        p90: r.f64()?,
                        p99: r.f64()?,
                        max: r.f64()?,
                    };
                    registry.histograms.insert(name, h);
                }
                let n = r.u32()? as usize;
                let mut connections = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    connections.push(ConnTraffic {
                        conn: r.u64()?,
                        open: r.bool()?,
                        tx_frames: r.u64()?,
                        rx_frames: r.u64()?,
                        tx_bytes: r.u64()?,
                        rx_bytes: r.u64()?,
                        checksum_rejects: r.u64()?,
                        resyncs: r.u64()?,
                    });
                }
                WireMsg::StatsReply {
                    corr,
                    registry,
                    connections,
                }
            }
            _ => return Err(WireError::Malformed("unknown message kind")),
        };
        r.finish()?;
        Ok(msg)
    }
}

fn read_metric_name(r: &mut Reader<'_>) -> Result<String, WireError> {
    String::from_utf8(r.bytes()?.to_vec())
        .map_err(|_| WireError::Malformed("metric name is not utf-8"))
}

fn encode_heartbeat(w: &mut Writer, hb: &Heartbeat) {
    w.u64(hb.node.raw());
    w.u8(match hb.state {
        PnaStateKind::Idle => 0,
        PnaStateKind::Busy => 1,
    });
    match hb.instance {
        None => w.u8(0),
        Some(inst) => {
            w.u8(1);
            w.u64(inst.raw());
        }
    }
    w.u64(hb.sent_at.as_micros());
}

fn decode_heartbeat(r: &mut Reader<'_>) -> Result<Heartbeat, WireError> {
    let node = NodeId::new(r.u64()?);
    let state = match r.u8()? {
        0 => PnaStateKind::Idle,
        1 => PnaStateKind::Busy,
        _ => return Err(WireError::Malformed("unknown PNA state")),
    };
    let instance = match r.u8()? {
        0 => None,
        1 => Some(InstanceId::new(r.u64()?)),
        _ => return Err(WireError::Malformed("unknown instance tag")),
    };
    let sent_at = SimTime::from_micros(r.u64()?);
    Ok(Heartbeat {
        node,
        state,
        instance,
        sent_at,
    })
}

fn encode_task(w: &mut Writer, task: &Task) {
    w.u64(task.id.raw());
    w.u64(task.input_size.bits());
    w.u64(task.cost.as_micros());
    w.u64(task.result_size.bits());
}

fn decode_task(r: &mut Reader<'_>) -> Result<Task, WireError> {
    Ok(Task::new(
        TaskId::new(r.u64()?),
        DataSize::from_bits(r.u64()?),
        SimDuration::from_micros(r.u64()?),
        DataSize::from_bits(r.u64()?),
    ))
}

/// Encodes a signed control message: the same field order as
/// [`ControlMessage::canonical_bytes`] (so the decoded message re-signs
/// to the identical tag), followed by the 32-byte HMAC tag.
fn encode_signed(w: &mut Writer, signed: &SignedMessage) {
    match &signed.message {
        ControlMessage::Wakeup(m) => {
            w.u8(1);
            w.u64(m.id.raw());
            w.u64(m.instance.raw());
            w.u64(m.image.raw());
            w.u64(m.image_size.bits());
            w.f64(m.probability.value());
            w.u64(m.requirements.min_memory.bits());
            w.bool(m.requirements.standby_only);
        }
        ControlMessage::Reset(m) => {
            w.u8(2);
            w.u64(m.id.raw());
            w.u64(m.instance.raw());
        }
    }
    w.raw(&signed.tag);
}

fn decode_signed(r: &mut Reader<'_>) -> Result<SignedMessage, WireError> {
    let message = match r.u8()? {
        1 => ControlMessage::Wakeup(WakeupMessage {
            id: MessageId::new(r.u64()?),
            instance: InstanceId::new(r.u64()?),
            image: ImageId::new(r.u64()?),
            image_size: DataSize::from_bits(r.u64()?),
            probability: Probability::new(r.f64()?),
            requirements: NodeRequirements {
                min_memory: DataSize::from_bits(r.u64()?),
                standby_only: r.bool()?,
            },
        }),
        2 => ControlMessage::Reset(ResetMessage {
            id: MessageId::new(r.u64()?),
            instance: InstanceId::new(r.u64()?),
        }),
        _ => return Err(WireError::Malformed("unknown control message tag")),
    };
    let mut tag: Tag = [0u8; TAG_LEN];
    for byte in tag.iter_mut() {
        *byte = r.u8()?;
    }
    Ok(SignedMessage { message, tag })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_crypto::MessageAuthenticator;

    fn signed_wakeup() -> SignedMessage {
        let auth = MessageAuthenticator::from_key(b"controller-key");
        SignedMessage::sign(
            ControlMessage::Wakeup(WakeupMessage {
                id: MessageId::new(11),
                instance: InstanceId::new(4),
                image: ImageId::new(2),
                image_size: DataSize::from_megabytes(1),
                probability: Probability::new(0.37),
                requirements: NodeRequirements {
                    min_memory: DataSize::from_megabytes(64),
                    standby_only: true,
                },
            }),
            &auth,
        )
    }

    fn round_trip(msg: WireMsg) -> WireMsg {
        let enc = msg.encode();
        WireMsg::decode(msg.kind(), &enc).expect("decodes")
    }

    #[test]
    fn every_variant_round_trips() {
        let msgs = vec![
            WireMsg::Hello {
                proto: PROTO_VERSION,
                epoch: 0,
                resume: None,
            },
            WireMsg::Hello {
                proto: PROTO_VERSION,
                epoch: 7,
                resume: Some(NodeId::new(17)),
            },
            WireMsg::HelloAck {
                node: NodeId::new(17),
                epoch: 8,
            },
            WireMsg::Heartbeat {
                corr: 99,
                hb: Heartbeat {
                    node: NodeId::new(3),
                    state: PnaStateKind::Busy,
                    instance: Some(InstanceId::new(8)),
                    sent_at: SimTime::from_micros(123_456),
                },
            },
            WireMsg::HeartbeatReply {
                corr: 99,
                reply: HeartbeatReply::Reset(InstanceId::new(8)),
            },
            WireMsg::TaskRequest {
                corr: 5,
                instance: InstanceId::new(8),
                node: NodeId::new(3),
            },
            WireMsg::TaskBatch {
                corr: 5,
                batch: WireBatch::Assigned {
                    job: JobId::new(1),
                    tasks: vec![
                        (
                            Task::new(
                                TaskId::new(0),
                                DataSize::from_bytes(150),
                                SimDuration::from_millis(10),
                                DataSize::from_bytes(8),
                            ),
                            b"ACGTACGT".to_vec(),
                        ),
                        (
                            Task::new(
                                TaskId::new(1),
                                DataSize::from_bytes(150),
                                SimDuration::from_millis(10),
                                DataSize::from_bytes(8),
                            ),
                            vec![],
                        ),
                    ],
                },
            },
            WireMsg::TaskBatch {
                corr: 6,
                batch: WireBatch::Drained,
            },
            WireMsg::Results {
                job: JobId::new(1),
                node: NodeId::new(3),
                results: vec![(TaskId::new(0), 42), (TaskId::new(1), -7)],
            },
            WireMsg::Broadcast {
                signed: signed_wakeup(),
                image: Some(vec![1, 2, 3, 4, 5]),
            },
            WireMsg::Broadcast {
                signed: SignedMessage::sign(
                    ControlMessage::Reset(ResetMessage {
                        id: MessageId::new(12),
                        instance: InstanceId::new(4),
                    }),
                    &MessageAuthenticator::from_key(b"controller-key"),
                ),
                image: None,
            },
            WireMsg::Shutdown,
            WireMsg::StatsQuery { corr: 41 },
            WireMsg::StatsReply {
                corr: 41,
                registry: {
                    let mut reg = RegistrySnapshot::default();
                    reg.counters.insert("wire.tx_frames".into(), 1234);
                    reg.counters.insert("sink.persisted".into(), 0);
                    reg.gauges.insert("wire.connections".into(), 3.5);
                    reg.histograms.insert(
                        "heartbeat.lag".into(),
                        HistogramSummary {
                            count: 9,
                            mean: 0.004,
                            p50: 0.003,
                            p90: 0.008,
                            p99: 0.009,
                            max: 0.011,
                        },
                    );
                    reg
                },
                connections: vec![
                    ConnTraffic {
                        conn: 1,
                        open: true,
                        tx_frames: 10,
                        rx_frames: 12,
                        tx_bytes: 4096,
                        rx_bytes: 512,
                        checksum_rejects: 0,
                        resyncs: 0,
                    },
                    ConnTraffic {
                        conn: 2,
                        open: false,
                        tx_frames: 1,
                        rx_frames: 1,
                        tx_bytes: 64,
                        rx_bytes: 64,
                        checksum_rejects: 2,
                        resyncs: 1,
                    },
                ],
            },
            WireMsg::StatsReply {
                corr: 0,
                registry: RegistrySnapshot::default(),
                connections: vec![],
            },
        ];
        for msg in msgs {
            assert_eq!(round_trip(msg.clone()), msg);
        }
    }

    #[test]
    fn decoded_wakeup_still_verifies_its_signature() {
        let auth = MessageAuthenticator::from_key(b"controller-key");
        let msg = WireMsg::Broadcast {
            signed: signed_wakeup(),
            image: None,
        };
        let WireMsg::Broadcast { signed, .. } = round_trip(msg) else {
            panic!("wrong variant");
        };
        assert!(
            signed.verify(&auth).is_ok(),
            "wire codec must preserve the canonical signing bytes exactly"
        );
    }

    #[test]
    fn kinds_are_unique() {
        let kinds = [
            WireMsg::Hello {
                proto: 1,
                epoch: 0,
                resume: None,
            }
            .kind(),
            WireMsg::HelloAck {
                node: NodeId::new(0),
                epoch: 0,
            }
            .kind(),
            WireMsg::Shutdown.kind(),
            WireMsg::StatsQuery { corr: 0 }.kind(),
            WireMsg::StatsReply {
                corr: 0,
                registry: RegistrySnapshot::default(),
                connections: vec![],
            }
            .kind(),
        ];
        assert_eq!(kinds, [1, 2, 9, 10, 11]);
    }

    #[test]
    fn truncated_payload_errors() {
        let enc = WireMsg::Results {
            job: JobId::new(1),
            node: NodeId::new(2),
            results: vec![(TaskId::new(0), 1)],
        }
        .encode();
        assert!(WireMsg::decode(7, &enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn unknown_kind_errors() {
        assert!(WireMsg::decode(200, &[]).is_err());
    }
}
