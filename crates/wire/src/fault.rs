//! Wire-level fault injection: mangles encoded frames on their way out.
//!
//! The transports call [`mangle_frames`] right before bytes hit the
//! socket, so the *receiving* side's frame decoder and reassembler do
//! the recovering — exactly the paths the fault classes exist to
//! exercise:
//!
//! * [`FaultClass::FrameCorrupt`](oddci_faults::FaultClass::FrameCorrupt)
//!   flips one bit; the checksum must reject the frame.
//! * [`FaultClass::FrameTruncate`](oddci_faults::FaultClass::FrameTruncate)
//!   cuts the frame short; the decoder must resynchronize on the next
//!   magic.
//! * [`FaultClass::FrameReorder`](oddci_faults::FaultClass::FrameReorder)
//!   swaps adjacent frames of a multi-frame send, or duplicates a
//!   single-frame send; the reassembler must still deliver exactly once.
//!
//! Like every injector decision, mangling is a pure function of
//! `(seed, class, node, instant)` — replaying the same frames at the
//! same instants mangles them identically, which is what the seeded-plan
//! envelope tests assert.

use oddci_faults::FaultInjector;
use oddci_types::{NodeId, SimTime};

/// What [`mangle_frames`] did to one send.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MangleReport {
    /// Frames with a bit flipped.
    pub corrupted: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Sends duplicated / reordered.
    pub reordered: u64,
}

impl MangleReport {
    /// Total manglings applied.
    pub fn total(&self) -> u64 {
        self.corrupted + self.truncated + self.reordered
    }
}

/// Deterministic position scrambler (splitmix64 tail).
fn scramble(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 27)
}

/// Applies the wire fault classes of `injector` to the encoded frames of
/// one send by `node` at `now`. Returns what was done.
pub fn mangle_frames(
    injector: &FaultInjector,
    node: NodeId,
    now: SimTime,
    frames: &mut Vec<Vec<u8>>,
) -> MangleReport {
    let mut report = MangleReport::default();
    if injector.is_disabled() || frames.is_empty() {
        return report;
    }
    for (i, frame) in frames.iter_mut().enumerate() {
        // Distinct per-frame instants so each frame rolls independently.
        let at = SimTime::from_micros(now.as_micros().wrapping_add(i as u64 * 7919));
        if injector.frame_corrupted(node, at) {
            if !frame.is_empty() {
                let h = scramble(at.as_micros() ^ node.raw());
                let pos = (h % frame.len() as u64) as usize;
                frame[pos] ^= 1 << (h >> 32 & 7);
                report.corrupted += 1;
            }
        } else if injector.frame_truncated(node, at) {
            frame.truncate((frame.len() / 2).max(1));
            report.truncated += 1;
        }
    }
    // One reorder decision per send.
    let at = SimTime::from_micros(now.as_micros().wrapping_add(104_729));
    if injector.frame_reordered(node, at) {
        if frames.len() >= 2 {
            frames.swap(0, 1);
        } else {
            frames.push(frames[0].clone());
        }
        report.reordered += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{encode_chunks, Reassembler};
    use crate::frame::{FrameDecoder, Integrity};
    use oddci_faults::{FaultClass, FaultPlan, FaultSpec};

    fn frames_for(seq: u64, payload: &[u8]) -> Vec<Vec<u8>> {
        encode_chunks(&Integrity::Crc32, 1, seq, payload, 256)
    }

    fn injector(class: FaultClass, rate: f64) -> FaultInjector {
        FaultInjector::new(FaultPlan::none().with(FaultSpec::new(class, rate)), 7)
    }

    #[test]
    fn mangling_is_deterministic() {
        let inj = injector(FaultClass::FrameCorrupt, 0.5);
        let node = NodeId::new(3);
        let mut a = frames_for(1, &[0x5A; 2000]);
        let mut b = frames_for(1, &[0x5A; 2000]);
        let ra = mangle_frames(&inj, node, SimTime::from_micros(1234), &mut a);
        let rb = mangle_frames(&inj, node, SimTime::from_micros(1234), &mut b);
        assert_eq!(ra, rb);
        assert_eq!(a, b, "same seed, node and instant ⇒ identical bytes");
        assert!(ra.corrupted > 0, "rate 0.5 over 8 frames should fire");
    }

    #[test]
    fn corrupted_frames_never_deliver_wrong_bytes() {
        let inj = injector(FaultClass::FrameCorrupt, 1.0);
        let node = NodeId::new(0);
        let payload = vec![0xC3; 5000];
        let mut frames = frames_for(9, &payload);
        let report = mangle_frames(&inj, node, SimTime::from_micros(55), &mut frames);
        assert_eq!(report.corrupted, frames.len() as u64);
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        let mut re = Reassembler::new();
        for f in &frames {
            dec.extend(f);
        }
        while let Some(f) = dec.next_frame() {
            assert!(re.push(f).is_none(), "no corrupted chunk may survive");
        }
        assert_eq!(dec.stats().rejected as usize, frames.len());
    }

    #[test]
    fn truncation_recovers_on_later_frames() {
        let inj = injector(FaultClass::FrameTruncate, 1.0);
        let node = NodeId::new(1);
        let mut lost = frames_for(0, &[1; 100]);
        mangle_frames(&inj, node, SimTime::from_micros(10), &mut lost);
        let clean = frames_for(1, &[2; 100]);
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        for f in lost.iter().chain(clean.iter()) {
            dec.extend(f);
        }
        let mut re = Reassembler::new();
        let mut delivered = Vec::new();
        while let Some(f) = dec.next_frame() {
            if let Some(m) = re.push(f) {
                delivered.push(m);
            }
        }
        assert_eq!(delivered.len(), 1, "the clean message still arrives");
        assert_eq!(delivered[0].seq, 1);
    }

    #[test]
    fn reorder_and_duplicate_still_deliver_exactly_once() {
        let inj = injector(FaultClass::FrameReorder, 1.0);
        let node = NodeId::new(2);
        for payload_len in [10usize, 2000] {
            let payload = vec![0xEE; payload_len];
            let mut frames = frames_for(3, &payload);
            let report = mangle_frames(&inj, node, SimTime::from_micros(77), &mut frames);
            assert_eq!(report.reordered, 1);
            let mut dec = FrameDecoder::new(Integrity::Crc32);
            for f in &frames {
                dec.extend(f);
            }
            let mut re = Reassembler::new();
            let mut delivered = Vec::new();
            while let Some(f) = dec.next_frame() {
                if let Some(m) = re.push(f) {
                    delivered.push(m);
                }
            }
            assert_eq!(delivered.len(), 1);
            assert_eq!(delivered[0].payload, payload);
        }
    }

    #[test]
    fn disabled_injector_is_a_no_op() {
        let inj = FaultInjector::disabled();
        let mut frames = frames_for(0, &[9; 512]);
        let before = frames.clone();
        let report = mangle_frames(&inj, NodeId::new(0), SimTime::from_micros(1), &mut frames);
        assert_eq!(report.total(), 0);
        assert_eq!(frames, before);
    }
}
