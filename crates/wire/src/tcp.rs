//! The `std::net` TCP transport: a poll/accept serving loop for the
//! headend and a blocking direct-channel client for each PNA.
//!
//! # Serving-loop thread model
//!
//! [`WireServer::bind`] spawns **one** serving thread that owns the
//! listener and every accepted connection. Each iteration it
//!
//! 1. accepts any pending connections (non-blocking listener),
//! 2. reads available bytes from every connection into that
//!    connection's [`FrameDecoder`] and [`Reassembler`], handing each
//!    completed message to the [`WireService`],
//! 3. calls [`WireService::poll`] so the service can emit unprompted
//!    traffic (broadcasts, replies that became ready),
//! 4. encodes the [`Outbox`] into per-connection output buffers
//!    (chunking large payloads, applying wire faults when an injector
//!    is armed), and
//! 5. flushes those buffers until the sockets would block.
//!
//! When nothing progressed the loop sleeps briefly, so an idle headend
//! costs microseconds per iteration rather than a spinning core. A stop
//! request keeps the loop alive until every output buffer drains (or a
//! grace period expires) so a final shutdown broadcast actually reaches
//! the peers. Single-threaded connection ownership means the service
//! never needs a lock around connection state — the serving loop *is*
//! the serialization point, mirroring the polling-loop shape used by the
//! in-process headend carousel.
//!
//! The [`WireClient`] is the PNA half: a blocking connect (with retry
//! until a deadline, since the headend may still be binding), a reader
//! thread that turns socket bytes into decoded [`WireMsg`]s on a
//! channel, and a mutex-guarded writer usable from any node thread.

use crate::envelope::{encode_chunks, Reassembler, ReassemblyStats};
use crate::fault::mangle_frames;
use crate::frame::{DecodeStats, FrameDecoder, Integrity, DEFAULT_CHUNK};
use crate::message::WireMsg;
use crate::WireError;
use oddci_check::sync::{self, Mutex, Receiver};
use oddci_faults::FaultInjector;
use oddci_telemetry::{Phase, Telemetry};
use oddci_types::{NodeId, SimTime};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Identifies one accepted connection for the lifetime of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(u64);

impl ConnId {
    /// The raw connection number (monotonic per server, starting at 1).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn-{}", self.0)
    }
}

/// Per-connection traffic counters, maintained by the serving loop in a
/// [`ConnStatsHub`]. The aggregate [`WireStats`] answers "how busy is
/// the plane"; this answers "which peer is misbehaving" — a PNA behind a
/// corrupting link shows up as one row with climbing `checksum_rejects`
/// while the fleet's totals stay healthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnTraffic {
    /// The connection's id ([`ConnId::raw`]).
    pub conn: u64,
    /// Still connected? Closed rows keep their final counters.
    pub open: bool,
    /// Frames queued to this peer.
    pub tx_frames: u64,
    /// Frames read and checksum-verified from this peer.
    pub rx_frames: u64,
    /// Bytes written to this peer's socket.
    pub tx_bytes: u64,
    /// Bytes read from this peer's socket.
    pub rx_bytes: u64,
    /// This peer's frames rejected on a failed check.
    pub checksum_rejects: u64,
    /// Times this peer's decoder scanned forward for the next magic.
    pub resyncs: u64,
}

/// Shared ledger of [`ConnTraffic`] rows, keyed by connection id. Hand
/// one `Arc` to [`ServerConfig::conn_stats`] (the serving loop updates
/// it) and keep a clone wherever the numbers are served from — the live
/// wire service answers `StatsQuery` out of it, and the headend CLI
/// prints it in the shutdown summary. Disconnected peers stay listed
/// with their final counters and `open: false`.
#[derive(Debug)]
pub struct ConnStatsHub {
    inner: Mutex<BTreeMap<u64, ConnTraffic>>,
}

impl Default for ConnStatsHub {
    fn default() -> Self {
        ConnStatsHub {
            inner: Mutex::named(BTreeMap::new(), "wire.conn_stats"),
        }
    }
}

impl ConnStatsHub {
    /// An empty ledger.
    pub fn new() -> ConnStatsHub {
        ConnStatsHub::default()
    }

    fn update(&self, conn: u64, f: impl FnOnce(&mut ConnTraffic)) {
        let mut rows = self.inner.lock();
        let row = rows.entry(conn).or_insert_with(|| ConnTraffic {
            conn,
            open: true,
            ..ConnTraffic::default()
        });
        f(row);
    }

    /// All rows, ordered by connection id.
    pub fn snapshot(&self) -> Vec<ConnTraffic> {
        self.inner.lock().values().copied().collect()
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    open: AtomicU64,
    tx_frames: AtomicU64,
    rx_frames: AtomicU64,
    tx_bytes: AtomicU64,
    rx_bytes: AtomicU64,
    tx_messages: AtomicU64,
    rx_messages: AtomicU64,
    multi_chunk_tx: AtomicU64,
    multi_chunk_rx: AtomicU64,
    checksum_rejects: AtomicU64,
    resyncs: AtomicU64,
    duplicates: AtomicU64,
    reassembly_rejects: AtomicU64,
    mangled_corrupt: AtomicU64,
    mangled_truncate: AtomicU64,
    mangled_reorder: AtomicU64,
}

/// Shared traffic counters of one transport endpoint (server or client).
/// Cheap to clone; all methods are lock-free reads.
#[derive(Debug, Clone, Default)]
pub struct WireStats {
    inner: Arc<StatsInner>,
}

/// A point-in-time copy of every [`WireStats`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStatsSnapshot {
    /// Connections accepted (server) or established (client).
    pub accepted: u64,
    /// Connections currently open.
    pub open: u64,
    /// Frames written to sockets.
    pub tx_frames: u64,
    /// Frames read and checksum-verified.
    pub rx_frames: u64,
    /// Bytes written to sockets.
    pub tx_bytes: u64,
    /// Bytes read from sockets.
    pub rx_bytes: u64,
    /// Messages sent (before chunking).
    pub tx_messages: u64,
    /// Messages fully reassembled and delivered.
    pub rx_messages: u64,
    /// Sent messages that needed more than one frame.
    pub multi_chunk_tx: u64,
    /// Delivered messages that arrived in more than one frame.
    pub multi_chunk_rx: u64,
    /// Frames rejected on a failed check or malformed header.
    pub checksum_rejects: u64,
    /// Times a decoder scanned forward for the next magic.
    pub resyncs: u64,
    /// Duplicate chunks or replayed messages dropped.
    pub duplicates: u64,
    /// Messages dropped by the reassembler (inconsistent chunks).
    pub reassembly_rejects: u64,
    /// Frames deliberately corrupted by the fault injector.
    pub mangled_corrupt: u64,
    /// Frames deliberately truncated by the fault injector.
    pub mangled_truncate: u64,
    /// Sends deliberately reordered/duplicated by the fault injector.
    pub mangled_reorder: u64,
}

impl WireStats {
    /// Fresh zeroed counters.
    pub fn new() -> WireStats {
        WireStats::default()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> WireStatsSnapshot {
        let i = &self.inner;
        WireStatsSnapshot {
            accepted: i.accepted.load(Ordering::Relaxed),
            open: i.open.load(Ordering::Relaxed),
            tx_frames: i.tx_frames.load(Ordering::Relaxed),
            rx_frames: i.rx_frames.load(Ordering::Relaxed),
            tx_bytes: i.tx_bytes.load(Ordering::Relaxed),
            rx_bytes: i.rx_bytes.load(Ordering::Relaxed),
            tx_messages: i.tx_messages.load(Ordering::Relaxed),
            rx_messages: i.rx_messages.load(Ordering::Relaxed),
            multi_chunk_tx: i.multi_chunk_tx.load(Ordering::Relaxed),
            multi_chunk_rx: i.multi_chunk_rx.load(Ordering::Relaxed),
            checksum_rejects: i.checksum_rejects.load(Ordering::Relaxed),
            resyncs: i.resyncs.load(Ordering::Relaxed),
            duplicates: i.duplicates.load(Ordering::Relaxed),
            reassembly_rejects: i.reassembly_rejects.load(Ordering::Relaxed),
            mangled_corrupt: i.mangled_corrupt.load(Ordering::Relaxed),
            mangled_truncate: i.mangled_truncate.load(Ordering::Relaxed),
            mangled_reorder: i.mangled_reorder.load(Ordering::Relaxed),
        }
    }

    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    fn absorb_decode_delta(&self, prev: &mut DecodeStats, now: DecodeStats) {
        Self::add(&self.inner.rx_frames, now.frames - prev.frames);
        Self::add(&self.inner.checksum_rejects, now.rejected - prev.rejected);
        Self::add(&self.inner.resyncs, now.resyncs - prev.resyncs);
        *prev = now;
    }

    fn absorb_reassembly_delta(&self, prev: &mut ReassemblyStats, now: ReassemblyStats) {
        Self::add(&self.inner.rx_messages, now.messages - prev.messages);
        Self::add(
            &self.inner.multi_chunk_rx,
            now.multi_chunk - prev.multi_chunk,
        );
        Self::add(&self.inner.duplicates, now.duplicates - prev.duplicates);
        Self::add(&self.inner.reassembly_rejects, now.rejected - prev.rejected);
        *prev = now;
    }

    fn record_send(&self, frames: &[Vec<u8>]) {
        Self::add(&self.inner.tx_messages, 1);
        Self::add(&self.inner.tx_frames, frames.len() as u64);
        if frames.len() > 1 {
            Self::add(&self.inner.multi_chunk_tx, 1);
        }
    }

    fn record_mangle(&self, report: crate::fault::MangleReport) {
        Self::add(&self.inner.mangled_corrupt, report.corrupted);
        Self::add(&self.inner.mangled_truncate, report.truncated);
        Self::add(&self.inner.mangled_reorder, report.reordered);
    }
}

/// Mirrors endpoint traffic into the shared telemetry registry and, when
/// recording, the event stream.
#[derive(Clone)]
struct TeleMirror {
    telemetry: Telemetry,
    start: Instant,
    tx_bytes: oddci_telemetry::Counter,
    rx_bytes: oddci_telemetry::Counter,
    tx_frames: oddci_telemetry::Counter,
    rx_frames: oddci_telemetry::Counter,
    connections: oddci_telemetry::Gauge,
}

impl TeleMirror {
    fn new(telemetry: Telemetry, start: Instant) -> TeleMirror {
        let reg = telemetry.registry();
        TeleMirror {
            tx_bytes: reg.counter("wire.tx.bytes"),
            rx_bytes: reg.counter("wire.rx.bytes"),
            tx_frames: reg.counter("wire.tx.frames"),
            rx_frames: reg.counter("wire.rx.frames"),
            connections: reg.gauge("wire.connections"),
            telemetry,
            start,
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn instant(&self, phase: Phase, track: u64, scope: u64) {
        self.telemetry.instant(self.now_us(), phase, track, scope);
    }
}

/// What a [`WireService`] hands back to the serving loop: messages to
/// write and, possibly, a request to wind the server down.
#[derive(Debug, Default)]
pub struct Outbox {
    queue: Vec<(Option<ConnId>, WireMsg)>,
    stop: bool,
}

impl Outbox {
    /// An empty outbox (exposed so service implementations can be unit
    /// tested without a socket).
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queues `msg` for one connection.
    pub fn send(&mut self, conn: ConnId, msg: WireMsg) {
        self.queue.push((Some(conn), msg));
    }

    /// Queues `msg` for every open connection.
    pub fn broadcast(&mut self, msg: WireMsg) {
        self.queue.push((None, msg));
    }

    /// Asks the serving loop to drain its buffers and exit.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// Messages queued so far (for service unit tests).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// The application half of a [`WireServer`]: the serving loop owns the
/// sockets, the service owns the protocol. All callbacks run on the
/// serving thread, so implementations need no internal locking for
/// per-connection state.
pub trait WireService: Send {
    /// A connection was accepted.
    fn on_connect(&mut self, _conn: ConnId, _out: &mut Outbox) {}

    /// A complete message arrived on `conn`.
    fn on_message(&mut self, conn: ConnId, msg: WireMsg, out: &mut Outbox);

    /// `conn` closed (EOF or error). Queued output for it is dropped.
    fn on_disconnect(&mut self, _conn: ConnId, _out: &mut Outbox) {}

    /// Called once per loop iteration regardless of traffic — the place
    /// to surface replies that became ready on internal channels.
    fn poll(&mut self, _out: &mut Outbox) {}
}

/// Configuration of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Frame checksum flavour (HMAC in the live plane).
    pub integrity: Integrity,
    /// Chunk payload size for outbound messages.
    pub max_chunk: usize,
    /// Sleep per loop iteration when no traffic moved.
    pub idle_sleep: Duration,
    /// How long a stopping server keeps flushing unsent output.
    pub drain_grace: Duration,
    /// Wire fault injector (disabled by default); outbound frames to
    /// connection *n* mangle under `NodeId(n)`.
    pub injector: FaultInjector,
    /// Telemetry handle for counters and `wire.*` instants.
    pub telemetry: Telemetry,
    /// Per-connection counter ledger (off by default). The serving loop
    /// writes it; keep a clone of the `Arc` to read it elsewhere.
    pub conn_stats: Option<Arc<ConnStatsHub>>,
}

impl ServerConfig {
    /// Defaults: 16 KiB chunks, 500 µs idle sleep, 2 s drain grace, no
    /// faults, telemetry off, no per-connection ledger.
    pub fn new(integrity: Integrity) -> ServerConfig {
        ServerConfig {
            integrity,
            max_chunk: DEFAULT_CHUNK,
            idle_sleep: Duration::from_micros(500),
            drain_grace: Duration::from_secs(2),
            injector: FaultInjector::disabled(),
            telemetry: Telemetry::disabled(),
            conn_stats: None,
        }
    }
}

struct ServerConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    reassembler: Reassembler,
    prev_decode: DecodeStats,
    prev_reassembly: ReassemblyStats,
    outbuf: Vec<u8>,
    out_pos: usize,
    next_seq: u64,
    open: bool,
}

impl ServerConn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }
}

/// A headend-side socket endpoint: binds, accepts, and runs a
/// [`WireService`] on a single serving thread until stopped.
pub struct WireServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    stats: WireStats,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// serving loop with `service`.
    pub fn bind<S: WireService + 'static>(
        addr: SocketAddr,
        config: ServerConfig,
        service: S,
    ) -> Result<WireServer, WireError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = WireStats::new();
        let thread_stop = Arc::clone(&stop);
        let thread_stats = stats.clone();
        let handle = thread::Builder::new()
            .name("wire-server".into())
            .spawn(move || {
                serve(listener, config, service, thread_stop, thread_stats);
            })
            .map_err(WireError::Io)?;
        Ok(WireServer {
            local_addr,
            stop,
            handle: Some(handle),
            stats,
        })
    }

    /// The bound address (reports the ephemeral port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's traffic counters.
    pub fn stats(&self) -> WireStats {
        self.stats.clone()
    }

    /// Stops the serving loop (after its drain grace) and joins it.
    /// Returns `false` if the serving thread had panicked.
    pub fn stop(&mut self) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        match self.handle.take() {
            Some(h) => h.join().is_ok(),
            None => true,
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The serving loop body. Runs on the dedicated server thread.
fn serve<S: WireService>(
    listener: TcpListener,
    config: ServerConfig,
    mut service: S,
    stop: Arc<AtomicBool>,
    stats: WireStats,
) {
    let start = Instant::now();
    let mirror = TeleMirror::new(config.telemetry.clone(), start);
    let mut conns: BTreeMap<ConnId, ServerConn> = BTreeMap::new();
    let mut next_conn: u64 = 1;
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut outbox = Outbox::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let stopping = stop.load(Ordering::SeqCst);
        let mut progressed = false;

        // 1. Accept (not while stopping: the fleet is winding down).
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let conn = ConnId(next_conn);
                        next_conn += 1;
                        conns.insert(
                            conn,
                            ServerConn {
                                stream,
                                decoder: FrameDecoder::new(config.integrity.clone()),
                                reassembler: Reassembler::new(),
                                prev_decode: DecodeStats::default(),
                                prev_reassembly: ReassemblyStats::default(),
                                outbuf: Vec::new(),
                                out_pos: 0,
                                next_seq: 0,
                                open: true,
                            },
                        );
                        WireStats::add(&stats.inner.accepted, 1);
                        WireStats::add(&stats.inner.open, 1);
                        if let Some(hub) = &config.conn_stats {
                            hub.update(conn.raw(), |t| t.open = true);
                        }
                        mirror.connections.set(conns.len() as f64);
                        mirror.instant(Phase::WireConnect, conn.raw(), 0);
                        service.on_connect(conn, &mut outbox);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 2. Read every connection and deliver completed messages.
        let ids: Vec<ConnId> = conns.keys().copied().collect();
        for conn_id in &ids {
            let Some(conn) = conns.get_mut(conn_id) else {
                continue;
            };
            if !conn.open {
                continue;
            }
            loop {
                match conn.stream.read(&mut read_buf) {
                    Ok(0) => {
                        conn.open = false;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        WireStats::add(&stats.inner.rx_bytes, n as u64);
                        mirror.rx_bytes.add(n as u64);
                        if let Some(hub) = &config.conn_stats {
                            hub.update(conn_id.raw(), |t| t.rx_bytes += n as u64);
                        }
                        conn.decoder.extend(&read_buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.open = false;
                        break;
                    }
                }
            }
            let mut delivered = Vec::new();
            while let Some(frame) = conn.decoder.next_frame() {
                if let Some(msg) = conn.reassembler.push(frame) {
                    if let Ok(decoded) = WireMsg::decode(msg.kind, &msg.payload) {
                        delivered.push((decoded, msg.seq));
                    }
                }
            }
            let decode_now = conn.decoder.stats();
            let reassembly_now = conn.reassembler.stats();
            if let Some(hub) = &config.conn_stats {
                hub.update(conn_id.raw(), |t| {
                    t.rx_frames += decode_now.frames - conn.prev_decode.frames;
                    t.checksum_rejects += decode_now.rejected - conn.prev_decode.rejected;
                    t.resyncs += decode_now.resyncs - conn.prev_decode.resyncs;
                });
            }
            stats.absorb_decode_delta(&mut conn.prev_decode, decode_now);
            stats.absorb_reassembly_delta(&mut conn.prev_reassembly, reassembly_now);
            mirror
                .rx_frames
                .set(stats.inner.rx_frames.load(Ordering::Relaxed));
            for (msg, seq) in delivered {
                progressed = true;
                mirror.instant(Phase::WireRx, conn_id.raw(), seq);
                service.on_message(*conn_id, msg, &mut outbox);
            }
        }

        // 3. Give the service its tick.
        service.poll(&mut outbox);

        // 4. Encode the outbox into per-connection buffers.
        if outbox.stop {
            stop.store(true, Ordering::SeqCst);
            outbox.stop = false;
        }
        let queue = std::mem::take(&mut outbox.queue);
        for (target, msg) in queue {
            progressed = true;
            let payload = msg.encode();
            let kind = msg.kind();
            let targets: Vec<ConnId> = match target {
                Some(c) => vec![c],
                None => conns
                    .iter()
                    .filter(|(_, c)| c.open)
                    .map(|(id, _)| *id)
                    .collect(),
            };
            for conn_id in targets {
                let Some(conn) = conns.get_mut(&conn_id) else {
                    continue;
                };
                if !conn.open {
                    continue;
                }
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let mut frames =
                    encode_chunks(&config.integrity, kind, seq, &payload, config.max_chunk);
                stats.record_send(&frames);
                let now = SimTime::from_micros(start.elapsed().as_micros() as u64);
                let report = mangle_frames(
                    &config.injector,
                    NodeId::new(conn_id.raw()),
                    now,
                    &mut frames,
                );
                stats.record_mangle(report);
                mirror.instant(Phase::WireTx, conn_id.raw(), seq);
                if let Some(hub) = &config.conn_stats {
                    hub.update(conn_id.raw(), |t| t.tx_frames += frames.len() as u64);
                }
                for frame in &frames {
                    mirror.tx_frames.inc();
                    conn.outbuf.extend_from_slice(frame);
                }
            }
        }

        // 5. Flush output buffers.
        for (conn_id, conn) in conns.iter_mut() {
            if !conn.open || conn.pending_out() == 0 {
                continue;
            }
            loop {
                let pending = &conn.outbuf[conn.out_pos..];
                if pending.is_empty() {
                    break;
                }
                match conn.stream.write(pending) {
                    Ok(0) => {
                        conn.open = false;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        conn.out_pos += n;
                        WireStats::add(&stats.inner.tx_bytes, n as u64);
                        mirror.tx_bytes.add(n as u64);
                        if let Some(hub) = &config.conn_stats {
                            hub.update(conn_id.raw(), |t| t.tx_bytes += n as u64);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.open = false;
                        break;
                    }
                }
            }
            if conn.out_pos == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.out_pos = 0;
            } else if conn.out_pos > 64 * 1024 {
                conn.outbuf.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
        }

        // 6. Reap closed connections.
        let closed: Vec<ConnId> = conns
            .iter()
            .filter(|(_, c)| !c.open)
            .map(|(id, _)| *id)
            .collect();
        for conn_id in closed {
            conns.remove(&conn_id);
            if let Some(hub) = &config.conn_stats {
                hub.update(conn_id.raw(), |t| t.open = false);
            }
            let open_now = stats.inner.open.load(Ordering::Relaxed).saturating_sub(1);
            stats.inner.open.store(open_now, Ordering::Relaxed);
            mirror.connections.set(conns.len() as f64);
            service.on_disconnect(conn_id, &mut outbox);
            progressed = true;
        }

        // 7. Stop once drained (or when the grace period expires).
        if stopping {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + config.drain_grace);
            let drained = conns.values().all(|c| c.pending_out() == 0);
            if drained || Instant::now() >= deadline {
                for conn in conns.values() {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
                return;
            }
        }

        if !progressed {
            thread::sleep(config.idle_sleep);
        }
    }
}

/// Configuration of a [`WireClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Frame checksum flavour — must match the server's.
    pub integrity: Integrity,
    /// Chunk payload size for outbound messages.
    pub max_chunk: usize,
    /// How long [`WireClient::connect`] keeps retrying the dial.
    pub connect_timeout: Duration,
    /// Wire fault injector for outbound frames (disabled by default).
    pub injector: FaultInjector,
    /// Node identity used for fault rolls and telemetry tracks.
    pub node: NodeId,
    /// Telemetry handle for counters and `wire.*` instants.
    pub telemetry: Telemetry,
}

impl ClientConfig {
    /// Defaults: 16 KiB chunks, 5 s connect timeout, no faults,
    /// telemetry off, node 0.
    pub fn new(integrity: Integrity) -> ClientConfig {
        ClientConfig {
            integrity,
            max_chunk: DEFAULT_CHUNK,
            connect_timeout: Duration::from_secs(5),
            injector: FaultInjector::disabled(),
            node: NodeId::new(0),
            telemetry: Telemetry::disabled(),
        }
    }
}

struct ClientWriter {
    stream: TcpStream,
    next_seq: u64,
}

/// A PNA-side direct channel: one TCP connection to the headend with a
/// background reader thread decoding inbound messages onto a channel.
pub struct WireClient {
    writer: Mutex<ClientWriter>,
    rx: Receiver<WireMsg>,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
    stats: WireStats,
    config: ClientConfig,
    start: Instant,
    mirror: TeleMirror,
}

impl WireClient {
    /// Dials `addr`, retrying until `config.connect_timeout` expires
    /// (the headend may still be binding when a PNA process starts).
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<WireClient, WireError> {
        let start = Instant::now();
        let deadline = start + config.connect_timeout;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(WireError::Io(e));
                    }
                    thread::sleep(Duration::from_millis(20));
                }
            }
        };
        let _ = stream.set_nodelay(true);
        let reader_stream = stream.try_clone()?;
        reader_stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let stats = WireStats::new();
        WireStats::add(&stats.inner.accepted, 1);
        WireStats::add(&stats.inner.open, 1);
        let mirror = TeleMirror::new(config.telemetry.clone(), start);
        mirror.instant(Phase::WireConnect, config.node.raw(), 0);
        mirror.connections.set(1.0);
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync::unbounded();
        let reader = {
            let stop = Arc::clone(&stop);
            let stats = stats.clone();
            let mirror = mirror.clone();
            let integrity = config.integrity.clone();
            let node = config.node;
            thread::Builder::new()
                .name("wire-client-reader".into())
                .spawn(move || {
                    read_loop(reader_stream, integrity, node, tx, stop, stats, mirror);
                })
                .map_err(WireError::Io)?
        };
        Ok(WireClient {
            writer: Mutex::named(
                ClientWriter {
                    stream,
                    next_seq: 0,
                },
                "wire.client.writer",
            ),
            rx,
            stop,
            reader: Some(reader),
            stats,
            config,
            start,
            mirror,
        })
    }

    /// Encodes and writes `msg`. Returns `false` once the connection is
    /// gone (callers treat that like a dropped channel).
    pub fn send(&self, msg: &WireMsg) -> bool {
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        let payload = msg.encode();
        let mut w = self.writer.lock();
        let seq = w.next_seq;
        w.next_seq += 1;
        let mut frames = encode_chunks(
            &self.config.integrity,
            msg.kind(),
            seq,
            &payload,
            self.config.max_chunk,
        );
        self.stats.record_send(&frames);
        let now = SimTime::from_micros(self.start.elapsed().as_micros() as u64);
        let report = mangle_frames(&self.config.injector, self.config.node, now, &mut frames);
        self.stats.record_mangle(report);
        self.mirror
            .instant(Phase::WireTx, self.config.node.raw(), seq);
        for frame in &frames {
            if w.stream.write_all(frame).is_err() {
                return false;
            }
            WireStats::add(&self.stats.inner.tx_bytes, frame.len() as u64);
            self.mirror.tx_bytes.add(frame.len() as u64);
            self.mirror.tx_frames.inc();
        }
        true
    }

    /// The inbound message channel (fed by the reader thread; closes
    /// when the connection dies).
    pub fn receiver(&self) -> &Receiver<WireMsg> {
        &self.rx
    }

    /// The client's traffic counters.
    pub fn stats(&self) -> WireStats {
        self.stats.clone()
    }

    /// True once the reader thread has observed EOF or a socket error.
    pub fn is_closed(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Signals the connection to wind down from a shared (`&self`)
    /// handle: stops new sends, shuts the socket so the reader thread's
    /// pending read fails fast, and lets the inbound channel close. Use
    /// when the client sits behind an `Arc`; [`close`](WireClient::close)
    /// (or drop) still joins the reader afterwards.
    pub fn request_close(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let w = self.writer.lock();
        let _ = w.stream.shutdown(Shutdown::Both);
    }

    /// Shuts the socket down and joins the reader thread.
    pub fn close(&mut self) {
        self.request_close();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        self.mirror.connections.set(0.0);
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        self.close();
    }
}

/// The client reader thread: socket bytes → frames → messages → channel.
fn read_loop(
    mut stream: TcpStream,
    integrity: Integrity,
    node: NodeId,
    tx: sync::Sender<WireMsg>,
    stop: Arc<AtomicBool>,
    stats: WireStats,
    mirror: TeleMirror,
) {
    let mut decoder = FrameDecoder::new(integrity);
    let mut reassembler = Reassembler::new();
    let mut prev_decode = DecodeStats::default();
    let mut prev_reassembly = ReassemblyStats::default();
    let mut buf = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                WireStats::add(&stats.inner.rx_bytes, n as u64);
                mirror.rx_bytes.add(n as u64);
                decoder.extend(&buf[..n]);
                let mut delivered = Vec::new();
                while let Some(frame) = decoder.next_frame() {
                    mirror.rx_frames.inc();
                    if let Some(msg) = reassembler.push(frame) {
                        if let Ok(decoded) = WireMsg::decode(msg.kind, &msg.payload) {
                            delivered.push((decoded, msg.seq));
                        }
                    }
                }
                // Publish counters before handing messages out, so a
                // receiver that reads stats right after a recv sees them.
                stats.absorb_decode_delta(&mut prev_decode, decoder.stats());
                stats.absorb_reassembly_delta(&mut prev_reassembly, reassembler.stats());
                for (decoded, seq) in delivered {
                    mirror.instant(Phase::WireRx, node.raw(), seq);
                    if tx.send(decoded).is_err() {
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    stop.store(true, Ordering::SeqCst);
    let open = stats.inner.open.load(Ordering::Relaxed).saturating_sub(1);
    stats.inner.open.store(open, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireMsg;
    use std::net::{IpAddr, Ipv4Addr};

    fn loopback() -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
    }

    /// Echoes every message back to its sender.
    struct Echo;
    impl WireService for Echo {
        fn on_message(&mut self, conn: ConnId, msg: WireMsg, out: &mut Outbox) {
            out.send(conn, msg);
        }
    }

    fn client(addr: SocketAddr, integrity: Integrity) -> WireClient {
        WireClient::connect(addr, ClientConfig::new(integrity)).expect("connect")
    }

    #[test]
    fn echo_round_trip_over_loopback() {
        let mut server = WireServer::bind(
            loopback(),
            ServerConfig::new(Integrity::hmac(b"test-key")),
            Echo,
        )
        .expect("bind");
        let mut c = client(server.local_addr(), Integrity::hmac(b"test-key"));
        assert!(c.send(&WireMsg::Hello {
            proto: crate::message::PROTO_VERSION,
            epoch: 0,
            resume: None,
        }));
        let back = c
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("echo");
        assert!(
            matches!(back, WireMsg::Hello { proto, .. } if proto == crate::message::PROTO_VERSION)
        );
        c.close();
        assert!(server.stop(), "serving thread exited cleanly");
    }

    fn signed_reset() -> oddci_core::messages::SignedMessage {
        use oddci_core::messages::{ControlMessage, ResetMessage, SignedMessage};
        use oddci_crypto::MessageAuthenticator;
        use oddci_types::{InstanceId, MessageId};
        SignedMessage::sign(
            ControlMessage::Reset(ResetMessage {
                id: MessageId::new(1),
                instance: InstanceId::new(1),
            }),
            &MessageAuthenticator::from_key(b"test-key"),
        )
    }

    #[test]
    fn large_broadcast_streams_in_many_chunks() {
        /// Broadcasts one big image blob at the first connection.
        struct Blast {
            sent: bool,
        }
        impl WireService for Blast {
            fn on_message(&mut self, _conn: ConnId, _msg: WireMsg, _out: &mut Outbox) {}
            fn on_connect(&mut self, _conn: ConnId, out: &mut Outbox) {
                if !self.sent {
                    self.sent = true;
                    out.broadcast(WireMsg::Broadcast {
                        signed: signed_reset(),
                        image: Some(vec![0xAB; 100_000]),
                    });
                }
            }
        }
        let mut config = ServerConfig::new(Integrity::Crc32);
        config.max_chunk = 4096;
        let mut server = WireServer::bind(loopback(), config, Blast { sent: false }).expect("bind");
        let mut c = client(server.local_addr(), Integrity::Crc32);
        let msg = c
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("broadcast arrives");
        match msg {
            WireMsg::Broadcast { image, .. } => {
                assert_eq!(image.map(|i| i.len()), Some(100_000));
            }
            other => panic!("unexpected {other:?}"),
        }
        let snap = c.stats().snapshot();
        assert!(snap.multi_chunk_rx >= 1, "blob arrived in many frames");
        let server_snap = server.stats().snapshot();
        assert!(server_snap.multi_chunk_tx >= 1);
        c.close();
        server.stop();
    }

    #[test]
    fn several_clients_multiplex_one_server() {
        /// Replies to each hello with the sender's connection number.
        struct Who;
        impl WireService for Who {
            fn on_message(&mut self, conn: ConnId, _msg: WireMsg, out: &mut Outbox) {
                out.send(
                    conn,
                    WireMsg::HelloAck {
                        node: NodeId::new(conn.raw()),
                        epoch: 1,
                    },
                );
            }
        }
        let mut server =
            WireServer::bind(loopback(), ServerConfig::new(Integrity::Crc32), Who).expect("bind");
        let addr = server.local_addr();
        let mut clients: Vec<WireClient> = (0..4).map(|_| client(addr, Integrity::Crc32)).collect();
        let mut seen = std::collections::BTreeSet::new();
        for c in &clients {
            assert!(c.send(&WireMsg::Hello {
                proto: crate::message::PROTO_VERSION,
                epoch: 0,
                resume: None,
            }));
            match c
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("ack")
            {
                WireMsg::HelloAck { node, .. } => {
                    seen.insert(node.raw());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen.len(), 4, "each client got a distinct identity");
        for c in &mut clients {
            c.close();
        }
        assert!(server.stop());
    }

    #[test]
    fn shutdown_broadcast_drains_before_exit() {
        /// Broadcasts shutdown and stops the server from inside poll.
        struct OneShot {
            fired: bool,
            conns: usize,
        }
        impl WireService for OneShot {
            fn on_connect(&mut self, _conn: ConnId, _out: &mut Outbox) {
                self.conns += 1;
            }
            fn on_message(&mut self, _conn: ConnId, _msg: WireMsg, _out: &mut Outbox) {}
            fn poll(&mut self, out: &mut Outbox) {
                if self.conns >= 2 && !self.fired {
                    self.fired = true;
                    out.broadcast(WireMsg::Shutdown);
                    out.request_stop();
                }
            }
        }
        let mut server = WireServer::bind(
            loopback(),
            ServerConfig::new(Integrity::Crc32),
            OneShot {
                fired: false,
                conns: 0,
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let mut a = client(addr, Integrity::Crc32);
        let mut b = client(addr, Integrity::Crc32);
        for c in [&a, &b] {
            let msg = c
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("shutdown reaches the client even as the server exits");
            assert!(matches!(msg, WireMsg::Shutdown));
        }
        assert!(server.stop());
        a.close();
        b.close();
    }

    #[test]
    fn corrupting_injector_on_loopback_is_survivable() {
        use oddci_faults::{FaultClass, FaultPlan, FaultSpec};
        let mut config = ServerConfig::new(Integrity::Crc32);
        config.injector = FaultInjector::new(
            FaultPlan::none().with(FaultSpec::new(FaultClass::FrameReorder, 1.0)),
            11,
        );
        config.max_chunk = 64;
        struct Echo2;
        impl WireService for Echo2 {
            fn on_message(&mut self, conn: ConnId, msg: WireMsg, out: &mut Outbox) {
                out.send(conn, msg);
            }
        }
        let mut server = WireServer::bind(loopback(), config, Echo2).expect("bind");
        let mut c = client(server.local_addr(), Integrity::Crc32);
        // A message spanning several chunks gets its first frames swapped
        // by the injector on every send; reassembly must still deliver.
        let big = WireMsg::Broadcast {
            signed: signed_reset(),
            image: Some(vec![0x5A; 400]),
        };
        assert!(c.send(&big));
        let echoed = c
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("reordered frames still reassemble");
        match echoed {
            WireMsg::Broadcast { image, .. } => assert_eq!(image, Some(vec![0x5A; 400])),
            other => panic!("unexpected {other:?}"),
        }
        assert!(server.stats().snapshot().mangled_reorder >= 1);
        c.close();
        server.stop();
    }
}
