//! Minimal little-endian binary codec shared by the wire message
//! vocabulary (and by `oddci-live`'s image payloads).
//!
//! Hand-rolled on purpose: payload encoding must be byte-deterministic
//! (the envelope checksums it), compact (wakeup images dominate traffic)
//! and free of external parser dependencies. Every reader method is
//! length-checked and returns [`WireError::Malformed`] instead of
//! panicking — decoded bytes come straight off a socket.

use crate::WireError;

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// A writer pre-sized for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` (LE).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32` (LE, two's complement).
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a length-prefixed (`u32`) byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based little-endian byte reader, mirror of [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (catches trailing garbage).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after message"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed("message ends mid-field"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` (LE).
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i32` (LE, two's complement).
    pub fn i32(&mut self) -> Result<i32, WireError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte out of range")),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_type() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX - 3);
        w.i32(-123_456);
        w.f64(0.1 + 0.2);
        w.bool(true);
        w.bytes(b"payload");
        let enc = w.into_bytes();
        let mut r = Reader::new(&enc);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -123_456);
        assert_eq!(r.f64().unwrap(), 0.1 + 0.2);
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u64().is_err());
        let mut r = Reader::new(&[255, 255, 255, 255]); // length prefix 4 GiB
        assert!(r.bytes().is_err());
    }

    #[test]
    fn finish_catches_trailing_garbage() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let enc = w.into_bytes();
        let mut r = Reader::new(&enc);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.finish().is_err());
    }
}
