//! The frame layer: a fixed 36-byte header, an integrity check, and a
//! resynchronizing stream decoder.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "ODWF"
//!      4     1  version (currently 1)
//!      5     1  kind (message kind, shared by all chunks of a message)
//!      6     2  reserved (zero)
//!      8     8  seq (per-connection monotonic message number)
//!     16     4  chunk_index
//!     20     4  chunk_count (>= 1)
//!     24     4  payload_len
//!     28     8  check (CRC32 zero-extended, or truncated HMAC-SHA256)
//!     36     …  payload
//! ```
//!
//! The check covers bytes `4..28` of the header (everything after the
//! magic, before the check itself) plus the payload, so a flipped bit
//! anywhere a fault can reach is caught. The decoder treats the magic as
//! a resynchronization point: after a corrupt or truncated frame it
//! scans forward for the next magic and resumes — one bad frame never
//! desynchronizes the connection.

use oddci_crypto::MessageAuthenticator;

/// Frame magic: the four bytes every frame starts with.
pub const MAGIC: [u8; 4] = *b"ODWF";
/// Protocol version carried in every header.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 36;
/// Default chunk payload size used by the transports.
pub const DEFAULT_CHUNK: usize = 16 * 1024;
/// Largest per-frame payload the decoder accepts (a header claiming more
/// is treated as corrupt).
pub const MAX_FRAME_PAYLOAD: usize = 256 * 1024;

/// How frames are checksummed.
///
/// `Crc32` detects accidental corruption; `Hmac` additionally
/// authenticates every frame with the controller key (the live plane
/// default — transport integrity rides the same key that signs control
/// messages).
#[derive(Clone)]
pub enum Integrity {
    /// IEEE CRC-32, zero-extended into the 8-byte check field.
    Crc32,
    /// HMAC-SHA256 truncated to 8 bytes, keyed via `oddci-crypto`.
    Hmac(MessageAuthenticator),
}

impl std::fmt::Debug for Integrity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Integrity::Crc32 => f.write_str("Integrity::Crc32"),
            Integrity::Hmac(_) => f.write_str("Integrity::Hmac(..)"),
        }
    }
}

impl Integrity {
    /// The HMAC flavour, keyed with `key` (use the controller key).
    pub fn hmac(key: &[u8]) -> Integrity {
        Integrity::Hmac(MessageAuthenticator::from_key(key))
    }

    /// The 8-byte check over a header core (bytes `4..28`) and payload.
    fn check(&self, header_core: &[u8], payload: &[u8]) -> u64 {
        match self {
            Integrity::Crc32 => u64::from(crc32_parts(&[header_core, payload])),
            Integrity::Hmac(auth) => {
                let mut buf = Vec::with_capacity(header_core.len() + payload.len());
                buf.extend_from_slice(header_core);
                buf.extend_from_slice(payload);
                let tag = auth.sign(&buf);
                u64::from_le_bytes([
                    tag[0], tag[1], tag[2], tag[3], tag[4], tag[5], tag[6], tag[7],
                ])
            }
        }
    }
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 over the concatenation of `parts`.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// One decoded frame: a chunk of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind (shared by every chunk of the message).
    pub kind: u8,
    /// Per-connection monotonic message number.
    pub seq: u64,
    /// This chunk's index within the message.
    pub chunk_index: u32,
    /// Total chunks in the message (>= 1).
    pub chunk_count: u32,
    /// The chunk payload.
    pub payload: Vec<u8>,
}

/// Encodes one frame into its wire bytes.
pub fn encode_frame(
    integrity: &Integrity,
    kind: u8,
    seq: u64,
    chunk_index: u32,
    chunk_count: u32,
    payload: &[u8],
) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    debug_assert!(chunk_count >= 1 && chunk_index < chunk_count);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&chunk_index.to_le_bytes());
    out.extend_from_slice(&chunk_count.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let check = integrity.check(&out[4..28], payload);
    out.extend_from_slice(&check.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Counters the decoder keeps about one byte stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Frames decoded and checksum-verified.
    pub frames: u64,
    /// Frames rejected on a failed check or malformed header.
    pub rejected: u64,
    /// Times the decoder had to scan forward for the next magic.
    pub resyncs: u64,
}

/// Incremental frame decoder over a byte stream.
///
/// Feed raw socket bytes with [`extend`](FrameDecoder::extend), then
/// drain frames with [`next_frame`](FrameDecoder::next_frame). Corrupt,
/// truncated or malformed input is counted and skipped: the decoder
/// resynchronizes on the next [`MAGIC`].
#[derive(Debug)]
pub struct FrameDecoder {
    integrity: Integrity,
    buf: Vec<u8>,
    stats: DecodeStats,
}

impl FrameDecoder {
    /// A decoder validating frames with `integrity`.
    pub fn new(integrity: Integrity) -> FrameDecoder {
        FrameDecoder {
            integrity,
            buf: Vec::new(),
            stats: DecodeStats::default(),
        }
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Stream counters so far.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Drops `n` bytes from the front of the buffer.
    fn skip(&mut self, n: usize) {
        self.buf.drain(..n.min(self.buf.len()));
    }

    /// Aligns the buffer start on the next magic. Returns `false` when no
    /// magic is in the buffer (all but a potential magic prefix dropped).
    fn align_to_magic(&mut self) -> bool {
        if self.buf.len() >= 4 && self.buf[..4] == MAGIC {
            return true;
        }
        match self
            .buf
            .windows(4)
            .skip(1)
            .position(|w| w == MAGIC)
            .map(|p| p + 1)
        {
            Some(p) => {
                self.skip(p);
                self.stats.resyncs += 1;
                true
            }
            None => {
                // Keep a potential partial magic at the tail.
                let keep = self.buf.len().min(3);
                let dropped = self.buf.len() - keep;
                if dropped > 0 {
                    self.skip(dropped);
                    self.stats.resyncs += 1;
                }
                false
            }
        }
    }

    /// The next verified frame, if one is complete in the buffer.
    pub fn next_frame(&mut self) -> Option<Frame> {
        loop {
            if !self.align_to_magic() || self.buf.len() < HEADER_LEN {
                return None;
            }
            let h = &self.buf[..HEADER_LEN];
            let version = h[4];
            let kind = h[5];
            let seq = u64::from_le_bytes([h[8], h[9], h[10], h[11], h[12], h[13], h[14], h[15]]);
            let chunk_index = u32::from_le_bytes([h[16], h[17], h[18], h[19]]);
            let chunk_count = u32::from_le_bytes([h[20], h[21], h[22], h[23]]);
            let payload_len = u32::from_le_bytes([h[24], h[25], h[26], h[27]]) as usize;
            let check =
                u64::from_le_bytes([h[28], h[29], h[30], h[31], h[32], h[33], h[34], h[35]]);
            let sane = version == VERSION
                && payload_len <= MAX_FRAME_PAYLOAD
                && chunk_count >= 1
                && chunk_index < chunk_count;
            if !sane {
                // Malformed header: reject and rescan one byte in (the
                // real next frame may start inside what we just read).
                self.stats.rejected += 1;
                self.skip(1);
                continue;
            }
            if self.buf.len() < HEADER_LEN + payload_len {
                return None;
            }
            let payload = &self.buf[HEADER_LEN..HEADER_LEN + payload_len];
            if self.integrity.check(&self.buf[4..28], payload) != check {
                self.stats.rejected += 1;
                self.skip(1);
                continue;
            }
            let frame = Frame {
                kind,
                seq,
                chunk_index,
                chunk_count,
                payload: payload.to_vec(),
            };
            self.skip(HEADER_LEN + payload_len);
            self.stats.frames += 1;
            return Some(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(dec: &mut FrameDecoder) -> Vec<Frame> {
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame() {
            out.push(f);
        }
        out
    }

    #[test]
    fn round_trip_both_integrities() {
        for integrity in [Integrity::Crc32, Integrity::hmac(b"key")] {
            let bytes = encode_frame(&integrity, 3, 7, 0, 1, b"hello wire");
            let mut dec = FrameDecoder::new(integrity);
            dec.extend(&bytes);
            let frames = decode_all(&mut dec);
            assert_eq!(frames.len(), 1);
            assert_eq!(frames[0].kind, 3);
            assert_eq!(frames[0].seq, 7);
            assert_eq!(frames[0].payload, b"hello wire");
            assert_eq!(dec.stats().rejected, 0);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_frame(&Integrity::Crc32, 9, 0, 0, 1, b"");
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        dec.extend(&bytes);
        let frames = decode_all(&mut dec);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].payload.is_empty());
    }

    #[test]
    fn byte_at_a_time_feeding_works() {
        let bytes = encode_frame(&Integrity::Crc32, 1, 1, 0, 1, &[0xAB; 100]);
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        let mut got = Vec::new();
        for b in &bytes {
            dec.extend(std::slice::from_ref(b));
            got.extend(decode_all(&mut dec));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, vec![0xAB; 100]);
    }

    #[test]
    fn flipped_bit_is_rejected_and_next_frame_survives() {
        let good = encode_frame(&Integrity::hmac(b"k"), 1, 1, 0, 1, &[1, 2, 3, 4]);
        let mut bad = encode_frame(&Integrity::hmac(b"k"), 1, 0, 0, 1, &[9, 9, 9, 9]);
        bad[HEADER_LEN + 2] ^= 0x10; // corrupt the payload
        let mut dec = FrameDecoder::new(Integrity::hmac(b"k"));
        dec.extend(&bad);
        dec.extend(&good);
        let frames = decode_all(&mut dec);
        assert_eq!(frames.len(), 1, "only the good frame is delivered");
        assert_eq!(frames[0].payload, vec![1, 2, 3, 4]);
        assert!(dec.stats().rejected >= 1);
    }

    #[test]
    fn truncated_frame_resyncs_on_next_magic() {
        // A truncated frame is indistinguishable from a partial arrival
        // until enough later bytes land to cover its claimed length, so
        // follow it with more traffic than it is missing — the steady
        // heartbeat stream plays that role on a real connection.
        let mut truncated = encode_frame(&Integrity::Crc32, 1, 0, 0, 1, &[7; 100]);
        truncated.truncate(truncated.len() / 2);
        let good = encode_frame(&Integrity::Crc32, 2, 1, 0, 1, &[8; 500]);
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        dec.extend(&truncated);
        dec.extend(&good);
        let frames = decode_all(&mut dec);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].kind, 2);
        assert_eq!(frames[0].payload, vec![8; 500]);
        assert!(dec.stats().rejected >= 1);
    }

    #[test]
    fn garbage_prefix_is_skipped() {
        let good = encode_frame(&Integrity::Crc32, 5, 3, 0, 1, b"x");
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        dec.extend(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42]);
        dec.extend(&good);
        let frames = decode_all(&mut dec);
        assert_eq!(frames.len(), 1);
        assert!(dec.stats().resyncs >= 1);
    }

    #[test]
    fn wrong_key_rejects_everything() {
        let bytes = encode_frame(&Integrity::hmac(b"alice"), 1, 0, 0, 1, b"secret");
        let mut dec = FrameDecoder::new(Integrity::hmac(b"mallory"));
        dec.extend(&bytes);
        assert!(decode_all(&mut dec).is_empty());
        assert!(dec.stats().rejected >= 1);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 of "123456789".
        assert_eq!(crc32_parts(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), 0xCBF4_3926);
    }
}
