//! The envelope layer: chunking a message into frames and reassembling
//! frames — possibly duplicated or out of order — back into messages.
//!
//! A message is `(kind, seq, payload)`. [`encode_chunks`] splits the
//! payload into `ceil(len / max_chunk)` frames sharing the same `kind`
//! and `seq` (a zero-length payload still produces one frame, so every
//! message is observable on the wire). The [`Reassembler`] is the
//! receiving half: it tolerates chunks arriving out of order, drops
//! duplicates (both duplicate chunks and whole replayed messages), and
//! bounds its memory by evicting the oldest partial message when a peer
//! starts too many at once.

use crate::frame::{encode_frame, Frame, Integrity};
use std::collections::{BTreeMap, BTreeSet};

/// Most partially-reassembled messages kept per connection before the
/// oldest is evicted.
pub const MAX_PARTIAL: usize = 64;
/// Largest reassembled message accepted (chunk_count × chunk size is
/// bounded by this).
pub const MAX_MESSAGE: usize = 64 * 1024 * 1024;
/// Completed-seq window remembered for duplicate suppression.
const DONE_WINDOW: usize = 1024;

/// Splits `(kind, seq, payload)` into encoded frames of at most
/// `max_chunk` payload bytes each.
///
/// # Panics
/// If `max_chunk` is zero or the payload exceeds [`MAX_MESSAGE`].
pub fn encode_chunks(
    integrity: &Integrity,
    kind: u8,
    seq: u64,
    payload: &[u8],
    max_chunk: usize,
) -> Vec<Vec<u8>> {
    assert!(max_chunk > 0, "chunk size must be positive");
    assert!(
        payload.len() <= MAX_MESSAGE,
        "message too large for the wire"
    );
    let count = payload.len().div_ceil(max_chunk).max(1);
    let mut frames = Vec::with_capacity(count);
    for i in 0..count {
        let lo = i * max_chunk;
        let hi = ((i + 1) * max_chunk).min(payload.len());
        frames.push(encode_frame(
            integrity,
            kind,
            seq,
            i as u32,
            count as u32,
            &payload[lo..hi],
        ));
    }
    frames
}

/// One fully reassembled message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembled {
    /// Message kind (routes decoding).
    pub kind: u8,
    /// The sender's message number.
    pub seq: u64,
    /// The complete payload.
    pub payload: Vec<u8>,
    /// How many chunks carried it.
    pub chunks: u32,
}

/// Counters the reassembler keeps about one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Messages fully reassembled.
    pub messages: u64,
    /// Of those, messages that arrived in more than one chunk.
    pub multi_chunk: u64,
    /// Duplicate chunks (or whole replayed messages) dropped.
    pub duplicates: u64,
    /// Messages dropped because their chunks disagreed on kind/count or
    /// exceeded [`MAX_MESSAGE`].
    pub rejected: u64,
    /// Partial messages evicted under memory pressure.
    pub evicted: u64,
}

#[derive(Debug)]
struct Partial {
    kind: u8,
    chunks: Vec<Option<Vec<u8>>>,
    received: usize,
    bytes: usize,
}

/// Reorders, deduplicates and reassembles a connection's frames into
/// messages. One instance per inbound stream (state is keyed on `seq`,
/// which is only unique per sender).
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: BTreeMap<u64, Partial>,
    done: BTreeSet<u64>,
    stats: ReassemblyStats,
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Connection counters so far.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Feeds one verified frame; returns the message it completed, if any.
    pub fn push(&mut self, frame: Frame) -> Option<Assembled> {
        if self.done.contains(&frame.seq) {
            self.stats.duplicates += 1;
            return None;
        }
        let count = frame.chunk_count as usize;
        let idx = frame.chunk_index as usize;
        if idx >= count || count == 0 || count > MAX_MESSAGE / 1024 + 1 {
            self.stats.rejected += 1;
            return None;
        }
        let entry = self.partial.entry(frame.seq).or_insert_with(|| Partial {
            kind: frame.kind,
            chunks: {
                let mut v = Vec::with_capacity(count);
                v.resize_with(count, || None);
                v
            },
            received: 0,
            bytes: 0,
        });
        if entry.kind != frame.kind || entry.chunks.len() != count {
            // Chunks of one seq disagree: poisoned message, drop it all.
            self.partial.remove(&frame.seq);
            self.stats.rejected += 1;
            return None;
        }
        if entry.chunks[idx].is_some() {
            self.stats.duplicates += 1;
            return None;
        }
        entry.bytes += frame.payload.len();
        if entry.bytes > MAX_MESSAGE {
            self.partial.remove(&frame.seq);
            self.stats.rejected += 1;
            return None;
        }
        entry.chunks[idx] = Some(frame.payload);
        entry.received += 1;
        if entry.received < count {
            if self.partial.len() > MAX_PARTIAL {
                // Oldest (smallest seq) partial gives way.
                if let Some((&oldest, _)) = self.partial.iter().next() {
                    self.partial.remove(&oldest);
                    self.stats.evicted += 1;
                }
            }
            return None;
        }
        let done = self.partial.remove(&frame.seq)?;
        let mut payload = Vec::with_capacity(done.bytes);
        for chunk in done.chunks.into_iter().flatten() {
            payload.extend_from_slice(&chunk);
        }
        self.done.insert(frame.seq);
        while self.done.len() > DONE_WINDOW {
            self.done.pop_first();
        }
        self.stats.messages += 1;
        if count > 1 {
            self.stats.multi_chunk += 1;
        }
        Some(Assembled {
            kind: done.kind,
            seq: frame.seq,
            payload,
            chunks: count as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameDecoder, Integrity};

    fn frames_of(bytes: Vec<Vec<u8>>) -> Vec<Frame> {
        let mut dec = FrameDecoder::new(Integrity::Crc32);
        for b in &bytes {
            dec.extend(b);
        }
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame() {
            out.push(f);
        }
        out
    }

    #[test]
    fn single_chunk_round_trip() {
        let frames = frames_of(encode_chunks(&Integrity::Crc32, 4, 10, b"small", 1024));
        assert_eq!(frames.len(), 1);
        let mut r = Reassembler::new();
        let m = r
            .push(frames.into_iter().next().expect("one frame"))
            .expect("complete");
        assert_eq!(m.payload, b"small");
        assert_eq!(m.chunks, 1);
        assert_eq!(r.stats().multi_chunk, 0);
    }

    #[test]
    fn multi_chunk_out_of_order_and_duplicated() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let frames = frames_of(encode_chunks(&Integrity::Crc32, 2, 77, &payload, 1000));
        assert_eq!(frames.len(), 10);
        let mut shuffled = frames.clone();
        shuffled.reverse();
        shuffled.push(frames[3].clone()); // duplicate chunk
        let mut r = Reassembler::new();
        let mut delivered = Vec::new();
        for f in shuffled {
            if let Some(m) = r.push(f) {
                delivered.push(m);
            }
        }
        assert_eq!(delivered.len(), 1, "exactly once");
        assert_eq!(delivered[0].payload, payload);
        assert_eq!(delivered[0].chunks, 10);
        assert_eq!(r.stats().duplicates, 1);
        assert_eq!(r.stats().multi_chunk, 1);
    }

    #[test]
    fn replayed_message_is_suppressed() {
        let bytes = encode_chunks(&Integrity::Crc32, 1, 5, b"once", 64);
        let mut frames = frames_of(bytes.clone());
        frames.extend(frames_of(bytes)); // replay the whole message
        let mut r = Reassembler::new();
        let delivered: Vec<_> = frames.into_iter().filter_map(|f| r.push(f)).collect();
        assert_eq!(delivered.len(), 1);
        assert_eq!(r.stats().duplicates, 1);
    }

    #[test]
    fn zero_length_message_still_delivers() {
        let frames = frames_of(encode_chunks(&Integrity::Crc32, 8, 0, b"", 512));
        assert_eq!(frames.len(), 1);
        let mut r = Reassembler::new();
        let m = r
            .push(frames.into_iter().next().expect("frame"))
            .expect("message");
        assert!(m.payload.is_empty());
    }

    #[test]
    fn interleaved_messages_reassemble_independently() {
        let a = encode_chunks(&Integrity::Crc32, 1, 1, &[0xAA; 3000], 1000);
        let b = encode_chunks(&Integrity::Crc32, 1, 2, &[0xBB; 3000], 1000);
        let mut interleaved = Vec::new();
        for (fa, fb) in a.iter().zip(b.iter()) {
            interleaved.push(fa.clone());
            interleaved.push(fb.clone());
        }
        let mut r = Reassembler::new();
        let delivered: Vec<_> = frames_of(interleaved)
            .into_iter()
            .filter_map(|f| r.push(f))
            .collect();
        assert_eq!(delivered.len(), 2);
        assert!(delivered.iter().any(|m| m.payload == [0xAA; 3000]));
        assert!(delivered.iter().any(|m| m.payload == [0xBB; 3000]));
    }

    #[test]
    fn partial_flood_is_bounded() {
        let mut r = Reassembler::new();
        // Start MAX_PARTIAL + 40 two-chunk messages, never finishing them.
        for seq in 0..(MAX_PARTIAL as u64 + 40) {
            let frames = frames_of(encode_chunks(&Integrity::Crc32, 1, seq, &[1; 100], 50));
            let first = frames.into_iter().next().expect("first chunk");
            assert!(r.push(first).is_none());
        }
        assert!(r.partial.len() <= MAX_PARTIAL + 1);
        assert!(r.stats().evicted >= 39);
    }
}
