//! `oddci-wire`: the framed, checksummed wire protocol that carries the
//! OddCI live plane over real sockets.
//!
//! The in-process live runtime (`oddci-live`) exchanges control traffic
//! over channels; this crate gives the same vocabulary a byte-level
//! existence so a headend and its PNAs can live in separate processes.
//! It is layered bottom-up:
//!
//! * [`frame`] — a fixed 36-byte header (magic, version, kind, seq,
//!   chunk index/count, payload length) followed by the payload, sealed
//!   by either a CRC-32 or a truncated HMAC-SHA256 ([`Integrity`]). The
//!   [`FrameDecoder`] resynchronizes on the next magic after corruption
//!   or truncation instead of wedging the stream.
//! * [`envelope`] — chunking and reassembly, so a multi-hundred-kilobyte
//!   wakeup image streams as many small frames and survives duplication
//!   and reordering ([`encode_chunks`], [`Reassembler`]).
//! * [`codec`] / [`message`] — a deterministic little-endian binary
//!   codec and the [`WireMsg`] vocabulary (hello, heartbeat, task fetch,
//!   result upload, signed broadcast, shutdown).
//! * [`tcp`] — a `std::net` transport: a single-threaded poll/accept
//!   serving loop on the headend side ([`WireServer`]) and a blocking
//!   direct-channel client per PNA ([`WireClient`]).
//! * [`fault`] — deterministic frame mangling driven by the shared
//!   fault injector, for rehearsing corruption on loopback.
//!
//! ```
//! use oddci_wire::{encode_chunks, FrameDecoder, Integrity, Reassembler};
//!
//! let image = vec![7u8; 40_000]; // a payload big enough to chunk
//! let frames = encode_chunks(&Integrity::Crc32, 8, 1, &image, 16 * 1024);
//! assert!(frames.len() > 1, "large payloads stream in several frames");
//!
//! let mut decoder = FrameDecoder::new(Integrity::Crc32);
//! for frame in &frames {
//!     decoder.extend(frame);
//! }
//! let mut reassembler = Reassembler::new();
//! let mut delivered = Vec::new();
//! while let Some(frame) = decoder.next_frame() {
//!     if let Some(message) = reassembler.push(frame) {
//!         delivered.push(message);
//!     }
//! }
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, image);
//! ```

pub mod codec;
pub mod envelope;
pub mod fault;
pub mod frame;
pub mod message;
pub mod tcp;

pub use envelope::{encode_chunks, Assembled, Reassembler, ReassemblyStats, MAX_MESSAGE};
pub use fault::{mangle_frames, MangleReport};
pub use frame::{
    encode_frame, Frame, FrameDecoder, Integrity, DEFAULT_CHUNK, HEADER_LEN, MAX_FRAME_PAYLOAD,
};
pub use message::{WireBatch, WireMsg, PROTO_VERSION};
pub use tcp::{
    ClientConfig, ConnId, ConnStatsHub, ConnTraffic, Outbox, ServerConfig, WireClient, WireServer,
    WireService, WireStats, WireStatsSnapshot,
};

use std::fmt;

/// Everything that can go wrong between two wire endpoints.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// Bytes decoded fine at the frame layer but the message inside is
    /// structurally invalid.
    Malformed(&'static str),
    /// The peer violated the protocol (bad version, unexpected message).
    Protocol(String),
    /// A blocking operation ran out of time.
    Timeout(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(what) => write!(f, "malformed wire message: {what}"),
            WireError::Protocol(what) => write!(f, "wire protocol violation: {what}"),
            WireError::Timeout(what) => write!(f, "wire timeout: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}
