//! Property tests of the framing and reassembly layers: arbitrary
//! payloads must round-trip through chunked frames byte-for-byte, and a
//! flipped bit anywhere on the wire must never surface as a *wrong*
//! payload — rejection or silence, never corruption.

use oddci_wire::{encode_chunks, FrameDecoder, Integrity, Reassembler, HEADER_LEN};
use proptest::prelude::*;

/// Feeds `bytes` to a fresh decoder+reassembler in `step`-sized slices
/// and returns every fully reassembled (kind, seq, payload).
fn pump(integrity: &Integrity, bytes: &[u8], step: usize) -> Vec<(u8, u64, Vec<u8>)> {
    let mut decoder = FrameDecoder::new(integrity.clone());
    let mut reassembler = Reassembler::new();
    let mut out = Vec::new();
    for chunk in bytes.chunks(step.max(1)) {
        decoder.extend(chunk);
        while let Some(frame) = decoder.next_frame() {
            if let Some(msg) = reassembler.push(frame) {
                out.push((msg.kind, msg.seq, msg.payload));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload (including empty) round-trips through any chunk size
    /// and any read-slice size.
    #[test]
    fn envelope_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..4096),
                            max_chunk in 1usize..1024,
                            step in 1usize..512,
                            seq in 0u64..1000,
                            kind in 1u8..10,
                            hmac in any::<bool>()) {
        let integrity = if hmac {
            Integrity::hmac(b"proptest-key")
        } else {
            Integrity::Crc32
        };
        let frames = encode_chunks(&integrity, kind, seq, &payload, max_chunk);
        // ceil(len / max_chunk), and at least one frame even when empty.
        let expected = payload.len().div_ceil(max_chunk).max(1);
        prop_assert_eq!(frames.len(), expected);
        let bytes: Vec<u8> = frames.concat();
        let got = pump(&integrity, &bytes, step);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].0, kind);
        prop_assert_eq!(got[0].1, seq);
        prop_assert_eq!(&got[0].2, &payload);
    }

    /// A single flipped bit anywhere in the stream: the damaged message
    /// is rejected or withheld, and is NEVER delivered with a different
    /// payload. A trailing clean message still gets through (resync).
    #[test]
    fn bit_flip_never_delivers_wrong_payload(
            payload in proptest::collection::vec(any::<u8>(), 0..2048),
            max_chunk in 1usize..512,
            flip_at in any::<usize>(),
            flip_bit in 0u8..8,
            hmac in any::<bool>()) {
        let integrity = if hmac {
            Integrity::hmac(b"proptest-key")
        } else {
            Integrity::Crc32
        };
        let mut bytes: Vec<u8> = encode_chunks(&integrity, 3, 7, &payload, max_chunk).concat();
        let n = bytes.len();
        let at = flip_at % n;
        bytes[at] ^= 1 << flip_bit;
        // A clean follow-up message big enough to out-supply the worst
        // damage: a flipped bit in the length field can claim up to
        // MAX_FRAME_PAYLOAD bytes (larger claims are rejected outright),
        // and the decoder cannot tell that claim from a partial arrival
        // until the buffered bytes cover it. Real traffic (heartbeats)
        // provides that flow; here the follow-up does.
        let follow = vec![0xAB; oddci_wire::MAX_FRAME_PAYLOAD + HEADER_LEN + 64];
        bytes.extend(encode_chunks(&integrity, 4, 8, &follow, 16 * 1024).concat());

        let got = pump(&integrity, &bytes, 97);
        for (kind, seq, delivered) in &got {
            match (kind, seq) {
                // If the damaged message survives at all, it must be
                // byte-identical (the flip landed in padding it didn't —
                // impossible here since every byte is covered, so any
                // delivery must equal the original payload exactly).
                (3, 7) => prop_assert_eq!(delivered, &payload),
                (4, 8) => prop_assert_eq!(delivered, &follow),
                other => prop_assert!(false, "unexpected delivery {:?}", other),
            }
        }
        // The clean trailing message always arrives.
        prop_assert!(got.iter().any(|(k, s, _)| *k == 4 && *s == 8),
                     "resync lost the clean follow-up");
    }

    /// Chunks arriving out of order (whole-frame permutation within one
    /// message) still reassemble exactly, and duplicated frames are
    /// absorbed without corrupting the payload.
    #[test]
    fn reordered_and_duplicated_chunks_reassemble(
            payload in proptest::collection::vec(any::<u8>(), 1..2048),
            max_chunk in 16usize..256,
            rot in 0usize..8,
            dup in any::<usize>()) {
        let integrity = Integrity::Crc32;
        let mut frames = encode_chunks(&integrity, 5, 11, &payload, max_chunk);
        let rot = rot % frames.len();
        frames.rotate_left(rot);
        let dup_frame = frames[dup % frames.len()].clone();
        frames.push(dup_frame);
        let bytes: Vec<u8> = frames.concat();
        let got = pump(&integrity, &bytes, 64);
        prop_assert_eq!(got.len(), 1, "duplicates must not re-deliver");
        prop_assert_eq!(&got[0].2, &payload);
    }
}
