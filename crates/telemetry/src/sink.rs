//! Streaming trace sinks: events flow to disk *while the run executes*.
//!
//! The ring [`crate::Recorder`] keeps only the newest window of events,
//! which is exactly wrong for million-node sweeps: the early wakeup/boot
//! phases the `W = 1.5·I/β` model check needs are the first to be
//! overwritten. A [`TraceSink`] receives every event at emission time and
//! persists it out-of-band, with three hard rules:
//!
//! 1. **Hot paths never block.** [`TraceSink::offer`] is a bounded,
//!    non-blocking enqueue: when the sink's lane is full the event is
//!    *dropped and counted*, never waited on. Backpressure is expressed
//!    as loss accounting, not latency.
//! 2. **Loss is exact.** After a flush (or [`StreamingSink::finish`]),
//!    `emitted == persisted + dropped` holds as an identity, and drops
//!    are broken down per [`Phase`].
//! 3. **Writers don't contend.** Events are spread over independent
//!    lanes (per-shard handles pin a lane via
//!    [`crate::Telemetry::with_sink_lane`]), so two headend shards never
//!    touch the same queue mutex. Text outputs are drained by a single
//!    dedicated writer thread; the binary format gets one writer thread
//!    *per lane*, each encoding its own blocks privately and contending
//!    only on the brief file append.
//!
//! [`StreamingSink`] is the concrete implementation: it streams events as
//! JSONL (one event object per line, after a header line) and/or Chrome
//! `trace_event` JSON (rows appended inside `traceEvents` as they drain,
//! closed into a valid document at finish) — or, exclusively, as the
//! compact [`crate::binary`] format built for million-node sweeps
//! ([`StreamBuilder::binary`]).

use crate::binary;
use crate::event::{Event, EventKind, Phase};
use crate::export;
use oddci_check::sync::{Monitor, Mutex};
use serde_json::{json, Value};
use std::collections::{HashSet, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Stream format version stamped into every artifact header.
pub const STREAM_VERSION: u64 = 1;

/// Default per-lane queue capacity (events, not bytes).
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// Monotone counters describing a sink's traffic so far. The invariant
/// `emitted == persisted + dropped` holds exactly once the sink is idle
/// (after [`TraceSink::flush`] or [`StreamingSink::finish`]); mid-run,
/// `emitted - persisted - dropped` is the number of events still queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkStats {
    /// Events handed to [`TraceSink::offer`].
    pub emitted: u64,
    /// Events rejected because a lane was full (or the sink was closed).
    pub dropped: u64,
    /// Events written through every output.
    pub persisted: u64,
    /// Completed flush cycles (file buffers pushed to the OS).
    pub flushes: u64,
}

impl SinkStats {
    /// Events currently buffered in lanes (0 once the sink is idle).
    ///
    /// Saturating: the three counters are loaded independently (relaxed),
    /// so a mid-run snapshot can observe `persisted` bumps whose matching
    /// `emitted` bump it predates. Plain subtraction underflows on such a
    /// torn snapshot — the `sink-stats-snapshot-torn` scenario in
    /// `oddci-check` reproduces it deterministically.
    pub fn in_flight(&self) -> u64 {
        self.emitted
            .saturating_sub(self.persisted)
            .saturating_sub(self.dropped)
    }
}

/// A destination for live trace events. Implementations must be cheap and
/// non-blocking on [`offer`](TraceSink::offer) — the caller may be a
/// simulation inner loop or a headend shard thread.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Enqueue one event. `lane_hint` pins the event to a lane (shard
    /// handles use this so writers don't contend); `None` spreads by
    /// track. Returns `false` — and counts a drop — instead of blocking
    /// when the lane is full.
    fn offer(&self, ev: Event, lane_hint: Option<usize>) -> bool;

    /// Block until everything offered *before this call* is durably
    /// handed to the OS (written + file-flushed). Safe to call from any
    /// thread; returns immediately once the writer has exited.
    fn flush(&self);

    /// Current traffic counters.
    fn stats(&self) -> SinkStats;

    /// Per-phase drop breakdown `(label, count)`, non-zero entries only.
    fn dropped_by_phase(&self) -> Vec<(&'static str, u64)>;
}

/// On-disk format of one [`StreamingSink`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFormat {
    /// Header line + one compact JSON event object per line.
    Jsonl,
    /// Chrome `trace_event` "JSON Object Format" document, rows appended
    /// as they drain and closed into `{"traceEvents":[...]}` at finish.
    Chrome,
    /// Compact self-describing binary format ([`crate::binary`]), drained
    /// by one writer thread per lane. Exclusive: a binary sink has no
    /// other outputs (convert offline with `oddci trace convert`).
    Binary,
}

impl StreamFormat {
    /// Stable name used in headers and summaries.
    pub fn name(self) -> &'static str {
        match self {
            StreamFormat::Jsonl => "jsonl",
            StreamFormat::Chrome => "chrome",
            StreamFormat::Binary => "binary",
        }
    }
}

/// What one output file ended up holding, reported by
/// [`StreamingSink::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSummary {
    /// Where the artifact was written.
    pub path: PathBuf,
    /// Its format.
    pub format: StreamFormat,
    /// Bytes written (header + rows + footer).
    pub bytes: u64,
}

/// Final report of a finished sink: closing traffic counters plus one
/// [`OutputSummary`] per output file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSummary {
    /// Counters at close; `emitted == persisted + dropped` holds exactly.
    pub stats: SinkStats,
    /// Per-file byte counts.
    pub outputs: Vec<OutputSummary>,
}

// ---------------------------------------------------------------- lanes

#[derive(Debug)]
struct LaneState {
    queue: VecDeque<Event>,
    /// Set by the writer's final drain pass, under the lane lock: any
    /// offer that locks the lane afterwards sees it and counts a drop,
    /// so `emitted == persisted + dropped` stays exact across shutdown.
    closed: bool,
}

#[derive(Debug)]
struct Lane {
    state: Mutex<LaneState>,
}

#[derive(Debug, Default)]
struct Ctl {
    flush_requested: u64,
    flush_completed: u64,
    writer_done: bool,
}

/// The shared binary output file. Lane writers encode blocks privately
/// and hold this lock only for the append itself.
#[derive(Debug)]
struct BinFile {
    file: BufWriter<File>,
    bytes: u64,
}

/// Flush/close rendezvous for the per-lane binary writers. `flush()`
/// bumps `epoch`; every live writer drains, file-flushes and records the
/// epoch in its `acked` slot. A writer that already exited (`exited`)
/// has drained its closed lane completely, so it satisfies any epoch.
#[derive(Debug)]
struct BinCtl {
    epoch: u64,
    /// Highest epoch whose completion already bumped the `flushes`
    /// counter (guards against two writers double-counting one cycle).
    flushed_epoch: u64,
    acked: Vec<u64>,
    exited: Vec<bool>,
}

/// Binary-mode half of [`SinkShared`]; `Some` iff the sink streams the
/// [`crate::binary`] format.
#[derive(Debug)]
struct BinShared {
    path: PathBuf,
    file: Mutex<BinFile>,
    ctl: Monitor<BinCtl>,
}

#[derive(Debug)]
struct SinkShared {
    lanes: Vec<Lane>,
    lane_capacity: usize,
    /// Relaxed everywhere: an independent monotone counter, bumped by the
    /// emitter *before* it touches the lane. The exactness identity
    /// `emitted == persisted + dropped` needs no inter-counter ordering —
    /// each event is classified exactly once under its lane lock, and
    /// `finish()` reads the totals only after joining the writer.
    emitted: AtomicU64,
    /// Relaxed: same regime as `emitted`; bumped by whichever thread
    /// classified the event as a drop (emitter under the lane lock).
    dropped: AtomicU64,
    /// Relaxed: bumped only by the single writer thread after a batch is
    /// written; readers that need it exact synchronize via the flush
    /// rendezvous or the writer join, not via this atomic.
    persisted: AtomicU64,
    /// Relaxed: writer-only monotone counter; `flush()` callers observe
    /// completion through the `ctl` monitor, not this count.
    flushes: AtomicU64,
    /// Relaxed: per-phase shards of `dropped`, same single-classification
    /// regime.
    dropped_by_phase: [AtomicU64; Phase::COUNT],
    /// Writer wake-up / flush rendezvous (mutex + condvar behind one
    /// shim type). Text mode only; binary mode synchronizes through
    /// [`BinShared::ctl`].
    ctl: Monitor<Ctl>,
    /// Binary-mode state (shared file + per-lane-writer rendezvous).
    bin: Option<BinShared>,
    /// Tells the writer to run its final drain and exit. Release store in
    /// `finish()` / Acquire load in the writer: the writer's final drain
    /// must observe everything the finishing thread did first. (The lane
    /// locks already order the queues themselves; the pairing covers the
    /// flag-to-drain edge without relying on that.)
    close_requested: AtomicU64,
}

impl SinkShared {
    fn note_drop(&self, phase: Phase) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        self.dropped_by_phase[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> SinkStats {
        SinkStats {
            emitted: self.emitted.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------- outputs

/// One open text-format output file. Shared with [`crate::binary`]'s
/// offline converter so converted artifacts go through the exact writer
/// the live sink uses.
#[derive(Debug)]
pub(crate) struct Output {
    path: PathBuf,
    format: StreamFormat,
    file: BufWriter<File>,
    bytes: u64,
    /// Chrome only: rows written so far (controls comma placement).
    rows: u64,
    /// Chrome only: tracks that already got their `M` thread_name row.
    seen_tracks: HashSet<u64>,
}

impl Output {
    pub(crate) fn create(
        path: &Path,
        format: StreamFormat,
        meta: &[(String, String)],
    ) -> io::Result<Output> {
        if format == StreamFormat::Binary {
            return Err(io::Error::other(
                "binary outputs bypass the row writer (see StreamBuilder::binary)",
            ));
        }
        let file = BufWriter::new(File::create(path)?);
        let mut out = Output {
            path: path.to_path_buf(),
            format,
            file,
            bytes: 0,
            rows: 0,
            seen_tracks: HashSet::new(),
        };
        out.write_header(meta)?;
        Ok(out)
    }

    fn write_str(&mut self, text: &str) -> io::Result<()> {
        self.file.write_all(text.as_bytes())?;
        self.bytes += text.len() as u64;
        Ok(())
    }

    fn write_header(&mut self, meta: &[(String, String)]) -> io::Result<()> {
        match self.format {
            StreamFormat::Jsonl => {
                let mut meta_obj: Vec<(String, Value)> = Vec::new();
                for (k, v) in meta {
                    meta_obj.push((k.clone(), Value::String(v.clone())));
                }
                let header = json!({
                    "oddci_stream": STREAM_VERSION,
                    "format": "jsonl",
                    "clock": "us",
                    "meta": Value::Object(meta_obj),
                });
                let line = serde_json::to_string(&header).map_err(io::Error::other)?;
                self.write_str(&line)?;
                self.write_str("\n")
            }
            StreamFormat::Chrome => {
                let mut other: Vec<(String, Value)> = vec![
                    (
                        "oddci_stream".to_string(),
                        Value::String(STREAM_VERSION.to_string()),
                    ),
                    ("clock".to_string(), Value::String("us".to_string())),
                ];
                for (k, v) in meta {
                    other.push((k.clone(), Value::String(v.clone())));
                }
                let other =
                    serde_json::to_string(&Value::Object(other)).map_err(io::Error::other)?;
                self.write_str(&format!(
                    "{{\"displayTimeUnit\":\"ms\",\"otherData\":{other},\"traceEvents\":["
                ))
            }
            StreamFormat::Binary => Err(io::Error::other("binary outputs have no text header")),
        }
    }

    fn write_row(&mut self, row: &Value) -> io::Result<()> {
        if self.rows > 0 {
            self.write_str(",\n")?;
        } else {
            self.write_str("\n")?;
        }
        self.rows += 1;
        let text = serde_json::to_string(row).map_err(io::Error::other)?;
        self.write_str(&text)
    }

    pub(crate) fn write_event(&mut self, ev: &Event) -> io::Result<()> {
        match self.format {
            StreamFormat::Jsonl => {
                let line = serde_json::to_string(ev).map_err(io::Error::other)?;
                self.write_str(&line)?;
                self.write_str("\n")
            }
            StreamFormat::Chrome => {
                if self.seen_tracks.insert(ev.track) {
                    self.write_row(&export::thread_meta_row(ev.track))?;
                }
                self.write_row(&export::event_row(ev))
            }
            StreamFormat::Binary => Err(io::Error::other("binary outputs have no text rows")),
        }
    }

    fn write_footer(&mut self) -> io::Result<()> {
        match self.format {
            StreamFormat::Jsonl => Ok(()),
            StreamFormat::Chrome => self.write_str("\n]}\n"),
            StreamFormat::Binary => Err(io::Error::other("binary outputs have no text footer")),
        }
    }

    /// Write the footer, flush, and report the finished artifact. Used by
    /// the offline converter; the writer thread seals in its close path.
    pub(crate) fn seal(mut self) -> io::Result<OutputSummary> {
        self.write_footer()?;
        self.file.flush()?;
        Ok(OutputSummary {
            path: self.path,
            format: self.format,
            bytes: self.bytes,
        })
    }
}

// ---------------------------------------------------------------- sink

/// Builder for a [`StreamingSink`]; see [`StreamingSink::builder`].
#[derive(Debug, Default)]
pub struct StreamBuilder {
    outputs: Vec<(PathBuf, StreamFormat)>,
    lanes: usize,
    lane_capacity: usize,
    meta: Vec<(String, String)>,
}

impl StreamBuilder {
    /// Add a JSONL output file.
    pub fn jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.outputs.push((path.into(), StreamFormat::Jsonl));
        self
    }

    /// Add a streamed Chrome `trace_event` output file.
    pub fn chrome(mut self, path: impl Into<PathBuf>) -> Self {
        self.outputs.push((path.into(), StreamFormat::Chrome));
        self
    }

    /// Stream the compact [`crate::binary`] format instead of text.
    /// Exclusive — [`start`](StreamBuilder::start) rejects a builder
    /// mixing binary with jsonl/chrome outputs, because the text writer
    /// thread would reintroduce exactly the serialization bottleneck the
    /// binary path removes. Convert offline with `oddci trace convert`.
    pub fn binary(mut self, path: impl Into<PathBuf>) -> Self {
        self.outputs.push((path.into(), StreamFormat::Binary));
        self
    }

    /// Number of independent lanes (default 4). Per-shard handles pin a
    /// lane with [`crate::Telemetry::with_sink_lane`]; unpinned emitters
    /// spread by track id.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Per-lane queue capacity in events (default
    /// [`DEFAULT_LANE_CAPACITY`]). A full lane drops — it never blocks.
    pub fn lane_capacity(mut self, capacity: usize) -> Self {
        self.lane_capacity = capacity.max(1);
        self
    }

    /// Stamp a key/value pair into every output's header.
    pub fn meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Open the output files, write headers, and start the writer
    /// thread(s): one for all text outputs, or one per lane for a binary
    /// output. Fails fast on I/O errors (unwritable path, etc.) and on a
    /// builder mixing binary with text outputs.
    pub fn start(self) -> io::Result<Arc<StreamingSink>> {
        let lanes = if self.lanes == 0 { 4 } else { self.lanes };
        let lane_capacity = if self.lane_capacity == 0 {
            DEFAULT_LANE_CAPACITY
        } else {
            self.lane_capacity
        };
        let binary_out = self
            .outputs
            .iter()
            .find(|(_, f)| *f == StreamFormat::Binary)
            .map(|(p, _)| p.clone());
        if binary_out.is_some() && self.outputs.len() > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a binary stream is exclusive: drop the jsonl/chrome outputs and convert \
                 offline with `oddci trace convert`",
            ));
        }

        let bin = match &binary_out {
            Some(path) => {
                let mut file = BufWriter::new(File::create(path)?);
                let header = binary::encode_header(&self.meta, lanes);
                file.write_all(&header)?;
                Some(BinShared {
                    path: path.clone(),
                    file: Mutex::named(
                        BinFile {
                            file,
                            bytes: header.len() as u64,
                        },
                        "sink.bin_file",
                    ),
                    ctl: Monitor::named(
                        BinCtl {
                            epoch: 0,
                            flushed_epoch: 0,
                            acked: vec![0; lanes],
                            exited: vec![false; lanes],
                        },
                        "sink.bin_ctl",
                    ),
                })
            }
            None => None,
        };

        let mut outputs = Vec::with_capacity(self.outputs.len());
        if binary_out.is_none() {
            for (path, format) in &self.outputs {
                outputs.push(Output::create(path, *format, &self.meta)?);
            }
        }

        let shared = Arc::new(SinkShared {
            lanes: (0..lanes)
                .map(|_| Lane {
                    state: Mutex::named(
                        LaneState {
                            queue: VecDeque::new(),
                            closed: false,
                        },
                        "sink.lane",
                    ),
                })
                .collect(),
            lane_capacity,
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            dropped_by_phase: std::array::from_fn(|_| AtomicU64::new(0)),
            ctl: Monitor::named(Ctl::default(), "sink.ctl"),
            bin,
            close_requested: AtomicU64::new(0),
        });

        let mut writers = Vec::new();
        if binary_out.is_some() {
            for lane in 0..lanes {
                let writer_shared = Arc::clone(&shared);
                writers.push(
                    std::thread::Builder::new()
                        .name(format!("oddci-trace-bin-{lane}"))
                        .spawn(move || bin_writer_main(&writer_shared, lane))?,
                );
            }
        } else {
            let writer_shared = Arc::clone(&shared);
            writers.push(
                std::thread::Builder::new()
                    .name("oddci-trace-writer".to_string())
                    .spawn(move || writer_main(&writer_shared, outputs))?,
            );
        }
        Ok(Arc::new(StreamingSink {
            shared,
            writers: Mutex::named(writers, "sink.writer_handles"),
            finished: Mutex::named(None, "sink.finished"),
        }))
    }
}

/// The bounded-lane, dedicated-writer-thread [`TraceSink`].
///
/// Construct with [`StreamingSink::builder`], attach to a
/// [`crate::Telemetry`] via [`crate::Telemetry::with_sink`], and call
/// [`finish`](StreamingSink::finish) when the run is over to close the
/// artifacts and collect the [`SinkSummary`].
#[derive(Debug)]
pub struct StreamingSink {
    shared: Arc<SinkShared>,
    /// One handle in text mode; one per lane in binary mode. Emptied by
    /// the finishing thread — an empty vec means a concurrent `finish()`
    /// owns the join.
    writers: Mutex<Vec<JoinHandle<io::Result<Vec<OutputSummary>>>>>,
    finished: Mutex<Option<SinkSummary>>,
}

impl StreamingSink {
    /// Start describing a new sink.
    pub fn builder() -> StreamBuilder {
        StreamBuilder::default()
    }

    /// Close the sink: drain every lane, write footers, flush files, and
    /// join the writer thread(s). Events offered after this point are
    /// counted as dropped. Idempotent — later calls return the first
    /// summary.
    pub fn finish(&self) -> io::Result<SinkSummary> {
        if let Some(summary) = self.finished.lock().clone() {
            return Ok(summary);
        }
        let handles: Vec<_> = self.writers.lock().drain(..).collect();
        if handles.is_empty() {
            // A concurrent finish is joining; wait for its summary.
            loop {
                if let Some(summary) = self.finished.lock().clone() {
                    return Ok(summary);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.shared.close_requested.store(1, Ordering::Release);
        self.shared.ctl.notify_all();
        if let Some(bin) = &self.shared.bin {
            bin.ctl.notify_all();
        }
        // Join everything before surfacing any error, so no writer leaks.
        let mut outputs = Vec::new();
        let mut first_err: Option<io::Error> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(summaries)) => outputs.extend(summaries),
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or_else(|| Some(io::Error::other("trace writer panicked")))
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if let Some(bin) = &self.shared.bin {
            let mut f = bin.file.lock();
            f.file.flush()?;
            outputs.push(OutputSummary {
                path: bin.path.clone(),
                format: StreamFormat::Binary,
                bytes: f.bytes,
            });
        }
        let summary = SinkSummary {
            stats: self.shared.stats(),
            outputs,
        };
        *self.finished.lock() = Some(summary.clone());
        Ok(summary)
    }
}

impl TraceSink for StreamingSink {
    fn offer(&self, ev: Event, lane_hint: Option<usize>) -> bool {
        let shared = &self.shared;
        shared.emitted.fetch_add(1, Ordering::Relaxed);
        let lane = match lane_hint {
            Some(lane) => lane % shared.lanes.len(),
            None => (ev.track as usize) % shared.lanes.len(),
        };
        let mut state = shared.lanes[lane].state.lock();
        if state.closed || state.queue.len() >= shared.lane_capacity {
            drop(state);
            shared.note_drop(ev.phase);
            return false;
        }
        state.queue.push_back(ev);
        true
    }

    fn flush(&self) {
        let shared = &self.shared;
        if let Some(bin) = &shared.bin {
            // Binary mode: bump the epoch and wait until every live lane
            // writer has drained + file-flushed it. Exited writers have
            // already drained their closed lane, so they satisfy any
            // epoch — a flush can never hang on a finished sink.
            let mut ctl = bin.ctl.lock();
            ctl.epoch += 1;
            let target = ctl.epoch;
            bin.ctl.notify_all();
            while ctl
                .acked
                .iter()
                .zip(&ctl.exited)
                .any(|(acked, exited)| !exited && *acked < target)
            {
                let (guard, _) = bin.ctl.wait_timeout(ctl, Duration::from_millis(50));
                ctl = guard;
            }
            return;
        }
        let mut ctl = shared.ctl.lock();
        ctl.flush_requested += 1;
        let target = ctl.flush_requested;
        shared.ctl.notify_all();
        while ctl.flush_completed < target && !ctl.writer_done {
            let (guard, _) = shared.ctl.wait_timeout(ctl, Duration::from_millis(50));
            ctl = guard;
        }
    }

    fn stats(&self) -> SinkStats {
        self.shared.stats()
    }

    fn dropped_by_phase(&self) -> Vec<(&'static str, u64)> {
        Phase::ALL
            .iter()
            .map(|p| {
                (
                    p.label(),
                    self.shared.dropped_by_phase[p.index()].load(Ordering::Relaxed),
                )
            })
            .filter(|(_, n)| *n > 0)
            .collect()
    }
}

impl Drop for StreamingSink {
    fn drop(&mut self) {
        // Best-effort close so an un-finished sink still leaves valid
        // artifacts behind; errors are unobservable here.
        let _ = self.finish();
    }
}

// ---------------------------------------------------------------- writer

fn drain_lanes(shared: &SinkShared, batch: &mut Vec<Event>, close: bool) {
    for lane in &shared.lanes {
        let mut state = lane.state.lock();
        if close {
            state.closed = true;
        }
        batch.extend(state.queue.drain(..));
    }
}

fn write_batch(batch: &[Event], outputs: &mut [Output]) -> io::Result<()> {
    for ev in batch {
        for out in outputs.iter_mut() {
            out.write_event(ev)?;
        }
    }
    Ok(())
}

fn writer_main(shared: &SinkShared, mut outputs: Vec<Output>) -> io::Result<Vec<OutputSummary>> {
    let result = writer_loop(shared, &mut outputs);
    // Wake every flusher whatever happened — a dead writer must not hang
    // `flush()` callers.
    {
        let mut ctl = shared.ctl.lock();
        ctl.writer_done = true;
        ctl.flush_completed = ctl.flush_requested;
        shared.ctl.notify_all();
    }
    result?;
    Ok(outputs
        .into_iter()
        .map(|o| OutputSummary {
            path: o.path,
            format: o.format,
            bytes: o.bytes,
        })
        .collect())
}

fn writer_loop(shared: &SinkShared, outputs: &mut [Output]) -> io::Result<()> {
    let mut batch: Vec<Event> = Vec::with_capacity(4096);
    loop {
        batch.clear();
        drain_lanes(shared, &mut batch, false);
        if !batch.is_empty() {
            write_batch(&batch, outputs)?;
            shared
                .persisted
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            continue;
        }

        if shared.close_requested.load(Ordering::Acquire) != 0 {
            // Final pass: mark lanes closed under their locks, drain what
            // raced in, then seal and flush the files.
            batch.clear();
            drain_lanes(shared, &mut batch, true);
            if !batch.is_empty() {
                write_batch(&batch, outputs)?;
                shared
                    .persisted
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
            for out in outputs.iter_mut() {
                out.write_footer()?;
                out.file.flush()?;
            }
            shared.flushes.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        let ctl = shared.ctl.lock();
        if ctl.flush_completed < ctl.flush_requested {
            let target = ctl.flush_requested;
            drop(ctl);
            // Events offered before flush() bumped the request are already
            // in their lanes; one more drain pass picks up any racers.
            batch.clear();
            drain_lanes(shared, &mut batch, false);
            if !batch.is_empty() {
                write_batch(&batch, outputs)?;
                shared
                    .persisted
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                continue;
            }
            for out in outputs.iter_mut() {
                out.file.flush()?;
            }
            shared.flushes.fetch_add(1, Ordering::Relaxed);
            let mut ctl = shared.ctl.lock();
            ctl.flush_completed = ctl.flush_completed.max(target);
            shared.ctl.notify_all();
            continue;
        }
        let (_guard, _) = shared.ctl.wait_timeout(ctl, Duration::from_millis(1));
    }
}

// ------------------------------------------------------- binary writers

fn drain_one_lane(shared: &SinkShared, lane: usize, batch: &mut Vec<Event>, close: bool) {
    let mut state = shared.lanes[lane].state.lock();
    if close {
        state.closed = true;
    }
    batch.extend(state.queue.drain(..));
}

/// Encode `batch` as one lane block (privately, off-lock) and append it
/// to the shared binary file under the brief file lock.
fn append_bin_block(bin: &BinShared, lane: usize, batch: &[Event]) -> io::Result<()> {
    let block = binary::encode_block(lane as u64, batch);
    let mut f = bin.file.lock();
    f.file.write_all(&block)?;
    f.bytes += block.len() as u64;
    Ok(())
}

/// Entry point of the per-lane binary writer threads. Wraps the loop so
/// the writer *always* marks itself exited (waking `flush()` callers and
/// the close rendezvous) even when it dies on an I/O error.
fn bin_writer_main(shared: &SinkShared, lane: usize) -> io::Result<Vec<OutputSummary>> {
    let Some(bin) = &shared.bin else {
        return Err(io::Error::other(
            "binary writer started without binary state",
        ));
    };
    let result = bin_writer_loop(shared, bin, lane);
    {
        let mut ctl = bin.ctl.lock();
        ctl.exited[lane] = true;
        if ctl.exited.iter().all(|e| *e) {
            // Last writer out: the whole close cycle counts as one flush.
            shared.flushes.fetch_add(1, Ordering::Relaxed);
        }
        bin.ctl.notify_all();
    }
    // The binary OutputSummary is assembled once by `finish()` from the
    // shared file — per-lane writers have nothing of their own to report.
    result.map(|()| Vec::new())
}

fn bin_writer_loop(shared: &SinkShared, bin: &BinShared, lane: usize) -> io::Result<()> {
    let mut batch: Vec<Event> = Vec::with_capacity(4096);
    let mut acked: u64 = 0;
    loop {
        batch.clear();
        drain_one_lane(shared, lane, &mut batch, false);
        if !batch.is_empty() {
            append_bin_block(bin, lane, &batch)?;
            shared
                .persisted
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            continue;
        }

        if shared.close_requested.load(Ordering::Acquire) != 0 {
            // Final pass: close the lane under its lock, drain racers,
            // then flush the shared file so finish() reads it complete.
            batch.clear();
            drain_one_lane(shared, lane, &mut batch, true);
            if !batch.is_empty() {
                append_bin_block(bin, lane, &batch)?;
                shared
                    .persisted
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
            bin.file.lock().file.flush()?;
            return Ok(());
        }

        let ctl = bin.ctl.lock();
        if ctl.epoch > acked {
            let target = ctl.epoch;
            drop(ctl);
            // Events offered before flush() bumped the epoch are already
            // in the lane; one more drain pass picks up any racers.
            batch.clear();
            drain_one_lane(shared, lane, &mut batch, false);
            if !batch.is_empty() {
                append_bin_block(bin, lane, &batch)?;
                shared
                    .persisted
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                continue;
            }
            bin.file.lock().file.flush()?;
            acked = target;
            let mut ctl = bin.ctl.lock();
            ctl.acked[lane] = ctl.acked[lane].max(target);
            let cycle_done = ctl
                .acked
                .iter()
                .zip(&ctl.exited)
                .all(|(a, e)| *e || *a >= target);
            if cycle_done && ctl.flushed_epoch < target {
                ctl.flushed_epoch = target;
                shared.flushes.fetch_add(1, Ordering::Relaxed);
            }
            bin.ctl.notify_all();
            continue;
        }
        let (_guard, _) = bin.ctl.wait_timeout(ctl, Duration::from_millis(1));
    }
}

// ---------------------------------------------------------------- reading

/// Parsed first line of a streamed JSONL artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// [`STREAM_VERSION`] at write time.
    pub version: u64,
    /// `"jsonl"` for line-oriented streams.
    pub format: String,
    /// Timestamp unit (`"us"`).
    pub clock: String,
    /// Run metadata stamped by the producer (scenario, seed, ...).
    pub meta: Vec<(String, String)>,
}

/// Parse the header line of a streamed JSONL artifact.
pub fn parse_jsonl_header(line: &str) -> Result<StreamHeader, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("header is not JSON: {e}"))?;
    let version = v
        .get("oddci_stream")
        .and_then(Value::as_u64)
        .ok_or("header missing integer `oddci_stream`")?;
    let format = v
        .get("format")
        .and_then(Value::as_str)
        .ok_or("header missing string `format`")?
        .to_string();
    let clock = v
        .get("clock")
        .and_then(Value::as_str)
        .ok_or("header missing string `clock`")?
        .to_string();
    let mut meta = Vec::new();
    if let Some(Value::Object(entries)) = v.get("meta") {
        for (k, val) in entries {
            if let Some(s) = val.as_str() {
                meta.push((k.clone(), s.to_string()));
            }
        }
    }
    Ok(StreamHeader {
        version,
        format,
        clock,
        meta,
    })
}

/// Read a whole streamed JSONL artifact back: header plus every event,
/// in file order. The inverse of the sink's JSONL output; used by the
/// CLI and benches to recompute model checks from the *streamed* trace
/// instead of the lossy in-memory ring.
pub fn read_jsonl_events(text: &str) -> Result<(StreamHeader, Vec<Event>), String> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty stream")?;
    let header = parse_jsonl_header(header_line)?;
    if header.format != "jsonl" {
        return Err(format!("expected jsonl stream, got `{}`", header.format));
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: Event = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        events.push(ev);
    }
    Ok((header, events))
}

/// Reconstruct the durations (µs) of every completed span of `phase`
/// from a streamed event sequence, matching Begin/End per
/// `(track, scope)` in file order. Lanes preserve per-track FIFO order,
/// so pairs always match even though the global order is not sorted.
pub fn span_durations_us(events: &[Event], phase: Phase) -> Vec<u64> {
    use std::collections::HashMap;
    let mut open: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    let mut durations = Vec::new();
    for ev in events {
        if ev.phase != phase {
            continue;
        }
        match ev.kind {
            EventKind::Begin => open.entry((ev.track, ev.scope)).or_default().push(ev.ts_us),
            EventKind::End => {
                if let Some(begin) = open.get_mut(&(ev.track, ev.scope)).and_then(Vec::pop) {
                    durations.push(ev.ts_us.saturating_sub(begin));
                }
            }
            EventKind::Instant => {}
        }
    }
    durations
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    static NEXT: TestCounter = TestCounter::new(0);

    fn temp(name: &str) -> PathBuf {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("oddci-sink-{}-{n}-{name}", std::process::id()))
    }

    fn ev(ts: u64, phase: Phase, kind: EventKind, track: u64) -> Event {
        Event {
            ts_us: ts,
            phase,
            kind,
            track,
            scope: 7,
        }
    }

    #[test]
    fn streams_jsonl_round_trip() {
        let path = temp("round.jsonl");
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(1)
            .meta("scenario", "unit")
            .start()
            .unwrap();
        for i in 0..100u64 {
            assert!(sink.offer(ev(i, Phase::Heartbeat, EventKind::Instant, i % 3), None));
        }
        let summary = sink.finish().unwrap();
        assert_eq!(summary.stats.emitted, 100);
        assert_eq!(summary.stats.persisted, 100);
        assert_eq!(summary.stats.dropped, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let (header, events) = read_jsonl_events(&text).unwrap();
        assert_eq!(header.version, STREAM_VERSION);
        assert_eq!(header.meta, vec![("scenario".into(), "unit".into())]);
        assert_eq!(events.len(), 100);
        assert_eq!(events[0], ev(0, Phase::Heartbeat, EventKind::Instant, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chrome_stream_is_valid_document() {
        let path = temp("doc.stream.json");
        let sink = StreamingSink::builder()
            .chrome(&path)
            .lanes(1)
            .start()
            .unwrap();
        sink.offer(ev(5, Phase::DveBoot, EventKind::Begin, 2), None);
        sink.offer(ev(9, Phase::DveBoot, EventKind::End, 2), None);
        sink.offer(ev(9, Phase::Heartbeat, EventKind::Instant, 2), None);
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: Value = serde_json::from_str(&text).unwrap();
        let rows = doc["traceEvents"].as_array().unwrap();
        assert_eq!(rows.len(), 4, "1 thread_name meta row + 3 events");
        assert_eq!(rows[0]["ph"].as_str(), Some("M"));
        assert_eq!(rows[1]["name"].as_str(), Some("dve.boot"));
        assert!(doc["otherData"]["oddci_stream"].as_str().is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn full_lane_drops_with_exact_accounting() {
        let path = temp("drops.jsonl");
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(1)
            .lane_capacity(8)
            .start()
            .unwrap();
        // Stall the writer by flooding faster than it can possibly keep
        // up is nondeterministic; instead hold the lane full by offering
        // from under the writer's feet in one burst and checking the
        // identity, which must hold regardless of how many made it.
        for i in 0..10_000u64 {
            sink.offer(ev(i, Phase::Compute, EventKind::Instant, 0), Some(0));
        }
        let summary = sink.finish().unwrap();
        assert_eq!(summary.stats.emitted, 10_000);
        assert_eq!(
            summary.stats.persisted + summary.stats.dropped,
            summary.stats.emitted
        );
        if summary.stats.dropped > 0 {
            let by_phase = sink.dropped_by_phase();
            assert_eq!(by_phase.len(), 1);
            assert_eq!(by_phase[0].0, "task.compute");
            assert_eq!(by_phase[0].1, summary.stats.dropped);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn offers_after_finish_count_as_dropped() {
        let path = temp("late.jsonl");
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(2)
            .start()
            .unwrap();
        sink.offer(ev(1, Phase::Heartbeat, EventKind::Instant, 0), None);
        let summary = sink.finish().unwrap();
        assert_eq!(summary.stats.persisted, 1);
        assert!(!sink.offer(ev(2, Phase::Heartbeat, EventKind::Instant, 0), None));
        let stats = sink.stats();
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.persisted + stats.dropped, stats.emitted);
        // The late event must not be in the file.
        let text = std::fs::read_to_string(&path).unwrap();
        let (_, events) = read_jsonl_events(&text).unwrap();
        assert_eq!(events.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_makes_events_durable_mid_run() {
        let path = temp("flush.jsonl");
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(4)
            .start()
            .unwrap();
        for i in 0..500u64 {
            sink.offer(ev(i, Phase::TaskFetch, EventKind::Instant, i), None);
        }
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.persisted, 500, "flush persists everything offered");
        assert!(stats.flushes >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let (_, events) = read_jsonl_events(&text).unwrap();
        assert_eq!(events.len(), 500);
        sink.finish().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_stream_round_trips_with_per_lane_writers() {
        let path = temp("round.trace.bin");
        let sink = StreamingSink::builder()
            .binary(&path)
            .lanes(3)
            .meta("scenario", "unit")
            .start()
            .unwrap();
        let mut offered = Vec::new();
        for i in 0..300u64 {
            let e = ev(i, Phase::Heartbeat, EventKind::Instant, i % 5);
            assert!(sink.offer(e, Some((i % 3) as usize)));
            offered.push(e);
        }
        let summary = sink.finish().unwrap();
        assert_eq!(summary.stats.emitted, 300);
        assert_eq!(summary.stats.persisted, 300);
        assert_eq!(summary.stats.dropped, 0);
        assert_eq!(summary.outputs.len(), 1);
        assert_eq!(summary.outputs[0].format, StreamFormat::Binary);
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(summary.outputs[0].bytes, on_disk);

        let trace = crate::binary::read_file(&path).unwrap();
        assert!(trace.truncated.is_none());
        assert_eq!(trace.header.lanes, 3);
        assert_eq!(trace.header.meta, vec![("scenario".into(), "unit".into())]);
        // Lane blocks interleave, so compare as multisets.
        let mut got = trace.events;
        let mut want = offered;
        let key = |e: &Event| (e.ts_us, e.phase.index(), e.track, e.scope);
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_flush_makes_events_durable_mid_run() {
        let path = temp("flush.trace.bin");
        let sink = StreamingSink::builder()
            .binary(&path)
            .lanes(4)
            .start()
            .unwrap();
        for i in 0..500u64 {
            sink.offer(ev(i, Phase::TaskFetch, EventKind::Instant, i), None);
        }
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.persisted, 500, "flush persists everything offered");
        assert!(stats.flushes >= 1);
        let trace = crate::binary::read_file(&path).unwrap();
        assert_eq!(trace.events.len(), 500);
        sink.finish().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_keeps_exact_accounting_under_pressure_and_after_finish() {
        let path = temp("drops.trace.bin");
        let sink = StreamingSink::builder()
            .binary(&path)
            .lanes(1)
            .lane_capacity(8)
            .start()
            .unwrap();
        for i in 0..10_000u64 {
            sink.offer(ev(i, Phase::Compute, EventKind::Instant, 0), Some(0));
        }
        let summary = sink.finish().unwrap();
        assert_eq!(summary.stats.emitted, 10_000);
        assert_eq!(
            summary.stats.persisted + summary.stats.dropped,
            summary.stats.emitted
        );
        assert!(!sink.offer(ev(0, Phase::Compute, EventKind::Instant, 0), None));
        let stats = sink.stats();
        assert_eq!(stats.persisted + stats.dropped, stats.emitted);
        let trace = crate::binary::read_file(&path).unwrap();
        assert_eq!(trace.events.len() as u64, summary.stats.persisted);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_refuses_to_mix_with_text_outputs() {
        let err = StreamingSink::builder()
            .jsonl(temp("mix.trace.jsonl"))
            .binary(temp("mix.trace.bin"))
            .start()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("exclusive"), "{err}");
    }

    #[test]
    fn binary_converts_to_the_text_formats() {
        let bin_path = temp("conv.trace.bin");
        let sink = StreamingSink::builder()
            .binary(&bin_path)
            .lanes(2)
            .meta("scenario", "unit")
            .start()
            .unwrap();
        sink.offer(ev(5, Phase::DveBoot, EventKind::Begin, 2), Some(0));
        sink.offer(ev(9, Phase::DveBoot, EventKind::End, 2), Some(0));
        sink.offer(ev(9, Phase::Heartbeat, EventKind::Instant, 3), Some(1));
        sink.finish().unwrap();

        let jsonl_path = temp("conv.trace.jsonl");
        let chrome_path = temp("conv.trace.stream.json");
        let trace = crate::binary::read_file(&bin_path).unwrap();
        let outputs =
            crate::binary::convert(&trace, Some(&jsonl_path), Some(&chrome_path)).unwrap();
        assert_eq!(outputs.len(), 2);

        let text = std::fs::read_to_string(&jsonl_path).unwrap();
        let (header, events) = read_jsonl_events(&text).unwrap();
        assert_eq!(header.version, STREAM_VERSION);
        assert!(header
            .meta
            .contains(&("scenario".to_string(), "unit".to_string())));
        assert!(header
            .meta
            .contains(&("converted_from".to_string(), "binary".to_string())));
        assert_eq!(events.len(), 3);

        let chrome_text = std::fs::read_to_string(&chrome_path).unwrap();
        let doc: Value = serde_json::from_str(&chrome_text).unwrap();
        assert!(doc["traceEvents"].as_array().is_some());
        assert!(doc["otherData"]["oddci_stream"].as_str().is_some());
        for p in [&bin_path, &jsonl_path, &chrome_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn span_durations_match_pairs_per_track() {
        let events = vec![
            ev(10, Phase::DveBoot, EventKind::Begin, 1),
            ev(12, Phase::DveBoot, EventKind::Begin, 2),
            ev(30, Phase::DveBoot, EventKind::End, 1),
            ev(50, Phase::DveBoot, EventKind::End, 2),
            ev(60, Phase::Heartbeat, EventKind::Instant, 1),
        ];
        let mut durs = span_durations_us(&events, Phase::DveBoot);
        durs.sort_unstable();
        assert_eq!(durs, vec![20, 38]);
    }
}
