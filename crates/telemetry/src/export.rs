//! Exporters: Chrome `trace_event` JSON, JSONL event log, and a
//! Prometheus-style text dump.
//!
//! All three are pure functions from recorded data to text, so they can
//! run after the simulation without holding any telemetry locks during
//! the run itself.

use crate::event::{Event, EventKind, CONTROL_TRACK};
use crate::registry::RegistrySnapshot;
use serde_json::Value;

/// Chrome trace viewer thread id for a track: the control plane maps to
/// tid 0, node `n` to `n + 1`.
pub fn track_tid(track: u64) -> u64 {
    if track == CONTROL_TRACK {
        0
    } else {
        track.saturating_add(1).min(u64::MAX - 1)
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: u64) -> Value {
    Value::Number(serde_json::Number::U(n))
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

/// The `M` metadata row naming a track's lane in the trace viewer.
/// Shared by the batch exporter and the streaming sink so both artifact
/// flavors render byte-identical rows.
pub(crate) fn thread_meta_row(track: u64) -> Value {
    let name = if track == CONTROL_TRACK {
        "control-plane".to_string()
    } else {
        format!("node-{track}")
    };
    obj(vec![
        ("name", s("thread_name")),
        ("ph", s("M")),
        ("pid", num(1)),
        ("tid", num(track_tid(track))),
        ("args", obj(vec![("name", s(&name))])),
    ])
}

/// One Chrome `trace_event` row for an event (`B`/`E`/`i`).
pub(crate) fn event_row(ev: &Event) -> Value {
    let ph = match ev.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    };
    let mut entries = vec![
        ("name", s(ev.phase.label())),
        ("cat", s("oddci")),
        ("ph", s(ph)),
        ("ts", num(ev.ts_us)),
        ("pid", num(1)),
        ("tid", num(track_tid(ev.track))),
    ];
    if ev.kind == EventKind::Instant {
        entries.push(("s", s("t")));
    }
    entries.push(("args", obj(vec![("scope", num(ev.scope))])));
    obj(entries)
}

/// Render events as Chrome `trace_event` JSON (the `about://tracing` /
/// Perfetto "JSON Object Format"): `{"traceEvents": [...]}` with `B`/`E`
/// duration events, `i` instants, and `M` metadata rows naming each
/// track. Events are stable-sorted by timestamp so retro-emitted spans
/// come out in viewer order.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut sorted: Vec<Event> = events.to_vec();
    sorted.sort_by_key(|e| e.ts_us);

    let mut tracks: Vec<u64> = sorted.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut rows: Vec<Value> = Vec::with_capacity(sorted.len() + tracks.len());
    for track in &tracks {
        rows.push(thread_meta_row(*track));
    }
    for ev in &sorted {
        rows.push(event_row(ev));
    }

    let doc = obj(vec![
        ("traceEvents", Value::Array(rows)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serializes")
}

/// Render events as JSONL: one compact JSON object per line, in recorded
/// order (no sorting — this is the raw log).
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Replace characters Prometheus metric names reject.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Render a registry snapshot in Prometheus text exposition format:
/// counters and gauges as-is, histograms flattened into
/// `<name>_{count,mean,p50,p90,p99,max}` series (seconds).
pub fn prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            fmt_f64(*value)
        ));
    }
    for (name, h) in &snapshot.histograms {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name}_seconds summary\n"));
        out.push_str(&format!("{name}_seconds_count {}\n", h.count));
        out.push_str(&format!("{name}_seconds_mean {}\n", fmt_f64(h.mean)));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!(
                "{name}_seconds{{quantile=\"{q}\"}} {}\n",
                fmt_f64(v)
            ));
        }
        out.push_str(&format!("{name}_seconds_max {}\n", fmt_f64(h.max)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::recorder::Recorder;
    use crate::registry::Registry;

    fn sample_events() -> Vec<Event> {
        let r = Recorder::with_capacity(64);
        r.instant(0, Phase::CarouselPublish, CONTROL_TRACK, 7);
        r.span(0, 1500, Phase::WakeupWait, 2, 7);
        r.span(1500, 9000, Phase::DveBoot, 2, 7);
        r.instant(9000, Phase::Heartbeat, 2, 7);
        r.events()
    }

    #[test]
    fn chrome_trace_is_valid_sorted_and_paired() {
        let text = chrome_trace(&sample_events());
        let doc: Value = serde_json::from_str(&text).unwrap();
        let rows = doc["traceEvents"].as_array().unwrap();
        // 2 metadata rows (control + node-2) + 6 events.
        assert_eq!(rows.len(), 8);

        let mut last_ts = 0u64;
        let mut begins = 0i64;
        for row in rows {
            let ph = row["ph"].as_str().unwrap();
            if ph == "M" {
                continue;
            }
            let ts = row["ts"].as_u64().unwrap();
            assert!(ts >= last_ts, "timestamps must be monotone");
            last_ts = ts;
            match ph {
                "B" => begins += 1,
                "E" => begins -= 1,
                "i" => assert_eq!(row["s"].as_str(), Some("t")),
                other => panic!("unexpected ph {other}"),
            }
            assert_eq!(row["pid"].as_u64(), Some(1));
            assert_eq!(row["cat"].as_str(), Some("oddci"));
        }
        assert_eq!(begins, 0, "every B has a matching E");
    }

    #[test]
    fn track_tid_maps_control_to_zero() {
        assert_eq!(track_tid(CONTROL_TRACK), 0);
        assert_eq!(track_tid(0), 1);
        assert_eq!(track_tid(41), 42);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("ts_us").is_some());
            assert!(v.get("phase").is_some());
        }
    }

    #[test]
    fn prometheus_dump_has_expected_series() {
        let reg = Registry::new();
        reg.counter("world.joins").add(3);
        reg.gauge("backend.queue-depth").set(2.0);
        reg.histogram("dve.boot").record(0.5);
        let text = prometheus(&reg.snapshot());
        assert!(text.contains("world_joins 3\n"), "{text}");
        assert!(text.contains("backend_queue_depth 2.0\n"), "{text}");
        assert!(text.contains("dve_boot_seconds_count 1\n"), "{text}");
        assert!(
            text.contains("dve_boot_seconds{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(!text.contains('-'), "metric names must be sanitized");
    }
}
