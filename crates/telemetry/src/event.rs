//! The span/event vocabulary.
//!
//! Every observable moment in an OddCI run is an [`Event`]: a fixed-size,
//! copyable record of *what* happened ([`Phase`]), *how* it relates to a
//! duration ([`EventKind`]), *when* (microseconds on the plane's clock —
//! sim-time in the discrete-event world, wall-clock in the live runtime),
//! *where* (a track: one per node, plus the control plane) and *about
//! what* (a scope: instance, job or zero).
//!
//! Phases are a closed enum rather than free-form strings so recording is
//! allocation-free and the per-phase latency histograms can be cached as a
//! dense array.

use serde::{Deserialize, Serialize};

/// Track id used for control-plane (non-node) events.
pub const CONTROL_TRACK: u64 = u64::MAX;

/// The lifecycle phases the stack instruments, in causal order of a task's
/// life: a wakeup hits the carousel, a node reads the config and accepts,
/// boots its DVE, then loops fetch → compute → upload under a heartbeat
/// drumbeat until reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// A control message (wakeup or reset) starts cycling on the carousel.
    CarouselPublish,
    /// Publish → the node's config read completes (half a carousel cycle
    /// on average): the paper's wakeup *waiting* component.
    WakeupWait,
    /// The PNA passed the probability gate and requirements check.
    PnaAccept,
    /// Acceptance → image acquired and DVE running: the paper's image
    /// *transfer* component (`I/β` with carousel framing).
    DveBoot,
    /// Task request sent → task input fully on the node.
    TaskFetch,
    /// Task input on the node → computation finished.
    Compute,
    /// Result upload started → result accepted by the Backend.
    ResultUpload,
    /// One heartbeat left a node.
    Heartbeat,
    /// A fetch or upload retry was scheduled (bounded backoff).
    Retry,
    /// The Controller declared a node lost (missed-heartbeat budget).
    NodeLost,
    /// A direct reset reached a node.
    DirectReset,
    /// One direct-channel message delivery (RTT histogram feeder).
    DirectTransfer,
    /// Device-level kernel execution time (sampled in the sim, measured
    /// on the wall clock in the live runtime).
    Kernel,
    /// Job submit → Provider report complete.
    JobRun,
    /// A socket transport accepted or established one connection.
    WireConnect,
    /// One wire frame left a socket transport.
    WireTx,
    /// One wire frame arrived and passed its checksum.
    WireRx,
    /// One durability snapshot of headend state was cut and persisted.
    HeadendSnapshot,
    /// A standby headend adopted a snapshot: state import + re-bind.
    HeadendAdopt,
    /// Post-snapshot trace-suffix replay during adoption.
    HeadendReplay,
    /// One autoscale reconciliation pass: sample gauges, compute the
    /// desired size, apply the decision.
    ProviderReconcile,
    /// The reconciler raised the instance's desired size.
    ProviderScaleUp,
    /// The reconciler lowered the instance's desired size.
    ProviderScaleDown,
}

impl Phase {
    /// Every phase, in declaration order (dense indexing).
    pub const ALL: [Phase; 23] = [
        Phase::CarouselPublish,
        Phase::WakeupWait,
        Phase::PnaAccept,
        Phase::DveBoot,
        Phase::TaskFetch,
        Phase::Compute,
        Phase::ResultUpload,
        Phase::Heartbeat,
        Phase::Retry,
        Phase::NodeLost,
        Phase::DirectReset,
        Phase::DirectTransfer,
        Phase::Kernel,
        Phase::JobRun,
        Phase::WireConnect,
        Phase::WireTx,
        Phase::WireRx,
        Phase::HeadendSnapshot,
        Phase::HeadendAdopt,
        Phase::HeadendReplay,
        Phase::ProviderReconcile,
        Phase::ProviderScaleUp,
        Phase::ProviderScaleDown,
    ];

    /// Number of phases (size of dense per-phase arrays).
    pub const COUNT: usize = Phase::ALL.len();

    /// Dense index of this phase within [`Phase::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted name used in exports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Phase::CarouselPublish => "carousel.publish",
            Phase::WakeupWait => "wakeup.wait",
            Phase::PnaAccept => "pna.accept",
            Phase::DveBoot => "dve.boot",
            Phase::TaskFetch => "task.fetch",
            Phase::Compute => "task.compute",
            Phase::ResultUpload => "task.upload",
            Phase::Heartbeat => "heartbeat",
            Phase::Retry => "retry",
            Phase::NodeLost => "node.lost",
            Phase::DirectReset => "direct.reset",
            Phase::DirectTransfer => "net.transfer",
            Phase::Kernel => "receiver.kernel",
            Phase::JobRun => "job.run",
            Phase::WireConnect => "wire.connect",
            Phase::WireTx => "wire.tx",
            Phase::WireRx => "wire.rx",
            Phase::HeadendSnapshot => "headend.snapshot",
            Phase::HeadendAdopt => "headend.adopt",
            Phase::HeadendReplay => "headend.replay",
            Phase::ProviderReconcile => "provider.reconcile",
            Phase::ProviderScaleUp => "provider.scale_up",
            Phase::ProviderScaleDown => "provider.scale_down",
        }
    }

    /// True for phases that describe durations (Begin/End pairs); false
    /// for point-in-time marks.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            Phase::WakeupWait
                | Phase::DveBoot
                | Phase::TaskFetch
                | Phase::Compute
                | Phase::ResultUpload
                | Phase::DirectTransfer
                | Phase::Kernel
                | Phase::JobRun
                | Phase::HeadendSnapshot
                | Phase::HeadendAdopt
                | Phase::HeadendReplay
                | Phase::ProviderReconcile
        )
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How an event relates to a duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opens.
    Begin,
    /// A span closes.
    End,
    /// A point-in-time mark.
    Instant,
}

/// One recorded event. Fixed-size and `Copy`, so the recorder's ring is a
/// flat memcpy-friendly buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Microseconds on the producing plane's clock.
    pub ts_us: u64,
    /// What happened.
    pub phase: Phase,
    /// Span begin/end or instant mark.
    pub kind: EventKind,
    /// Node id, or [`CONTROL_TRACK`] for control-plane events.
    pub track: u64,
    /// Instance/job/task the event is about (`0` when not applicable).
    pub scope: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_labels_unique() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::COUNT);
    }

    #[test]
    fn span_phases_are_marked() {
        assert!(Phase::DveBoot.is_span());
        assert!(Phase::JobRun.is_span());
        assert!(Phase::HeadendSnapshot.is_span());
        assert!(Phase::HeadendAdopt.is_span());
        assert!(Phase::HeadendReplay.is_span());
        assert!(Phase::ProviderReconcile.is_span());
        assert!(!Phase::Heartbeat.is_span());
        assert!(!Phase::CarouselPublish.is_span());
        assert!(!Phase::ProviderScaleUp.is_span());
        assert!(!Phase::ProviderScaleDown.is_span());
    }
}
