//! Compact self-describing binary trace format — the zero-drop answer to
//! the JSONL/Chrome text streams.
//!
//! The text formats cost ~100 bytes of serde serialization per event on
//! one writer thread; at the million-receiver sweep scale that single
//! serializer *is* the bottleneck and the sink drops half the run (X9).
//! The binary format attacks both costs at once:
//!
//! * **Compact records.** A span/instant record is a 1-byte tag (event
//!   kind + interned phase index), a zigzag-varint timestamp delta
//!   against the previous record in its block, and varint track/scope —
//!   typically 4–8 bytes instead of ~100.
//! * **Self-describing.** The header carries the phase *label table*
//!   (interned strings, record tags index into it), the run metadata and
//!   the lane count, so a reader needs nothing but the file — phases
//!   added or reordered later decode by label, not by enum ordinal.
//! * **Per-lane blocks.** The body is a sequence of independent lane
//!   blocks, each self-contained (own timestamp base, declared payload
//!   length). Writers append whole blocks, so one writer thread per lane
//!   can encode privately and serialize only on the file append — see
//!   [`crate::sink::StreamBuilder::binary`].
//!
//! A truncated file (crash mid-run, full disk) decodes to every complete
//! block plus a [`BinaryTrace::truncated`] report describing the partial
//! tail — never a panic, never silent data loss.
//!
//! ```text
//! file   := magic "ODCB" | version u16 LE | phase-table | meta | lanes | block*
//! phase-table := varint count | (varint len | utf8 bytes)*
//! meta   := varint count | (string key | string value)*
//! block  := varint lane | varint records | varint payload-len | record*
//! record := tag u8 (kind << 6 | phase-index) | zigzag-varint ts-delta
//!           | varint track | varint scope
//! ```

use crate::event::{Event, EventKind, Phase};
use crate::sink::{Output, OutputSummary, StreamFormat};
use std::io;
use std::path::Path;

/// First four bytes of every binary trace file.
pub const MAGIC: [u8; 4] = *b"ODCB";

/// Format version stamped after the magic.
pub const BINARY_VERSION: u16 = 1;

// ------------------------------------------------------------- varints

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = more).
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` zigzag-mapped (small magnitudes of either sign stay short).
fn put_zigzag(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Byte cursor over a decoded file. Every accessor returns `None` at end
/// of input so callers can distinguish truncation from corruption.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = *self.bytes.get(self.pos)?;
            self.pos += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    fn zigzag(&mut self) -> Option<i64> {
        let v = self.varint()?;
        Some(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

// ------------------------------------------------------------- encoding

fn kind_code(kind: EventKind) -> u8 {
    match kind {
        EventKind::Begin => 0,
        EventKind::End => 1,
        EventKind::Instant => 2,
    }
}

fn kind_from_code(code: u8) -> Option<EventKind> {
    match code {
        0 => Some(EventKind::Begin),
        1 => Some(EventKind::End),
        2 => Some(EventKind::Instant),
        _ => None,
    }
}

/// Serialize the file header: magic, version, the interned phase-label
/// table (record tags index into it, in [`Phase::ALL`] order at write
/// time), the run metadata and the writer lane count.
pub fn encode_header(meta: &[(String, String)], lanes: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    put_varint(&mut buf, Phase::ALL.len() as u64);
    for phase in Phase::ALL {
        put_str(&mut buf, phase.label());
    }
    put_varint(&mut buf, meta.len() as u64);
    for (k, v) in meta {
        put_str(&mut buf, k);
        put_str(&mut buf, v);
    }
    put_varint(&mut buf, lanes as u64);
    buf
}

/// Serialize one self-contained lane block. Timestamps are delta-encoded
/// inside the block (first record is a delta against 0), so blocks can be
/// appended by independent writers in any interleaving.
pub fn encode_block(lane: u64, events: &[Event]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(events.len() * 8);
    let mut prev_ts: u64 = 0;
    for ev in events {
        let phase_idx = ev.phase.index() as u8;
        debug_assert!(phase_idx < 64, "phase index must fit the 6-bit tag");
        payload.push((kind_code(ev.kind) << 6) | (phase_idx & 0x3f));
        put_zigzag(&mut payload, (ev.ts_us as i64).wrapping_sub(prev_ts as i64));
        prev_ts = ev.ts_us;
        put_varint(&mut payload, ev.track);
        put_varint(&mut payload, ev.scope);
    }
    let mut block = Vec::with_capacity(payload.len() + 16);
    put_varint(&mut block, lane);
    put_varint(&mut block, events.len() as u64);
    put_varint(&mut block, payload.len() as u64);
    block.extend_from_slice(&payload);
    block
}

// ------------------------------------------------------------- decoding

/// Why a binary trace failed to decode. Truncation of the *body* is not
/// an error — see [`BinaryTrace::truncated`] — but a header too short to
/// describe the file, or garbage inside a complete block, is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader.
    UnsupportedVersion(u16),
    /// The header ended early or contained malformed tables.
    Header(String),
    /// A phase label in the file matches no phase this build knows.
    UnknownPhase(String),
    /// A block declared complete contains malformed records.
    Corrupt(String),
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            BinaryError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported binary trace version {v} (reader speaks {BINARY_VERSION})"
                )
            }
            BinaryError::Header(msg) => write!(f, "malformed header: {msg}"),
            BinaryError::UnknownPhase(label) => write!(f, "unknown phase label `{label}`"),
            BinaryError::Corrupt(msg) => write!(f, "corrupt block: {msg}"),
        }
    }
}

impl std::error::Error for BinaryError {}

/// Decoded file header: everything before the first lane block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryHeader {
    /// Format version the writer stamped.
    pub version: u16,
    /// Phase label table, in file order; record tags index into it.
    pub labels: Vec<String>,
    /// Run metadata key/value pairs (scenario, seed, ...).
    pub meta: Vec<(String, String)>,
    /// Writer lanes the producer ran.
    pub lanes: u64,
}

/// A fully decoded binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTrace {
    /// The file header.
    pub header: BinaryHeader,
    /// Every event from every complete block, in file order.
    pub events: Vec<Event>,
    /// `Some(description)` when the file ends mid-block (crash, full
    /// disk): all complete blocks still decoded, the partial tail did
    /// not.
    pub truncated: Option<String>,
}

/// Decode just the header; returns it plus the byte offset of the first
/// block. Used by `schema_check` to validate magic/version without
/// loading a multi-gigabyte sweep body.
pub fn decode_header(bytes: &[u8]) -> Result<(BinaryHeader, usize), BinaryError> {
    let mut c = Cursor::new(bytes);
    let magic = c.take(4).ok_or(BinaryError::BadMagic)?;
    if magic != MAGIC {
        return Err(BinaryError::BadMagic);
    }
    let version_bytes = c
        .take(2)
        .ok_or_else(|| BinaryError::Header("version cut off".into()))?;
    let version = u16::from_le_bytes([version_bytes[0], version_bytes[1]]);
    if version > BINARY_VERSION {
        return Err(BinaryError::UnsupportedVersion(version));
    }
    let n_labels = c
        .varint()
        .ok_or_else(|| BinaryError::Header("phase table count cut off".into()))?;
    if n_labels > 64 {
        return Err(BinaryError::Header(format!(
            "phase table has {n_labels} entries, tag byte indexes at most 64"
        )));
    }
    let mut labels = Vec::with_capacity(n_labels as usize);
    for i in 0..n_labels {
        labels.push(
            c.string()
                .ok_or_else(|| BinaryError::Header(format!("phase label {i} cut off")))?,
        );
    }
    let n_meta = c
        .varint()
        .ok_or_else(|| BinaryError::Header("meta count cut off".into()))?;
    let mut meta = Vec::with_capacity(n_meta.min(1024) as usize);
    for i in 0..n_meta {
        let k = c
            .string()
            .ok_or_else(|| BinaryError::Header(format!("meta key {i} cut off")))?;
        let v = c
            .string()
            .ok_or_else(|| BinaryError::Header(format!("meta value {i} cut off")))?;
        meta.push((k, v));
    }
    let lanes = c
        .varint()
        .ok_or_else(|| BinaryError::Header("lane count cut off".into()))?;
    Ok((
        BinaryHeader {
            version,
            labels,
            meta,
            lanes,
        },
        c.pos,
    ))
}

/// Decode a whole binary trace. Complete blocks always decode; a file cut
/// off mid-block yields the prefix plus a [`BinaryTrace::truncated`]
/// report instead of an error.
pub fn decode(bytes: &[u8]) -> Result<BinaryTrace, BinaryError> {
    let (header, body_start) = decode_header(bytes)?;
    let phases: Vec<Phase> = header
        .labels
        .iter()
        .map(|label| {
            Phase::ALL
                .iter()
                .copied()
                .find(|p| p.label() == label)
                .ok_or_else(|| BinaryError::UnknownPhase(label.clone()))
        })
        .collect::<Result<_, _>>()?;

    let mut c = Cursor::new(bytes);
    c.pos = body_start;
    let mut events = Vec::new();
    let mut truncated = None;

    while c.remaining() > 0 {
        let block_start = c.pos;
        let (Some(lane), Some(count), Some(payload_len)) = (c.varint(), c.varint(), c.varint())
        else {
            truncated = Some(format!(
                "file ends inside a block header ({} trailing byte(s) at offset {block_start})",
                bytes.len() - block_start
            ));
            break;
        };
        let Some(payload) = c.take(payload_len as usize) else {
            truncated = Some(format!(
                "lane {lane} block at offset {block_start} declares {payload_len} payload \
                 byte(s) but only {} remain — partial tail record(s) dropped",
                c.remaining()
            ));
            break;
        };
        let mut pc = Cursor::new(payload);
        let mut prev_ts: u64 = 0;
        for i in 0..count {
            let (Some(tag), Some(delta), Some(track), Some(scope)) = (
                pc.take(1).map(|b| b[0]),
                pc.zigzag(),
                pc.varint(),
                pc.varint(),
            ) else {
                return Err(BinaryError::Corrupt(format!(
                    "lane {lane} block at offset {block_start}: record {i} of {count} cut off \
                     inside a complete payload"
                )));
            };
            let kind = kind_from_code(tag >> 6).ok_or_else(|| {
                BinaryError::Corrupt(format!(
                    "lane {lane} block at offset {block_start}: record {i} has invalid kind bits"
                ))
            })?;
            let phase_idx = (tag & 0x3f) as usize;
            let phase = *phases.get(phase_idx).ok_or_else(|| {
                BinaryError::Corrupt(format!(
                    "lane {lane} block at offset {block_start}: record {i} indexes phase \
                     {phase_idx} outside the {}-entry table",
                    phases.len()
                ))
            })?;
            let ts_us = (prev_ts as i64).wrapping_add(delta) as u64;
            prev_ts = ts_us;
            events.push(Event {
                ts_us,
                phase,
                kind,
                track,
                scope,
            });
        }
        if pc.remaining() > 0 {
            return Err(BinaryError::Corrupt(format!(
                "lane {lane} block at offset {block_start}: {} byte(s) left after {count} \
                 record(s)",
                pc.remaining()
            )));
        }
    }

    Ok(BinaryTrace {
        header,
        events,
        truncated,
    })
}

/// Read and decode a binary trace file.
pub fn read_file(path: &Path) -> io::Result<BinaryTrace> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Losslessly re-emit a decoded binary trace as the text stream formats,
/// through the *same* writer machinery the live sink uses — converted
/// artifacts are byte-compatible with directly streamed ones (header
/// stamp, row layout), so every existing reader and the `schema_check`
/// gate accept them unchanged.
pub fn convert(
    trace: &BinaryTrace,
    jsonl: Option<&Path>,
    chrome: Option<&Path>,
) -> io::Result<Vec<OutputSummary>> {
    let mut meta = trace.header.meta.clone();
    meta.push(("converted_from".to_string(), "binary".to_string()));
    let mut summaries = Vec::new();
    for (path, format) in [(jsonl, StreamFormat::Jsonl), (chrome, StreamFormat::Chrome)] {
        let Some(path) = path else { continue };
        let mut out = Output::create(path, format, &meta)?;
        for ev in &trace.events {
            out.write_event(ev)?;
        }
        summaries.push(out.seal()?);
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CONTROL_TRACK;

    fn ev(ts: u64, phase: Phase, kind: EventKind, track: u64, scope: u64) -> Event {
        Event {
            ts_us: ts,
            phase,
            kind,
            track,
            scope,
        }
    }

    fn sample() -> Vec<Event> {
        vec![
            ev(
                5,
                Phase::CarouselPublish,
                EventKind::Instant,
                CONTROL_TRACK,
                1,
            ),
            ev(10, Phase::WakeupWait, EventKind::Begin, 3, 1),
            ev(1_500_000, Phase::WakeupWait, EventKind::End, 3, 1),
            ev(1_500_000, Phase::DveBoot, EventKind::Begin, 3, 1),
            // Deliberately out of order: deltas must go negative cleanly.
            ev(200, Phase::Heartbeat, EventKind::Instant, 4, 2),
        ]
    }

    fn file_bytes(events: &[Event]) -> Vec<u8> {
        let meta = vec![("scenario".to_string(), "unit".to_string())];
        let mut bytes = encode_header(&meta, 2);
        bytes.extend_from_slice(&encode_block(0, &events[..3]));
        bytes.extend_from_slice(&encode_block(1, &events[3..]));
        bytes
    }

    #[test]
    fn round_trips_exactly() {
        let events = sample();
        let trace = decode(&file_bytes(&events)).unwrap();
        assert_eq!(trace.header.version, BINARY_VERSION);
        assert_eq!(trace.header.lanes, 2);
        assert_eq!(trace.header.meta[0], ("scenario".into(), "unit".into()));
        assert_eq!(trace.header.labels.len(), Phase::ALL.len());
        assert_eq!(trace.events, events);
        assert!(trace.truncated.is_none());
    }

    #[test]
    fn truncated_tail_is_reported_not_fatal() {
        let events = sample();
        let bytes = file_bytes(&events);
        // Cut inside the second block's payload: first block survives.
        let cut = bytes.len() - 3;
        let trace = decode(&bytes[..cut]).unwrap();
        assert_eq!(trace.events, events[..3].to_vec());
        let report = trace.truncated.expect("partial tail must be reported");
        assert!(report.contains("partial tail"), "{report}");
        // Cut inside a block header varint.
        let header_len = decode_header(&bytes).unwrap().1;
        let trace = decode(&bytes[..header_len + 1]).unwrap();
        assert!(trace.events.is_empty());
        assert!(trace.truncated.is_some());
    }

    #[test]
    fn bad_magic_and_future_version_error() {
        assert_eq!(decode(b"NOPE").unwrap_err(), BinaryError::BadMagic);
        let mut bytes = file_bytes(&sample());
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            BinaryError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn garbage_in_a_complete_block_is_corrupt() {
        let events = sample();
        let mut bytes = file_bytes(&events);
        // Invalid kind bits (0b11) in the first record's tag byte.
        let header_len = decode_header(&bytes).unwrap().1;
        // Skip the 3 block-header varints (lane/count/len, all < 128 here).
        bytes[header_len + 3] = 0xc0 | (bytes[header_len + 3] & 0x3f);
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            BinaryError::Corrupt(_)
        ));
    }

    #[test]
    fn varints_cover_the_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).varint(), Some(v));
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            assert_eq!(Cursor::new(&buf).zigzag(), Some(v));
        }
    }
}
