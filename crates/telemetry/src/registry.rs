//! Metrics registry: counters, gauges and log-bucketed latency histograms.
//!
//! The registry is the *metrics* half of telemetry. Handles returned by
//! [`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`]
//! are cheap `Arc` clones; call sites cache them once and update through
//! atomics (counters, gauges) or a short mutex hold (histograms), so the
//! hot path never touches the name table.
//!
//! Unlike the recorder, the registry is **always on**: counters back the
//! public `MetricsSnapshot`, so enabling or disabling tracing must not
//! change any metric value.

use oddci_check::sync::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing (plus an explicit `set` for snapshot-style
/// restores) integer metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New counter starting at zero.
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value (used when restoring from a snapshot).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating point metric (queue depths, rates, sizes).
/// Stores the `f64` bit pattern in an `AtomicU64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// New gauge starting at `0.0`.
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: values are recorded in microseconds, so 64
/// buckets cover everything a `u64` can hold.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl HistogramInner {
    fn record_us(&mut self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Upper edge (µs) of the bucket containing quantile `q` in `[0, 1]`.
    fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket idx holds values in (2^(idx-1), 2^idx]; idx 0 is {0}.
                return if idx == 0 { 0 } else { 1u64 << idx.min(63) };
            }
        }
        self.max_us
    }

    fn summary(&self) -> HistogramSummary {
        // Quantiles report a bucket's upper edge; clamp to the exact
        // observed max so p50 ≤ p90 ≤ p99 ≤ max always holds in reports.
        let q = |quantile: f64| self.quantile_us(quantile).min(self.max_us) as f64 / 1e6;
        HistogramSummary {
            count: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum_us as f64 / self.count as f64 / 1e6
            },
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            max: self.max_us as f64 / 1e6,
        }
    }
}

/// Log2-bucketed latency histogram. Values are recorded in seconds and
/// binned at microsecond resolution, so quantiles carry at most one
/// power-of-two of bucketing error — plenty for p50/p90/p99 latency
/// reporting, and recording is O(1) with no allocation.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram(Arc<Mutex<HistogramInner>>);

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        LatencyHistogram(Arc::new(Mutex::new(HistogramInner::default())))
    }

    /// Record a duration in seconds. Negative or non-finite values are
    /// clamped to zero rather than poisoning the distribution.
    pub fn record(&self, seconds: f64) {
        let us = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e6).round() as u64
        } else {
            0
        };
        self.0.lock().record_us(us);
    }

    /// Record a duration already expressed in microseconds.
    pub fn record_us(&self, us: u64) {
        self.0.lock().record_us(us);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.lock().count
    }

    /// Point-in-time summary (all durations in seconds).
    pub fn summary(&self) -> HistogramSummary {
        self.0.lock().summary()
    }
}

/// Serializable digest of a [`LatencyHistogram`]; durations in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

/// Named metric table. Get-or-create semantics: asking twice for the same
/// name returns handles to the same underlying metric.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.insert(name.to_string(), g.clone());
        g
    }

    /// Get or create the latency histogram named `name`.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        let mut inner = self.inner.lock();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = LatencyHistogram::new();
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Serializable snapshot of a [`Registry`]. `BTreeMap` keeps export order
/// deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);

        let g = reg.gauge("depth");
        g.set(3.5);
        assert_eq!(reg.gauge("depth").get(), 3.5);
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        let h = LatencyHistogram::new();
        // 1000 values of exactly 100 µs.
        for _ in 0..1000 {
            h.record_us(100);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean - 100e-6).abs() < 1e-12);
        // 100 µs falls in bucket (64, 128]; the quantile reports the
        // upper edge 128 µs, clamped to the exact observed max of 100 µs.
        assert_eq!(s.p50, 100e-6);
        assert_eq!(s.p99, 100e-6);
        assert_eq!(s.max, 100e-6);
    }

    #[test]
    fn histogram_percentiles_order_across_buckets() {
        let h = LatencyHistogram::new();
        // 90 fast (≈10 µs), 9 medium (≈1 ms), 1 slow (≈100 ms).
        for _ in 0..90 {
            h.record(10e-6);
        }
        for _ in 0..9 {
            h.record(1e-3);
        }
        h.record(100e-3);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        assert!(s.p99 <= s.max * 2.0);
        // p50 is in the fast band; p99 (rank 99 of 100) lands in the
        // medium band; only the max sees the 100 ms outlier.
        assert!(s.p50 < 100e-6);
        assert!(s.p99 >= 1e-3 && s.p99 < 10e-3);
        assert!((s.max - 0.1).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_pathological_inputs() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let s = h.summary();
        // NaN / negative clamp to 0; +inf clamps to 0 as well (non-finite).
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn quantile_monotone_under_random_fill() {
        let h = LatencyHistogram::new();
        // Deterministic pseudo-random spread across many buckets.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record_us(x % 1_000_000);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let reg = Registry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.histogram("h").record(1e-3);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(snap.histograms["h"].count, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
