//! Ring-buffered event recorder.
//!
//! The recorder is the *tracing* half of telemetry: an append-only ring of
//! [`Event`]s that overwrites its oldest entries when full, so it can stay
//! on during long benches with bounded memory. A disabled recorder is a
//! `None` inside and costs one branch per call — cheap enough that call
//! sites never need `if telemetry.enabled()` guards.
//!
//! Recording is write-only with respect to simulation state: nothing in
//! the sim ever reads the ring, so enabling it cannot perturb a
//! deterministic run.

use crate::event::{Event, EventKind, Phase};
use oddci_check::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Default ring capacity when none is given (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

#[derive(Debug)]
struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

#[derive(Debug)]
struct Shared {
    ring: Mutex<Ring>,
}

/// Handle to a shared event ring. Cloning is cheap (an `Arc` bump); all
/// clones feed the same ring. A [`Recorder::disabled`] recorder drops
/// every event on the floor.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    shared: Option<Arc<Shared>>,
}

impl Recorder {
    /// A recorder that discards everything (the default).
    pub fn disabled() -> Self {
        Recorder { shared: None }
    }

    /// A live recorder keeping at most `capacity` most-recent events.
    ///
    /// A `capacity` of zero is an alias for [`Recorder::disabled`]
    /// (metrics-only mode): a zero-event ring could never hold anything,
    /// and the old behavior of silently rounding up to one event was a
    /// degenerate recorder that dropped all but the newest event.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            return Recorder::disabled();
        }
        Recorder {
            shared: Some(Arc::new(Shared {
                ring: Mutex::named(
                    Ring {
                        // Start small and let the deque grow toward
                        // `capacity`: pre-touching the full ring (10 MB at
                        // the default capacity) would dwarf short runs.
                        buf: VecDeque::with_capacity(capacity.min(1 << 12)),
                        capacity,
                        dropped: 0,
                    },
                    "telemetry.ring",
                ),
            })),
        }
    }

    /// A live recorder with [`DEFAULT_CAPACITY`].
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// True when events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Record a point-in-time mark.
    pub fn instant(&self, ts_us: u64, phase: Phase, track: u64, scope: u64) {
        if let Some(shared) = &self.shared {
            shared.ring.lock().push(Event {
                ts_us,
                phase,
                kind: EventKind::Instant,
                track,
                scope,
            });
        }
    }

    /// Record a completed span as a Begin/End pair. Spans are emitted
    /// retroactively — at completion time, with the earlier begin
    /// timestamp — because in an event-driven world the cheapest correct
    /// moment to know a span's extent is when it closes. Exporters sort
    /// by timestamp, so retro-emission is invisible downstream.
    pub fn span(&self, begin_us: u64, end_us: u64, phase: Phase, track: u64, scope: u64) {
        if let Some(shared) = &self.shared {
            let end_us = end_us.max(begin_us);
            let mut ring = shared.ring.lock();
            ring.push(Event {
                ts_us: begin_us,
                phase,
                kind: EventKind::Begin,
                track,
                scope,
            });
            ring.push(Event {
                ts_us: end_us,
                phase,
                kind: EventKind::End,
                track,
                scope,
            });
        }
    }

    /// Snapshot of the ring's current contents, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.shared {
            Some(shared) => shared.ring.lock().buf.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// How many events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.shared {
            Some(shared) => shared.ring.lock().dropped,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        r.instant(1, Phase::Heartbeat, 0, 0);
        r.span(1, 2, Phase::Compute, 0, 0);
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(!r.is_enabled());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = Recorder::with_capacity(4);
        for i in 0..10u64 {
            r.instant(i, Phase::Heartbeat, 0, i);
        }
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].scope, 6);
        assert_eq!(evs[3].scope, 9);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn span_emits_matched_pair_with_clamped_end() {
        let r = Recorder::with_capacity(16);
        r.span(10, 5, Phase::DveBoot, 3, 42);
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[1].kind, EventKind::End);
        assert_eq!(evs[0].ts_us, 10);
        assert_eq!(evs[1].ts_us, 10, "end clamps to begin");
        assert_eq!(evs[0].track, 3);
        assert_eq!(evs[0].scope, 42);
    }

    #[test]
    fn zero_capacity_is_metrics_only() {
        let r = Recorder::with_capacity(0);
        assert!(!r.is_enabled(), "zero capacity must disable tracing");
        r.instant(1, Phase::Heartbeat, 0, 0);
        r.span(1, 2, Phase::Compute, 0, 0);
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn clones_share_one_ring() {
        let r = Recorder::with_capacity(8);
        let r2 = r.clone();
        r.instant(1, Phase::PnaAccept, 0, 0);
        r2.instant(2, Phase::PnaAccept, 1, 0);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r2.events().len(), 2);
    }
}
