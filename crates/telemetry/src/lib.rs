//! # oddci-telemetry — end-to-end observability for the OddCI stack
//!
//! This crate is the measurement substrate every other layer threads
//! through: the discrete-event world, the broadcast carousel, the direct
//! channel, receivers, and the live runtime all report into the same
//! small vocabulary of [`Phase`]s.
//!
//! Two halves, deliberately decoupled:
//!
//! * **Metrics** ([`Registry`]: [`Counter`], [`Gauge`],
//!   [`LatencyHistogram`]) are *always on*. They back the public
//!   `MetricsSnapshot`, so toggling tracing can never change a reported
//!   number.
//! * **Tracing** ([`Recorder`]) is *opt-in*: a ring buffer of
//!   [`Event`]s, overwritten oldest-first, cheap enough to leave enabled
//!   in benches. Exporters ([`export::chrome_trace`], [`export::jsonl`],
//!   [`export::prometheus`]) turn recordings into viewer-ready text.
//!   For runs whose event count dwarfs any ring (million-node sweeps), a
//!   streaming [`TraceSink`] ([`Telemetry::with_sink`]) tees every event
//!   to disk *during* the run with non-blocking, drop-with-counter
//!   semantics — see the [`sink`] module.
//!
//! The [`Telemetry`] bundle ties both together and pre-caches a
//! per-[`Phase`] histogram and counter, so the hot path is one branch +
//! one atomic (counters) or one short mutex hold (histograms) — never a
//! name lookup.
//!
//! Timestamps are plain `u64` microseconds: sim-time in the
//! discrete-event world (`SimTime` is µs already), wall-clock since run
//! start in the live runtime. Telemetry is strictly *write-only* with
//! respect to the system under observation — nothing reads it back
//! during a run — which is what keeps deterministic simulations
//! deterministic with tracing on.
//!
//! # Example
//!
//! ```
//! use oddci_telemetry::{Phase, Telemetry};
//!
//! let tele = Telemetry::recording();
//! tele.span(0, 1_500, Phase::DveBoot, 7, 1); // µs timestamps, track = node 7
//! tele.instant(2_000, Phase::Heartbeat, 7, 0);
//!
//! assert_eq!(tele.phase_events(Phase::DveBoot), 1);
//! let summary = tele.phase_summary(Phase::DveBoot);
//! assert!((summary.mean - 1.5e-3).abs() < 1e-9); // 1 500 µs in seconds
//! ```

#![forbid(unsafe_code)]

pub mod binary;
pub mod event;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod sink;

pub use event::{Event, EventKind, Phase, CONTROL_TRACK};
pub use recorder::Recorder;
pub use registry::{
    Counter, Gauge, HistogramSummary, LatencyHistogram, Registry, RegistrySnapshot,
};
pub use sink::{SinkStats, SinkSummary, StreamingSink, TraceSink};

use std::sync::Arc;

/// The bundle call sites hold: a shared registry, an optional event
/// recorder, an optional streaming [`TraceSink`], and pre-resolved
/// per-phase handles. Cloning is cheap and all clones observe the same
/// underlying state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    recorder: Recorder,
    registry: Arc<Registry>,
    phase_hist: Arc<[LatencyHistogram; Phase::COUNT]>,
    phase_count: Arc<[Counter; Phase::COUNT]>,
    /// Streaming tee: every recorded event is also offered here. `None`
    /// (the default) keeps the ring as the only consumer.
    sink: Option<Arc<dyn TraceSink>>,
    /// Lane this handle pins its offers to (see
    /// [`Telemetry::with_sink_lane`]); `None` spreads by track.
    sink_lane: Option<usize>,
    /// Total events the sink rejected (`telemetry.events_dropped`).
    sink_dropped: Counter,
    /// Per-phase sink drops (`telemetry.events_dropped.<phase>`).
    sink_dropped_phase: Arc<[Counter; Phase::COUNT]>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

fn phase_handles(
    registry: &Registry,
) -> ([LatencyHistogram; Phase::COUNT], [Counter; Phase::COUNT]) {
    let hist = Phase::ALL.map(|p| registry.histogram(p.label()));
    let count = Phase::ALL.map(|p| registry.counter(&format!("{}.events", p.label())));
    (hist, count)
}

impl Telemetry {
    fn with_recorder(recorder: Recorder) -> Self {
        let registry = Arc::new(Registry::new());
        let (hist, count) = phase_handles(&registry);
        let sink_dropped = registry.counter("telemetry.events_dropped");
        let sink_dropped_phase = Phase::ALL
            .map(|p| registry.counter(&format!("telemetry.events_dropped.{}", p.label())));
        Telemetry {
            recorder,
            registry,
            phase_hist: Arc::new(hist),
            phase_count: Arc::new(count),
            sink: None,
            sink_lane: None,
            sink_dropped,
            sink_dropped_phase: Arc::new(sink_dropped_phase),
        }
    }

    /// Metrics on, tracing off (the default for tests and sweeps).
    pub fn disabled() -> Self {
        Telemetry::with_recorder(Recorder::disabled())
    }

    /// Metrics on, tracing on with the default ring capacity.
    pub fn recording() -> Self {
        Telemetry::with_recorder(Recorder::enabled())
    }

    /// Metrics on, tracing on with an explicit ring capacity. A capacity
    /// of zero is metrics-only mode (no ring), not a degenerate one-slot
    /// ring — attach a [`TraceSink`] if you still want the event stream.
    pub fn recording_with_capacity(capacity: usize) -> Self {
        Telemetry::with_recorder(Recorder::with_capacity(capacity))
    }

    /// Attach a streaming sink: every event recorded from now on is also
    /// offered to `sink`. Builder-style — call before handing clones out
    /// so all of them share the sink:
    ///
    /// ```no_run
    /// use oddci_telemetry::{sink::StreamingSink, Telemetry};
    /// let sink = StreamingSink::builder().jsonl("run.trace.jsonl").start().unwrap();
    /// let tele = Telemetry::recording().with_sink(sink);
    /// ```
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// A clone of this handle whose offers are pinned to sink lane
    /// `lane`. Hand one to each headend shard / dispatch worker so their
    /// hot paths enqueue into disjoint lanes and never contend on a
    /// queue mutex. No-op when no sink is attached.
    pub fn with_sink_lane(&self, lane: usize) -> Telemetry {
        let mut clone = self.clone();
        clone.sink_lane = Some(lane);
        clone
    }

    /// The attached streaming sink, if any.
    pub fn sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// Block until every event offered so far is handed to the OS. No-op
    /// without a sink. Call after joining worker threads and *before*
    /// reading accounting derived from the stream.
    pub fn flush_sink(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }

    /// Traffic counters of the attached sink, if any.
    pub fn sink_stats(&self) -> Option<SinkStats> {
        self.sink.as_ref().map(|s| s.stats())
    }

    /// Total events the sink rejected (the `telemetry.events_dropped`
    /// counter). Zero without a sink.
    pub fn events_dropped(&self) -> u64 {
        self.sink_dropped.get()
    }

    fn offer_to_sink(&self, ev: Event) {
        if let Some(sink) = &self.sink {
            if !sink.offer(ev, self.sink_lane) {
                self.sink_dropped.inc();
                self.sink_dropped_phase[ev.phase.index()].inc();
            }
        }
    }

    /// True when span/instant events are being kept.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The shared metrics registry (for ad-hoc named metrics beyond the
    /// per-phase set, e.g. `backend.queue_depth`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The underlying event recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Record a completed span: feeds the phase's latency histogram and,
    /// when recording, emits a Begin/End pair (tee'd to the streaming
    /// sink when one is attached).
    pub fn span(&self, begin_us: u64, end_us: u64, phase: Phase, track: u64, scope: u64) {
        let end_us = end_us.max(begin_us);
        self.phase_hist[phase.index()].record_us(end_us - begin_us);
        self.phase_count[phase.index()].inc();
        self.recorder.span(begin_us, end_us, phase, track, scope);
        if self.sink.is_some() {
            self.offer_to_sink(Event {
                ts_us: begin_us,
                phase,
                kind: EventKind::Begin,
                track,
                scope,
            });
            self.offer_to_sink(Event {
                ts_us: end_us,
                phase,
                kind: EventKind::End,
                track,
                scope,
            });
        }
    }

    /// Record a point-in-time mark: bumps the phase counter and, when
    /// recording, emits an instant event (tee'd to the streaming sink
    /// when one is attached).
    pub fn instant(&self, ts_us: u64, phase: Phase, track: u64, scope: u64) {
        self.phase_count[phase.index()].inc();
        self.recorder.instant(ts_us, phase, track, scope);
        if self.sink.is_some() {
            self.offer_to_sink(Event {
                ts_us,
                phase,
                kind: EventKind::Instant,
                track,
                scope,
            });
        }
    }

    /// Record a bare duration into a phase's histogram without emitting
    /// trace events — for callers that know how long something took but
    /// not where it sits on the timeline (e.g. a sampled kernel cost).
    pub fn duration(&self, seconds: f64, phase: Phase) {
        self.phase_hist[phase.index()].record(seconds);
        self.phase_count[phase.index()].inc();
    }

    /// Latency summary for one phase (durations in seconds).
    pub fn phase_summary(&self, phase: Phase) -> HistogramSummary {
        self.phase_hist[phase.index()].summary()
    }

    /// How many events (spans + instants) a phase has recorded.
    pub fn phase_events(&self, phase: Phase) -> u64 {
        self.phase_count[phase.index()].get()
    }

    /// Snapshot of the recorded event ring (oldest first; empty when
    /// tracing is off).
    pub fn events(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// Snapshot of every registered metric.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Per-phase breakdown rows `(label, summary)` for phases that saw at
    /// least one event, in lifecycle order — the table benches print.
    pub fn phase_breakdown(&self) -> Vec<(&'static str, HistogramSummary)> {
        Phase::ALL
            .iter()
            .filter(|p| p.is_span())
            .map(|p| (p.label(), self.phase_summary(*p)))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_still_counts_metrics() {
        let tele = Telemetry::disabled();
        tele.span(0, 2_000_000, Phase::DveBoot, 1, 9);
        tele.instant(5, Phase::Heartbeat, 1, 9);
        assert!(tele.events().is_empty(), "no tracing when disabled");
        assert_eq!(tele.phase_summary(Phase::DveBoot).count, 1);
        assert!((tele.phase_summary(Phase::DveBoot).mean - 2.0).abs() < 1e-9);
        assert_eq!(tele.phase_events(Phase::Heartbeat), 1);
    }

    #[test]
    fn recording_and_disabled_agree_on_metrics() {
        let feed = |tele: &Telemetry| {
            for i in 0..100u64 {
                tele.span(i * 10, i * 10 + 7, Phase::TaskFetch, i % 4, i);
                tele.instant(i * 10, Phase::Heartbeat, i % 4, i);
            }
        };
        let on = Telemetry::recording();
        let off = Telemetry::disabled();
        feed(&on);
        feed(&off);
        assert_eq!(on.metrics_snapshot(), off.metrics_snapshot());
        assert_eq!(on.events().len(), 300, "100 B/E pairs + 100 instants");
        assert!(off.events().is_empty());
    }

    #[test]
    fn span_nesting_survives_export() {
        let tele = Telemetry::recording();
        // Outer JobRun span containing a DveBoot + Compute sequence, plus
        // an unrelated overlapping span on another track.
        tele.span(100, 150, Phase::DveBoot, 0, 1);
        tele.span(150, 400, Phase::Compute, 0, 1);
        tele.span(0, 500, Phase::JobRun, CONTROL_TRACK, 1);
        tele.span(120, 480, Phase::Compute, 1, 2);
        let text = export::chrome_trace(&tele.events());
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rows = doc["traceEvents"].as_array().unwrap();
        // Per (tid, name): Begin and End counts must match, and per tid
        // the open-span stack never goes negative when sorted by ts.
        use std::collections::BTreeMap;
        let mut balance: BTreeMap<(u64, String), i64> = BTreeMap::new();
        for row in rows {
            match row["ph"].as_str().unwrap() {
                "B" => {
                    *balance
                        .entry((
                            row["tid"].as_u64().unwrap(),
                            row["name"].as_str().unwrap().to_string(),
                        ))
                        .or_default() += 1
                }
                "E" => {
                    *balance
                        .entry((
                            row["tid"].as_u64().unwrap(),
                            row["name"].as_str().unwrap().to_string(),
                        ))
                        .or_default() -= 1
                }
                _ => {}
            }
        }
        assert!(
            balance.values().all(|v| *v == 0),
            "unmatched spans: {balance:?}"
        );
    }

    #[test]
    fn zero_capacity_recording_is_metrics_only() {
        let tele = Telemetry::recording_with_capacity(0);
        assert!(!tele.is_recording(), "capacity 0 must mean metrics-only");
        tele.span(0, 1_000, Phase::DveBoot, 3, 1);
        tele.instant(2, Phase::Heartbeat, 3, 1);
        assert!(tele.events().is_empty());
        // Metrics still flow exactly as with any other capacity.
        assert_eq!(tele.phase_summary(Phase::DveBoot).count, 1);
        assert_eq!(tele.phase_events(Phase::Heartbeat), 1);
        assert_eq!(tele.events_dropped(), 0);
    }

    #[test]
    fn sink_tee_sees_every_event_even_without_ring() {
        let path =
            std::env::temp_dir().join(format!("oddci-tele-tee-{}.trace.jsonl", std::process::id()));
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(1)
            .start()
            .unwrap();
        let tele = Telemetry::recording_with_capacity(0).with_sink(sink.clone());
        tele.span(10, 25, Phase::Compute, 4, 2);
        tele.instant(30, Phase::Heartbeat, 4, 2);
        tele.flush_sink();
        let stats = tele.sink_stats().unwrap();
        assert_eq!(stats.emitted, 3, "B + E + instant");
        assert_eq!(stats.persisted, 3);
        assert_eq!(tele.events_dropped(), 0);
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let (_, events) = sink::read_jsonl_events(&text).unwrap();
        assert_eq!(events.len(), 3);
        assert!(tele.events().is_empty(), "ring stays off at capacity 0");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lane_pinned_clones_share_sink_and_counters() {
        let path = std::env::temp_dir().join(format!(
            "oddci-tele-lane-{}.trace.jsonl",
            std::process::id()
        ));
        let sink = StreamingSink::builder()
            .jsonl(&path)
            .lanes(3)
            .start()
            .unwrap();
        let tele = Telemetry::recording().with_sink(sink.clone());
        let shard0 = tele.with_sink_lane(0);
        let shard1 = tele.with_sink_lane(1);
        shard0.instant(1, Phase::Heartbeat, 7, 0);
        shard1.instant(2, Phase::Heartbeat, 8, 0);
        tele.flush_sink();
        assert_eq!(tele.sink_stats().unwrap().persisted, 2);
        assert_eq!(shard0.events_dropped(), 0);
        sink.finish().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn phase_breakdown_lists_only_active_span_phases() {
        let tele = Telemetry::disabled();
        tele.span(0, 10, Phase::DveBoot, 0, 0);
        tele.instant(0, Phase::Heartbeat, 0, 0);
        let rows = tele.phase_breakdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "dve.boot");
    }
}
