//! Property tests for the binary trace codec: encode → decode is the
//! identity on arbitrary event streams, converting a binary trace to
//! JSONL yields the same multiset of events a direct JSONL stream
//! persists, and truncating a binary file anywhere never panics the
//! decoder.

use oddci_telemetry::binary;
use oddci_telemetry::sink::read_jsonl_events;
use oddci_telemetry::{Event, EventKind, Phase, StreamingSink, TraceSink};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_event() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        0..Phase::COUNT,
        0..3u8,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(ts_us, phase, kind, track, scope)| Event {
            ts_us,
            phase: Phase::ALL[phase],
            kind: match kind {
                0 => EventKind::Begin,
                1 => EventKind::End,
                _ => EventKind::Instant,
            },
            track,
            scope,
        })
}

/// A multiset-comparable key (events carry no identity beyond their
/// fields, and lanes interleave arbitrarily).
fn key(ev: &Event) -> (u64, usize, u8, u64, u64) {
    let kind = match ev.kind {
        EventKind::Begin => 0,
        EventKind::End => 1,
        EventKind::Instant => 2,
    };
    (ev.ts_us, ev.phase.index(), kind, ev.track, ev.scope)
}

fn sorted_keys(events: &[Event]) -> Vec<(u64, usize, u8, u64, u64)> {
    let mut keys: Vec<_> = events.iter().map(key).collect();
    keys.sort_unstable();
    keys
}

fn temp(name: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("oddci-binary-props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{n}-{name}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_identity(events in proptest::collection::vec(arb_event(), 0..200)) {
        let mut bytes = binary::encode_header(&[("scenario".into(), "props".into())], 1);
        bytes.extend(binary::encode_block(0, &events));
        let trace = binary::decode(&bytes).expect("decodes");
        prop_assert!(trace.truncated.is_none());
        prop_assert_eq!(&trace.events, &events);
    }

    #[test]
    fn truncating_anywhere_never_panics(
        events in proptest::collection::vec(arb_event(), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut bytes = binary::encode_header(&[], 1);
        bytes.extend(binary::encode_block(0, &events));
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        // Either a clean decode (possibly with a truncation report) or a
        // structured error — anything but a panic.
        let _ = binary::decode(&bytes[..cut]);
    }
}

proptest! {
    // File-backed cases spin writer threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn convert_matches_a_direct_jsonl_stream(
        events in proptest::collection::vec(arb_event(), 1..150),
        lanes in 1usize..4,
    ) {
        let jsonl_direct = temp("direct.trace.jsonl");
        let bin_path = temp("stream.trace.bin");
        let jsonl_converted = temp("converted.trace.jsonl");

        let direct = StreamingSink::builder()
            .jsonl(&jsonl_direct)
            .lanes(lanes)
            .meta("scenario", "props")
            .start()
            .expect("direct sink");
        let bin = StreamingSink::builder()
            .binary(&bin_path)
            .lanes(lanes)
            .meta("scenario", "props")
            .start()
            .expect("binary sink");
        for (i, ev) in events.iter().enumerate() {
            prop_assert!(direct.offer(*ev, Some(i % lanes)));
            prop_assert!(bin.offer(*ev, Some(i % lanes)));
        }
        let dsum = direct.finish().expect("direct finish");
        let bsum = bin.finish().expect("binary finish");
        prop_assert_eq!(dsum.stats.dropped, 0);
        prop_assert_eq!(bsum.stats.dropped, 0);

        let trace = binary::read_file(&bin_path).expect("read back");
        prop_assert!(trace.truncated.is_none());
        binary::convert(&trace, Some(&jsonl_converted), None).expect("convert");

        let direct_text = std::fs::read_to_string(&jsonl_direct).expect("direct text");
        let (_, direct_events) = read_jsonl_events(&direct_text).expect("direct events");
        let converted_text = std::fs::read_to_string(&jsonl_converted).expect("converted text");
        let (header, converted_events) = read_jsonl_events(&converted_text).expect("converted");
        prop_assert_eq!(sorted_keys(&converted_events), sorted_keys(&direct_events));
        prop_assert_eq!(sorted_keys(&converted_events), sorted_keys(&events));
        prop_assert!(header
            .meta
            .iter()
            .any(|(k, v)| k == "scenario" && v == "props"));

        for p in [&jsonl_direct, &bin_path, &jsonl_converted] {
            let _ = std::fs::remove_file(p);
        }
    }
}
