#![forbid(unsafe_code)]

//! Message authentication for OddCI control messages.
//!
//! §3.2 of the paper: *"The PNA are configured to only accept messages
//! broadcast by their associated Controller (this can be easily achieved
//! through a digital signature mechanism)."* The paper does not prescribe a
//! scheme; this reproduction uses **HMAC-SHA-256** with a key shared between
//! the Controller and the PNA firmware. Both primitives are implemented
//! from scratch (no external crypto crates are in the approved dependency
//! set) and validated against the published FIPS 180-4 / RFC 4231 vectors.
//!
//! The MAC gives the property the architecture relies on — a PNA drops any
//! control message not produced by its associated Controller — which is all
//! the simulation and the live runtime need. A production deployment would
//! use an asymmetric signature so that receivers hold no signing capability;
//! the API (`sign` / `verify` on [`MessageAuthenticator`]) is shaped so that
//! swap is a drop-in.
//!
//! # Example
//!
//! ```
//! use oddci_crypto::MessageAuthenticator;
//!
//! let controller = MessageAuthenticator::from_key(b"shared-controller-key");
//! let tag = controller.sign(b"wakeup:inst-000001");
//!
//! let pna = MessageAuthenticator::from_key(b"shared-controller-key");
//! assert!(pna.verify(b"wakeup:inst-000001", &tag));
//! assert!(!pna.verify(b"wakeup:inst-000002", &tag));
//! ```

pub mod hmac;
pub mod sha256;

pub use hmac::HmacSha256;
pub use sha256::Sha256;

use oddci_types::OddciError;

/// Length in bytes of an authentication tag ([`Sha256`] digest length).
pub const TAG_LEN: usize = 32;

/// An authentication tag attached to every OddCI control message.
pub type Tag = [u8; TAG_LEN];

/// Signs and verifies control messages on behalf of a Controller / PNA pair.
#[derive(Debug, Clone)]
pub struct MessageAuthenticator {
    key: Vec<u8>,
}

impl MessageAuthenticator {
    /// Creates an authenticator from a shared key of any length.
    pub fn from_key(key: &[u8]) -> Self {
        MessageAuthenticator { key: key.to_vec() }
    }

    /// Computes the tag for `message`.
    pub fn sign(&self, message: &[u8]) -> Tag {
        HmacSha256::mac(&self.key, message)
    }

    /// Checks `tag` against `message` in constant time.
    pub fn verify(&self, message: &[u8], tag: &Tag) -> bool {
        constant_time_eq(&self.sign(message), tag)
    }

    /// Like [`verify`](Self::verify) but returns a typed error, for call
    /// sites that propagate failures.
    pub fn verify_or_err(
        &self,
        message: &[u8],
        tag: &Tag,
        context: &str,
    ) -> Result<(), OddciError> {
        if self.verify(message, tag) {
            Ok(())
        } else {
            Err(OddciError::BadSignature {
                context: context.to_string(),
            })
        }
    }
}

/// Constant-time byte-slice comparison (no early exit on mismatch).
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let auth = MessageAuthenticator::from_key(b"k");
        let tag = auth.sign(b"hello");
        assert!(auth.verify(b"hello", &tag));
    }

    #[test]
    fn different_key_fails() {
        let a = MessageAuthenticator::from_key(b"key-a");
        let b = MessageAuthenticator::from_key(b"key-b");
        let tag = a.sign(b"msg");
        assert!(!b.verify(b"msg", &tag));
    }

    #[test]
    fn tampered_message_fails() {
        let auth = MessageAuthenticator::from_key(b"k");
        let tag = auth.sign(b"msg");
        assert!(!auth.verify(b"msg!", &tag));
    }

    #[test]
    fn tampered_tag_fails() {
        let auth = MessageAuthenticator::from_key(b"k");
        let mut tag = auth.sign(b"msg");
        tag[0] ^= 0x01;
        assert!(!auth.verify(b"msg", &tag));
    }

    #[test]
    fn verify_or_err_reports_context() {
        let auth = MessageAuthenticator::from_key(b"k");
        let tag = auth.sign(b"msg");
        assert!(auth.verify_or_err(b"msg", &tag, "wakeup").is_ok());
        let err = auth
            .verify_or_err(b"other", &tag, "wakeup inst-1")
            .unwrap_err();
        assert!(err.to_string().contains("wakeup inst-1"));
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}
