//! HMAC-SHA-256 (RFC 2104), implemented from scratch over [`Sha256`].
//!
//! Validated against the RFC 4231 test vectors.

use crate::sha256::Sha256;

/// SHA-256 block size in bytes.
const BLOCK_LEN: usize = 64;

/// Keyed MAC over SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XOR opad, kept to finish the outer hash at finalize time.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance for `key` (any length; long keys are hashed
    /// down per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut norm = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            norm[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            norm[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = norm[i] ^ 0x36;
            opad_key[i] = norm[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `message` under `key`.
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key AND long data.
    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = HmacSha256::mac(&key, data);
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let one_shot = HmacSha256::mac(b"key", b"hello world");
        let mut h = HmacSha256::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), one_shot);
    }

    #[test]
    fn exactly_block_sized_key_is_used_verbatim() {
        let key = [0x11u8; 64];
        let a = HmacSha256::mac(&key, b"m");
        // A 64-byte key is NOT hashed; a 65-byte key is. They must differ
        // from each other and from the zero-padded 63-byte key.
        let b = HmacSha256::mac(&key[..63], b"m");
        assert_ne!(a, b);
    }
}
