//! Efficiency — equation (2) — and the Figure 6/7 sweep helpers.
//!
//! `E = n·p̄ / (M̄·N)`: the throughput the instance achieves relative to an
//! ideal infrastructure of `N` reference set-top boxes with zero overhead.

use crate::makespan::{makespan, InstanceParams};
use oddci_types::{DataSize, SimDuration};
use oddci_workload::JobProfile;
use serde::{Deserialize, Serialize};

/// Efficiency of running `profile` on `params` (equation (2)).
pub fn efficiency(profile: &JobProfile, params: &InstanceParams) -> f64 {
    let m = makespan(profile, params);
    profile.task_count as f64 * profile.mean_cost.as_secs_f64()
        / (m.as_secs_f64() * params.nodes as f64)
}

/// One point of a Figure 6/7 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Suitability Φ of the swept job.
    pub phi: f64,
    /// Efficiency E (equation (2)).
    pub efficiency: f64,
    /// Makespan M̄ in seconds (Figure 7's y-axis).
    pub makespan_secs: f64,
    /// Mean task cost implied by Φ, seconds.
    pub task_cost_secs: f64,
}

/// Sweeps suitability over `phi_grid` for a fixed `n/N` ratio, holding
/// `s̄+r̄ = moved` — exactly the scenario of Figures 6 and 7
/// (`moved` = 1 Kbyte, I = 10 MB, β = 1 Mbps, δ = 150 Kbps there).
pub fn efficiency_curve(
    phi_grid: &[f64],
    n_over_big_n: f64,
    image: DataSize,
    moved: DataSize,
    params: &InstanceParams,
) -> Vec<EfficiencyPoint> {
    assert!(n_over_big_n > 0.0, "n/N must be positive");
    let n = (n_over_big_n * params.nodes as f64).round() as u64;
    assert!(n > 0, "the swept job must have at least one task");
    phi_grid
        .iter()
        .map(|&phi| {
            let profile = JobProfile::from_suitability(image, n, moved, params.delta, phi);
            EfficiencyPoint {
                phi,
                efficiency: efficiency(&profile, params),
                makespan_secs: makespan(&profile, params).as_secs_f64(),
                task_cost_secs: profile.mean_cost.as_secs_f64(),
            }
        })
        .collect()
}

/// A log-spaced grid from `lo` to `hi` with `points` samples, for the
/// Figure 6/7 x-axis.
pub fn log_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(
        lo > 0.0 && hi > lo && points >= 2,
        "need 0 < lo < hi and >= 2 points"
    );
    let step = (hi / lo).powf(1.0 / (points - 1) as f64);
    (0..points).map(|i| lo * step.powi(i as i32)).collect()
}

/// The smallest Φ on `curve` reaching at least `target` efficiency, if any
/// — used to locate the crossover Figure 6 shows.
pub fn phi_reaching(curve: &[EfficiencyPoint], target: f64) -> Option<f64> {
    curve.iter().find(|p| p.efficiency >= target).map(|p| p.phi)
}

#[allow(unused_imports)]
use oddci_types::Bandwidth; // referenced by doc examples and tests

#[allow(dead_code)]
fn _doc_anchor(_: SimDuration) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (DataSize, DataSize, InstanceParams) {
        (
            DataSize::from_megabytes(10),
            DataSize::from_bytes(1000),
            InstanceParams::paper(1000),
        )
    }

    #[test]
    fn efficiency_grows_with_phi() {
        let (image, moved, params) = paper_setup();
        let grid = log_grid(1.0, 1e5, 30);
        let curve = efficiency_curve(&grid, 100.0, image, moved, &params);
        for w in curve.windows(2) {
            assert!(
                w[1].efficiency >= w[0].efficiency - 1e-12,
                "efficiency must be monotone in phi"
            );
        }
    }

    #[test]
    fn higher_n_over_big_n_is_more_efficient() {
        let (image, moved, params) = paper_setup();
        let grid = [100.0];
        let e1 = efficiency_curve(&grid, 1.0, image, moved, &params)[0].efficiency;
        let e100 = efficiency_curve(&grid, 100.0, image, moved, &params)[0].efficiency;
        let e1000 = efficiency_curve(&grid, 1000.0, image, moved, &params)[0].efficiency;
        assert!(e1 < e100 && e100 < e1000);
    }

    #[test]
    fn ratio_100_reaches_high_efficiency_at_practical_phi() {
        // The paper: "A ratio above 100 is generally enough to yield very
        // high efficiency for most practical applications."
        let (image, moved, params) = paper_setup();
        let grid = log_grid(1.0, 1e5, 60);
        let curve = efficiency_curve(&grid, 100.0, image, moved, &params);
        let phi90 = phi_reaching(&curve, 0.9).expect("n/N=100 must reach E=0.9");
        assert!(phi90 < 1e3, "phi90={phi90}");
    }

    #[test]
    fn efficiency_is_bounded_by_one() {
        let (image, moved, params) = paper_setup();
        let grid = log_grid(1.0, 1e6, 40);
        for ratio in [1.0, 10.0, 100.0, 1000.0] {
            for p in efficiency_curve(&grid, ratio, image, moved, &params) {
                assert!(
                    p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-9,
                    "E={}",
                    p.efficiency
                );
            }
        }
    }

    #[test]
    fn makespan_grows_with_phi_at_fixed_ratio() {
        // Figure 7: higher suitability means longer tasks, so makespan
        // rises even as efficiency does.
        let (image, moved, params) = paper_setup();
        let grid = log_grid(1.0, 1e5, 20);
        let curve = efficiency_curve(&grid, 100.0, image, moved, &params);
        for w in curve.windows(2) {
            assert!(w[1].makespan_secs > w[0].makespan_secs);
        }
    }

    #[test]
    fn efficiency_equals_ratio_of_throughputs() {
        // Direct check of equation (2) against its definition.
        let (image, moved, params) = paper_setup();
        let profile =
            oddci_workload::JobProfile::from_suitability(image, 50_000, moved, params.delta, 500.0);
        let e = efficiency(&profile, &params);
        let m = makespan(&profile, &params).as_secs_f64();
        let actual_throughput = profile.task_count as f64 / m;
        let ideal_throughput = params.nodes as f64 / profile.mean_cost.as_secs_f64();
        assert!((e - actual_throughput / ideal_throughput).abs() < 1e-12);
    }

    #[test]
    fn log_grid_endpoints_and_monotonicity() {
        let g = log_grid(1.0, 100.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[4] - 100.0).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn phi_reaching_none_when_unreachable() {
        let (image, moved, params) = paper_setup();
        let grid = log_grid(1.0, 10.0, 5);
        let curve = efficiency_curve(&grid, 1.0, image, moved, &params);
        assert_eq!(phi_reaching(&curve, 0.9999), None);
    }
}
