//! Table I of the paper as machine-checkable data.
//!
//! The paper's Table I scores four technology families against the three
//! DCI requirements of §2. We encode the published qualitative verdicts
//! here; the `table1` bench harness prints them next to the *quantitative*
//! evidence computed from the `oddci-baselines` deployment models, so the
//! reproduction shows where each ✓/✗ comes from rather than restating the
//! table.

use serde::{Deserialize, Serialize};

/// The three requirements of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requirement {
    /// Requirement I: handle up to hundreds of millions of nodes.
    ExtremelyHighScalability,
    /// Requirement II: assemble and release pools on demand.
    OnDemandInstantiation,
    /// Requirement III: configure nodes and backend quickly, no per-node work.
    EfficientSetup,
}

impl Requirement {
    /// All requirements in table order.
    pub const ALL: [Requirement; 3] = [
        Requirement::ExtremelyHighScalability,
        Requirement::OnDemandInstantiation,
        Requirement::EfficientSetup,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Requirement::ExtremelyHighScalability => "Extremely high scalability",
            Requirement::OnDemandInstantiation => "On-demand instantiation",
            Requirement::EfficientSetup => "Efficient setup",
        }
    }
}

/// The compared technology families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// BOINC-style voluntary computing.
    VoluntaryComputing,
    /// Condor/OurGrid-style desktop grids.
    DesktopGrid,
    /// Cloud infrastructure-as-a-service.
    Iaas,
    /// The paper's proposal.
    Oddci,
}

impl Technology {
    /// All technologies in table order.
    pub const ALL: [Technology; 4] = [
        Technology::VoluntaryComputing,
        Technology::DesktopGrid,
        Technology::Iaas,
        Technology::Oddci,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Technology::VoluntaryComputing => "Voluntary computing",
            Technology::DesktopGrid => "Desktop grid",
            Technology::Iaas => "IaaS",
            Technology::Oddci => "OddCI",
        }
    }
}

/// The paper's verdicts: `(technology, requirement) → satisfied?`.
///
/// Per §2: voluntary computing scales but is neither on-demand nor easily
/// re-purposed; desktop grids are on-demand but small and slow to set up;
/// IaaS instantiates on demand with efficient setup but not at extreme
/// scale; OddCI claims all three.
pub const TABLE1: [(Technology, Requirement, bool); 12] = [
    (
        Technology::VoluntaryComputing,
        Requirement::ExtremelyHighScalability,
        true,
    ),
    (
        Technology::VoluntaryComputing,
        Requirement::OnDemandInstantiation,
        false,
    ),
    (
        Technology::VoluntaryComputing,
        Requirement::EfficientSetup,
        false,
    ),
    (
        Technology::DesktopGrid,
        Requirement::ExtremelyHighScalability,
        false,
    ),
    (
        Technology::DesktopGrid,
        Requirement::OnDemandInstantiation,
        true,
    ),
    (Technology::DesktopGrid, Requirement::EfficientSetup, false),
    (
        Technology::Iaas,
        Requirement::ExtremelyHighScalability,
        false,
    ),
    (Technology::Iaas, Requirement::OnDemandInstantiation, true),
    (Technology::Iaas, Requirement::EfficientSetup, true),
    (
        Technology::Oddci,
        Requirement::ExtremelyHighScalability,
        true,
    ),
    (Technology::Oddci, Requirement::OnDemandInstantiation, true),
    (Technology::Oddci, Requirement::EfficientSetup, true),
];

/// Looks up the paper's verdict for one cell.
pub fn satisfies(tech: Technology, req: Requirement) -> bool {
    TABLE1
        .iter()
        .find(|(t, r, _)| *t == tech && *r == req)
        .map(|&(_, _, v)| v)
        .expect("every cell is in TABLE1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete() {
        for t in Technology::ALL {
            for r in Requirement::ALL {
                let _ = satisfies(t, r); // panics if missing
            }
        }
        assert_eq!(TABLE1.len(), 12);
    }

    #[test]
    fn only_oddci_satisfies_everything() {
        for t in Technology::ALL {
            let all = Requirement::ALL.iter().all(|&r| satisfies(t, r));
            assert_eq!(all, t == Technology::Oddci, "{t:?}");
        }
    }

    #[test]
    fn every_requirement_is_covered_by_someone() {
        for r in Requirement::ALL {
            assert!(Technology::ALL.iter().any(|&t| satisfies(t, r)));
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Technology::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
