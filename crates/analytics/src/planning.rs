//! Inverse models: capacity planning on top of equations (1) and (2).
//!
//! The paper's forward models answer "given N, what makespan/efficiency?".
//! A Provider operator asks the inverse questions: *how many nodes do I
//! need to hit a deadline? what deadline is even reachable? how large may
//! the image grow before wakeup dominates?* This module answers them in
//! closed form where possible and by monotone bisection otherwise.

use crate::makespan::{makespan, InstanceParams};
use crate::wakeup::wakeup_mean;
use oddci_types::{DataSize, SimDuration};
use oddci_workload::JobProfile;

/// The fastest possible makespan for `profile` on channels of the given
/// capacities: infinite N still pays the wakeup plus one task round.
pub fn makespan_floor(profile: &JobProfile, params: &InstanceParams) -> SimDuration {
    wakeup_mean(profile.image_size, params.beta) + params.task_round_time(profile)
}

/// The smallest instance size N whose modelled makespan meets `deadline`,
/// or `None` when the deadline is below the floor (unreachable at any N).
///
/// Equation (1) is strictly decreasing in N, so the answer is the ceiling
/// of the closed-form inversion:
/// `N = n·(round)/ (deadline − wakeup)`.
pub fn nodes_for_deadline(
    profile: &JobProfile,
    params_template: &InstanceParams,
    deadline: SimDuration,
) -> Option<u64> {
    let floor = makespan_floor(profile, params_template);
    if deadline < floor {
        return None;
    }
    let wake = wakeup_mean(profile.image_size, params_template.beta).as_secs_f64();
    let round = params_template.task_round_time(profile).as_secs_f64();
    let budget = deadline.as_secs_f64() - wake;
    debug_assert!(budget > 0.0);
    let n = (profile.task_count as f64 * round / budget).ceil().max(1.0) as u64;
    // Guard against floating-point edge cases: verify and nudge.
    let mut n = n;
    let check = |n: u64| {
        let params = InstanceParams {
            nodes: n,
            ..*params_template
        };
        makespan(profile, &params) <= deadline
    };
    while !check(n) {
        n += 1;
    }
    while n > 1 && check(n - 1) {
        n -= 1;
    }
    Some(n)
}

/// The largest image size whose *mean wakeup* stays within `budget` at
/// capacity β — the §5.1 "how big may the application be?" question.
pub fn image_budget(budget: SimDuration, params: &InstanceParams) -> DataSize {
    DataSize::from_bits((params.beta.bps() * budget.as_secs_f64() / 1.5).floor() as u64)
}

/// The task count at which adding nodes stops helping (`n < N` leaves
/// nodes idle): the paper's guidance is to keep `n/N ≥ 100`; this returns
/// the N that achieves exactly that ratio for the given bag.
pub fn nodes_for_ratio(task_count: u64, target_ratio: f64) -> u64 {
    assert!(target_ratio > 0.0, "ratio must be positive");
    ((task_count as f64 / target_ratio).floor() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::Bandwidth;

    fn profile(n: u64, cost_secs: f64) -> JobProfile {
        JobProfile {
            image_size: DataSize::from_megabytes(10),
            task_count: n,
            mean_input: DataSize::from_bytes(500),
            mean_result: DataSize::from_bytes(500),
            mean_cost: SimDuration::from_secs_f64(cost_secs),
        }
    }

    #[test]
    fn floor_is_wakeup_plus_one_round() {
        let p = profile(1_000, 60.0);
        let params = InstanceParams::paper(1);
        let floor = makespan_floor(&p, &params);
        let expect = wakeup_mean(p.image_size, params.beta) + params.task_round_time(&p);
        assert_eq!(floor, expect);
    }

    #[test]
    fn nodes_for_deadline_inverts_makespan() {
        let p = profile(10_000, 60.0);
        let template = InstanceParams::paper(1);
        for deadline_secs in [600u64, 1_800, 3_600, 86_400] {
            let deadline = SimDuration::from_secs(deadline_secs);
            match nodes_for_deadline(&p, &template, deadline) {
                Some(n) => {
                    let params = InstanceParams {
                        nodes: n,
                        ..template
                    };
                    assert!(
                        makespan(&p, &params) <= deadline,
                        "N={n} misses {deadline_secs}s"
                    );
                    if n > 1 {
                        let smaller = InstanceParams {
                            nodes: n - 1,
                            ..template
                        };
                        assert!(
                            makespan(&p, &smaller) > deadline,
                            "N={} already meets {deadline_secs}s — not minimal",
                            n - 1
                        );
                    }
                }
                None => {
                    // Only acceptable when even infinite N cannot meet it.
                    assert!(deadline < makespan_floor(&p, &template));
                }
            }
        }
    }

    #[test]
    fn impossible_deadlines_are_rejected() {
        let p = profile(1_000, 60.0);
        let template = InstanceParams::paper(1);
        // Below even the wakeup time: unreachable.
        assert_eq!(
            nodes_for_deadline(&p, &template, SimDuration::from_secs(10)),
            None
        );
    }

    #[test]
    fn more_generous_deadlines_need_fewer_nodes() {
        let p = profile(100_000, 30.0);
        let template = InstanceParams::paper(1);
        let tight = nodes_for_deadline(&p, &template, SimDuration::from_secs(1_000)).unwrap();
        let loose = nodes_for_deadline(&p, &template, SimDuration::from_secs(10_000)).unwrap();
        assert!(loose < tight);
    }

    #[test]
    fn image_budget_round_trips_the_wakeup_law() {
        let params = InstanceParams::paper(100);
        let img = image_budget(SimDuration::from_secs(60), &params);
        let w = wakeup_mean(img, params.beta);
        assert!(w <= SimDuration::from_secs(60));
        assert!(w.as_secs_f64() > 59.99);
    }

    #[test]
    fn image_budget_scales_with_beta() {
        let slow = InstanceParams {
            beta: Bandwidth::from_mbps(1.0),
            ..InstanceParams::paper(1)
        };
        let fast = InstanceParams {
            beta: Bandwidth::from_mbps(4.0),
            ..InstanceParams::paper(1)
        };
        let b = SimDuration::from_secs(60);
        assert_eq!(
            image_budget(b, &fast).bits(),
            image_budget(b, &slow).bits() * 4
        );
    }

    #[test]
    fn ratio_sizing() {
        assert_eq!(nodes_for_ratio(100_000, 100.0), 1_000);
        assert_eq!(nodes_for_ratio(50, 100.0), 1); // tiny bags: one node
    }
}
