//! The makespan model — equation (1) of the paper:
//!
//! ```text
//! M̄ = 1.5·I/β + (n/N)·((s̄+r̄)/δ + p̄)
//! ```
//!
//! instantiation overhead plus `n/N` sequential rounds of (fetch input,
//! process, upload result) per node.

use crate::wakeup::wakeup_mean;
use oddci_types::{Bandwidth, DataSize, SimDuration};
use oddci_workload::JobProfile;
use serde::{Deserialize, Serialize};

/// Everything equation (1) needs: the job profile plus the infrastructure
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceParams {
    /// Unused broadcast capacity β.
    pub beta: Bandwidth,
    /// Direct-channel capacity δ.
    pub delta: Bandwidth,
    /// Instance size `N` (tuned nodes that stay for the whole execution).
    pub nodes: u64,
}

impl InstanceParams {
    /// The paper's Figure 6/7 parameterization: β = 1 Mbps, δ = 150 Kbps.
    pub fn paper(nodes: u64) -> Self {
        InstanceParams {
            beta: Bandwidth::from_mbps(1.0),
            delta: Bandwidth::from_kbps(150.0),
            nodes,
        }
    }

    /// Per-task wall time on one node: fetch + process + upload.
    pub fn task_round_time(&self, profile: &JobProfile) -> SimDuration {
        let moved: DataSize = profile.mean_input + profile.mean_result;
        moved.transfer_time(self.delta) + profile.mean_cost
    }
}

/// Equation (1): the mean makespan of `profile` on `params`.
///
/// The `n/N` factor is kept continuous, as in the paper (it is the expected
/// number of task rounds per node when `n ≫ N`; for small `n/N` it
/// understates the integer round-up, which the simulator captures).
pub fn makespan(profile: &JobProfile, params: &InstanceParams) -> SimDuration {
    assert!(params.nodes > 0, "an instance needs at least one node");
    let rounds = profile.task_count as f64 / params.nodes as f64;
    wakeup_mean(profile.image_size, params.beta) + params.task_round_time(profile).mul_f64(rounds)
}

/// Conservative integer-rounds variant: `⌈n/N⌉` rounds. Matches the
/// simulator exactly for homogeneous bags without churn.
pub fn makespan_integer_rounds(profile: &JobProfile, params: &InstanceParams) -> SimDuration {
    assert!(params.nodes > 0, "an instance needs at least one node");
    let rounds = profile.task_count.div_ceil(params.nodes);
    wakeup_mean(profile.image_size, params.beta) + params.task_round_time(profile) * rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_types::DataSize;

    fn profile(n: u64, cost_secs: f64) -> JobProfile {
        JobProfile {
            image_size: DataSize::from_megabytes(10),
            task_count: n,
            mean_input: DataSize::from_bytes(500),
            mean_result: DataSize::from_bytes(500),
            mean_cost: SimDuration::from_secs_f64(cost_secs),
        }
    }

    #[test]
    fn hand_computed_example() {
        // I = 10 MB, β = 1 Mbps: wakeup = 1.5 * 83.886080 s = 125.82912 s.
        // s+r = 1000 B = 8000 bits over 150 kbps = 53.333 ms; p = 60 s.
        // n/N = 1000/100 = 10 rounds: 10 * 60.053333 = 600.53333 s.
        let m = makespan(&profile(1000, 60.0), &InstanceParams::paper(100));
        let expect =
            1.5 * (10.0 * 1024.0 * 1024.0 * 8.0) / 1e6 + 10.0 * (60.0 + 8000.0 / 150_000.0);
        assert!(
            (m.as_secs_f64() - expect).abs() < 1e-3,
            "{} vs {}",
            m.as_secs_f64(),
            expect
        );
    }

    #[test]
    fn more_nodes_shrink_makespan() {
        let p = profile(10_000, 60.0);
        let m100 = makespan(&p, &InstanceParams::paper(100));
        let m1000 = makespan(&p, &InstanceParams::paper(1000));
        assert!(m1000 < m100);
    }

    #[test]
    fn wakeup_dominates_when_tasks_are_few() {
        let p = profile(1, 0.001);
        let m = makespan(&p, &InstanceParams::paper(1_000_000));
        let w = wakeup_mean(p.image_size, Bandwidth::from_mbps(1.0));
        assert!((m.as_secs_f64() - w.as_secs_f64()) < 0.1);
    }

    #[test]
    fn integer_rounds_upper_bounds_continuous() {
        for n in [1u64, 7, 99, 100, 101, 1000] {
            let p = profile(n, 10.0);
            let params = InstanceParams::paper(100);
            let cont = makespan(&p, &params);
            let int = makespan_integer_rounds(&p, &params);
            assert!(int >= cont, "n={n}");
        }
    }

    #[test]
    fn integer_rounds_equal_continuous_when_divisible() {
        let p = profile(500, 10.0);
        let params = InstanceParams::paper(100);
        assert_eq!(makespan(&p, &params), makespan_integer_rounds(&p, &params));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = makespan(&profile(10, 1.0), &InstanceParams::paper(0));
    }
}
