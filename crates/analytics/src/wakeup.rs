//! The wakeup-process overhead model (§5.1).
//!
//! The bulk of the wakeup is the transmission of the image through the
//! carousel: a PNA that starts reading at a uniformly random phase waits on
//! average half a cycle for the image's next pass and then reads it for a
//! full cycle, giving `W = 1.5·I/β`. The envelope is `[I/β, 2·I/β)`.

use oddci_types::{Bandwidth, DataSize, SimDuration};

/// Mean wakeup overhead `W = 1.5·I/β`.
pub fn wakeup_mean(image: DataSize, beta: Bandwidth) -> SimDuration {
    image.transfer_time(beta).mul_f64(1.5)
}

/// `(best, mean, worst)` wakeup overhead: `(I/β, 1.5·I/β, 2·I/β)`.
pub fn wakeup_envelope(
    image: DataSize,
    beta: Bandwidth,
) -> (SimDuration, SimDuration, SimDuration) {
    let cycle = image.transfer_time(beta);
    (cycle, cycle.mul_f64(1.5), cycle * 2)
}

/// The image size transmissible within `deadline` at mean overhead — the
/// inverse model ("how big an image still wakes up in a minute?").
pub fn max_image_for_deadline(deadline: SimDuration, beta: Bandwidth) -> DataSize {
    DataSize::from_bits((beta.bps() * deadline.as_secs_f64() / 1.5).floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_8mb_1mbps() {
        // 8 MB at 1 Mbps: cycle 67.1 s, mean 100.7 s. (The paper quotes
        // "less than 64 seconds" using decimal megabytes and the plain
        // I/β term; we report the full envelope.)
        let (best, mean, worst) =
            wakeup_envelope(DataSize::from_megabytes(8), Bandwidth::from_mbps(1.0));
        assert!((best.as_secs_f64() - 67.108864).abs() < 1e-6);
        assert!((mean.as_secs_f64() - 100.663296).abs() < 1e-6);
        assert!((worst.as_secs_f64() - 134.217728).abs() < 1e-6);
    }

    #[test]
    fn mean_is_1_5_cycles() {
        let img = DataSize::from_megabytes(10);
        let beta = Bandwidth::from_mbps(2.0);
        let mean = wakeup_mean(img, beta);
        let cycle = img.transfer_time(beta);
        assert!((mean.as_secs_f64() / cycle.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn wakeup_scales_inversely_with_beta() {
        let img = DataSize::from_megabytes(10);
        let w1 = wakeup_mean(img, Bandwidth::from_mbps(1.0));
        let w4 = wakeup_mean(img, Bandwidth::from_mbps(4.0));
        assert!((w1.as_secs_f64() / w4.as_secs_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn inverse_model_round_trips() {
        let beta = Bandwidth::from_mbps(1.0);
        let img = max_image_for_deadline(SimDuration::from_secs(60), beta);
        let w = wakeup_mean(img, beta);
        assert!(w <= SimDuration::from_secs(60));
        // Nearly tight: within one bit-time of the deadline.
        assert!(w.as_secs_f64() > 59.999);
    }
}
