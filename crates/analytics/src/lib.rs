#![forbid(unsafe_code)]

//! Closed-form performance models from §5 of the paper.
//!
//! * [`wakeup`] — the wakeup-process overhead `W = 1.5·I/β` (equation
//!   before (1)) with its best/worst envelope `[I/β, 2·I/β]`.
//! * [`makespan()`] — the job makespan model, equation (1):
//!   `M̄ = 1.5·I/β + (n/N)·((s̄+r̄)/δ + p̄)`.
//! * [`efficiency()`] — equation (2): `E = n·p̄ / (M̄·N)`, plus the sweep
//!   helpers that regenerate Figures 6 and 7.
//! * [`requirements`] — the qualitative requirement coverage of Table I as
//!   machine-checkable data, used by the Table 1 harness.
//!
//! Every formula here is cross-validated against the discrete-event
//! simulation in the `oddci-core` integration tests: the simulator contains
//! none of these expressions, so agreement is evidence both are right.
//!
//! # Example
//!
//! ```
//! use oddci_analytics::{wakeup_envelope, wakeup_mean};
//! use oddci_types::{Bandwidth, DataSize};
//!
//! // A 10 MB image on a 1 Mbps carousel: W = 1.5·I/β ≈ 125.8 s.
//! let image = DataSize::from_megabytes(10);
//! let beta = Bandwidth::from_mbps(1.0);
//! let mean = wakeup_mean(image, beta);
//! assert!((mean.as_secs_f64() - 125.8).abs() < 0.1);
//!
//! // The envelope brackets it: best = I/β, worst = 2·I/β.
//! let (best, _, worst) = wakeup_envelope(image, beta);
//! assert!(best < mean && mean < worst);
//! ```

pub mod efficiency;
pub mod makespan;
pub mod planning;
pub mod requirements;
pub mod wakeup;

pub use efficiency::{efficiency, efficiency_curve, EfficiencyPoint};
pub use makespan::{makespan, makespan_integer_rounds, InstanceParams};
pub use planning::{image_budget, makespan_floor, nodes_for_deadline, nodes_for_ratio};
pub use requirements::{Requirement, Technology, TABLE1};
pub use wakeup::{wakeup_envelope, wakeup_mean};
