//! The paper's BLAST micro-benchmark dataset (§4.4, Tables II and III).
//!
//! The authors ported the NCBI toolkit to an STi7109 set-top box and ran 15
//! BLAST experiments in three categories: local processing with small
//! databases (#1–9), local with large databases (#10–12) and remote
//! processing via BLASTCL3 (#13–15), each in "in use" and "standby" modes.
//!
//! ### Data provenance
//!
//! The STB "in use" and "standby" columns below are transcribed from
//! Table II of the paper. The PC column of Table II and all of Table III
//! did not survive the source text extraction, so they are **reconstructed**:
//! PC times as `in_use / 20.6` (the paper's own aggregate ratio), and the
//! Table III remote experiments as round-trip-dominated workloads
//! consistent with the paper's description (remote processing spends its
//! time in the NCBI service, so device speed barely matters). The
//! reconstruction is flagged per-row via [`BlastExperiment::reconstructed`]
//! and called out in EXPERIMENTS.md.

use oddci_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Which BLAST deployment a test exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlastMode {
    /// `blastall` against a small local database (tests #1–9).
    LocalSmallDb,
    /// `blastall` against a large local database (tests #10–12).
    LocalLargeDb,
    /// `blastcl3` querying the remote NCBI service (tests #13–15).
    Remote,
}

/// One row of the paper's Table II / Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlastExperiment {
    /// Test number as printed in the paper (1-based).
    pub test: u32,
    /// Deployment category.
    pub mode: BlastMode,
    /// Measured STB runtime with a TV channel tuned ("in use"), seconds.
    pub stb_in_use_secs: f64,
    /// Measured STB runtime with inactive middleware ("standby"), seconds.
    pub stb_standby_secs: f64,
    /// Reference-PC runtime, seconds.
    pub pc_secs: f64,
    /// True when any column was reconstructed rather than transcribed.
    pub reconstructed: bool,
}

impl BlastExperiment {
    /// In-use / standby slowdown for this row.
    pub fn in_use_penalty(&self) -> f64 {
        self.stb_in_use_secs / self.stb_standby_secs
    }

    /// STB-in-use / PC slowdown for this row.
    pub fn stb_vs_pc(&self) -> f64 {
        self.stb_in_use_secs / self.pc_secs
    }

    /// The in-use runtime as a typed duration.
    pub fn in_use(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.stb_in_use_secs)
    }

    /// The standby runtime as a typed duration.
    pub fn standby(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.stb_standby_secs)
    }

    /// The PC runtime as a typed duration.
    pub fn pc(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.pc_secs)
    }
}

const fn row(
    test: u32,
    mode: BlastMode,
    in_use: f64,
    standby: f64,
    pc: f64,
    reconstructed: bool,
) -> BlastExperiment {
    BlastExperiment {
        test,
        mode,
        stb_in_use_secs: in_use,
        stb_standby_secs: standby,
        pc_secs: pc,
        reconstructed,
    }
}

/// Table II: `blastall` runs #1–12. In-use/standby transcribed from the
/// paper; PC reconstructed as `in_use / 20.6`.
pub const TABLE2_EXPERIMENTS: [BlastExperiment; 12] = [
    row(1, BlastMode::LocalSmallDb, 3.338, 1.356, 3.338 / 20.6, true),
    row(2, BlastMode::LocalSmallDb, 2.102, 1.333, 2.102 / 20.6, true),
    row(3, BlastMode::LocalSmallDb, 5.185, 3.208, 5.185 / 20.6, true),
    row(4, BlastMode::LocalSmallDb, 0.179, 0.117, 0.179 / 20.6, true),
    row(5, BlastMode::LocalSmallDb, 0.133, 0.116, 0.133 / 20.6, true),
    row(6, BlastMode::LocalSmallDb, 0.175, 0.116, 0.175 / 20.6, true),
    row(7, BlastMode::LocalSmallDb, 1.026, 0.612, 1.026 / 20.6, true),
    row(8, BlastMode::LocalSmallDb, 0.944, 0.610, 0.944 / 20.6, true),
    row(9, BlastMode::LocalSmallDb, 1.642, 0.990, 1.642 / 20.6, true),
    row(
        10,
        BlastMode::LocalLargeDb,
        0.177,
        0.118,
        0.177 / 20.6,
        true,
    ),
    row(
        11,
        BlastMode::LocalLargeDb,
        9314.247,
        6315.410,
        9314.247 / 20.6,
        true,
    ),
    row(
        12,
        BlastMode::LocalLargeDb,
        38858.298,
        26973.262,
        38858.298 / 20.6,
        true,
    ),
];

/// Table III: `blastcl3` remote runs #13–15, fully reconstructed
/// (round-trip-dominated: device mode changes runtimes by seconds, not
/// multiples, because the NCBI service does the work).
pub const TABLE3_EXPERIMENTS: [BlastExperiment; 3] = [
    row(13, BlastMode::Remote, 48.2, 45.1, 42.0, true),
    row(14, BlastMode::Remote, 127.6, 121.9, 115.0, true),
    row(15, BlastMode::Remote, 319.4, 308.8, 295.0, true),
];

/// All fifteen experiments in paper order.
pub fn all_experiments() -> Vec<BlastExperiment> {
    TABLE2_EXPERIMENTS
        .iter()
        .chain(TABLE3_EXPERIMENTS.iter())
        .copied()
        .collect()
}

/// Mean in-use/standby penalty over Table II — the paper reports 1.65
/// (±17% at 90% confidence).
pub fn mean_in_use_penalty() -> f64 {
    let rows = &TABLE2_EXPERIMENTS;
    rows.iter().map(|e| e.in_use_penalty()).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_12_rows_in_order() {
        assert_eq!(TABLE2_EXPERIMENTS.len(), 12);
        for (i, e) in TABLE2_EXPERIMENTS.iter().enumerate() {
            assert_eq!(e.test as usize, i + 1);
        }
    }

    #[test]
    fn standby_is_always_faster_than_in_use() {
        for e in all_experiments() {
            assert!(
                e.stb_standby_secs < e.stb_in_use_secs,
                "test #{}: standby {} !< in-use {}",
                e.test,
                e.stb_standby_secs,
                e.stb_in_use_secs
            );
        }
    }

    #[test]
    fn mean_penalty_matches_paper_within_tolerance() {
        // Paper: 1.65 with max error 17%.
        let m = mean_in_use_penalty();
        assert!((m - 1.65).abs() / 1.65 < 0.17, "mean penalty {m}");
    }

    #[test]
    fn largest_workload_runs_for_hours() {
        // Test #12 took almost 11 hours in use (38858 s).
        let e = TABLE2_EXPERIMENTS[11];
        assert!(e.in_use().as_secs_f64() / 3600.0 > 10.0);
    }

    #[test]
    fn reconstructed_rows_are_flagged() {
        assert!(all_experiments().iter().all(|e| e.reconstructed));
    }

    #[test]
    fn remote_rows_have_small_mode_sensitivity() {
        for e in &TABLE3_EXPERIMENTS {
            assert!(e.in_use_penalty() < 1.2, "remote work is service-dominated");
        }
    }

    #[test]
    fn stb_vs_pc_by_construction() {
        for e in &TABLE2_EXPERIMENTS {
            assert!((e.stb_vs_pc() - 20.6).abs() < 1e-9);
        }
    }
}
