//! The job/task data model of §5.2.1 and the suitability metric Φ.
//!
//! A job is `J = (I, n, T, R)`; a task is `t = (s, p)` with `t.s` its input
//! size in bits and `t.p` its processing time **on a reference set-top
//! box**. Parametric applications have `t.s = 0` for every task.
//!
//! ### A note on the paper's Φ formula
//!
//! The paper prints `Φ = (s+r)/(δp)` but then states that Φ=1 corresponds
//! to a 53 ms task and Φ=100,000 to a 1.5 h task at `(s+r)` = 1 Kbyte and
//! δ = 150 Kbps — which matches the **reciprocal**: `Φ = δ·p/(s+r)`,
//! compute time in units of communication time ("more compute per byte
//! moved ⇒ more suitable"). We implement the reciprocal, which is the only
//! reading consistent with every number and trend in the paper
//! (suitability *grows* with efficiency in Figure 6).

use oddci_types::{Bandwidth, DataSize, ImageId, JobId, SimDuration, TaskId};
use serde::{Deserialize, Serialize};

/// One task of an MTC job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier, unique within the job.
    pub id: TaskId,
    /// Input size `t.s` in bits (0 for parametric tasks).
    pub input_size: DataSize,
    /// Processing time `t.p` on a reference set-top box.
    pub cost: SimDuration,
    /// Size of the result this task produces.
    pub result_size: DataSize,
}

impl Task {
    /// Creates a task.
    pub fn new(id: TaskId, input_size: DataSize, cost: SimDuration, result_size: DataSize) -> Self {
        Task {
            id,
            input_size,
            cost,
            result_size,
        }
    }

    /// A parametric task (`t.s = 0`): all input is in the image/parameters.
    pub fn parametric(id: TaskId, cost: SimDuration, result_size: DataSize) -> Self {
        Task::new(id, DataSize::ZERO, cost, result_size)
    }

    /// Data moved over the direct channel for this task (`s + r`).
    pub fn bytes_moved(&self) -> DataSize {
        self.input_size + self.result_size
    }
}

/// An MTC job: image plus a bag of independent tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identifier.
    pub id: JobId,
    /// Identifier of the application image staged through the carousel.
    pub image: ImageId,
    /// Image size `I` in bits.
    pub image_size: DataSize,
    /// The task bag `T` (with result sizes folded into each task).
    pub tasks: Vec<Task>,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    /// Panics if `tasks` is empty — a job with no work is meaningless and
    /// would produce division-by-zero averages.
    pub fn new(id: JobId, image: ImageId, image_size: DataSize, tasks: Vec<Task>) -> Self {
        assert!(!tasks.is_empty(), "a job must contain at least one task");
        Job {
            id,
            image,
            image_size,
            tasks,
        }
    }

    /// Number of tasks `n`.
    pub fn task_count(&self) -> u64 {
        self.tasks.len() as u64
    }

    /// The aggregate profile (averages) the analytical model consumes.
    pub fn profile(&self) -> JobProfile {
        let n = self.tasks.len() as f64;
        let s = self.tasks.iter().map(|t| t.input_size.bits()).sum::<u64>() as f64 / n;
        let r = self.tasks.iter().map(|t| t.result_size.bits()).sum::<u64>() as f64 / n;
        let p = self.tasks.iter().map(|t| t.cost.as_secs_f64()).sum::<f64>() / n;
        JobProfile {
            image_size: self.image_size,
            task_count: self.tasks.len() as u64,
            mean_input: DataSize::from_bits(s.round() as u64),
            mean_result: DataSize::from_bits(r.round() as u64),
            mean_cost: SimDuration::from_secs_f64(p),
        }
    }

    /// Total reference compute time across all tasks.
    pub fn total_cost(&self) -> SimDuration {
        self.tasks
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.cost)
    }
}

/// Aggregate job statistics: the `(I, n, s̄, p̄, r̄)` tuple of equation (1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Image size `I`.
    pub image_size: DataSize,
    /// Task count `n`.
    pub task_count: u64,
    /// Mean task input size `s̄`.
    pub mean_input: DataSize,
    /// Mean result size `r̄`.
    pub mean_result: DataSize,
    /// Mean reference processing time `p̄`.
    pub mean_cost: SimDuration,
}

impl JobProfile {
    /// The suitability `Φ = δ·p̄ / (s̄+r̄)` of this job on channels of
    /// capacity `delta` (see the module docs for why this is the
    /// reciprocal of the paper's printed formula).
    ///
    /// Jobs that move no data (`s̄+r̄ = 0`) are infinitely suitable.
    pub fn suitability(&self, delta: Bandwidth) -> f64 {
        let moved = (self.mean_input + self.mean_result).bits() as f64;
        if moved == 0.0 {
            return f64::INFINITY;
        }
        delta.bps() * self.mean_cost.as_secs_f64() / moved
    }

    /// Builds a profile achieving suitability `phi` with the given data
    /// movement `s̄+r̄` split evenly — the knob Figures 6/7 sweep.
    pub fn from_suitability(
        image_size: DataSize,
        task_count: u64,
        moved: DataSize,
        delta: Bandwidth,
        phi: f64,
    ) -> JobProfile {
        assert!(
            phi > 0.0 && phi.is_finite(),
            "phi must be positive and finite"
        );
        assert!(
            moved.bits() > 0,
            "moved data must be positive to define phi"
        );
        let p = phi * moved.bits() as f64 / delta.bps();
        JobProfile {
            image_size,
            task_count,
            mean_input: DataSize::from_bits(moved.bits() / 2),
            mean_result: DataSize::from_bits(moved.bits() - moved.bits() / 2),
            mean_cost: SimDuration::from_secs_f64(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(
            JobId::new(1),
            ImageId::new(1),
            DataSize::from_megabytes(10),
            vec![
                Task::new(
                    TaskId::new(0),
                    DataSize::from_bytes(100),
                    SimDuration::from_secs(10),
                    DataSize::from_bytes(300),
                ),
                Task::new(
                    TaskId::new(1),
                    DataSize::from_bytes(300),
                    SimDuration::from_secs(30),
                    DataSize::from_bytes(100),
                ),
            ],
        )
    }

    #[test]
    fn profile_averages() {
        let p = job().profile();
        assert_eq!(p.task_count, 2);
        assert_eq!(p.mean_input, DataSize::from_bytes(200));
        assert_eq!(p.mean_result, DataSize::from_bytes(200));
        assert_eq!(p.mean_cost, SimDuration::from_secs(20));
    }

    #[test]
    fn paper_phi_calibration_point() {
        // (s+r) = 1 Kbyte (decimal, 8000 bits), δ = 150 Kbps, Φ = 1
        // => p = 8000/150000 ≈ 53.3 ms, the paper's "53 ms".
        let p = JobProfile::from_suitability(
            DataSize::from_megabytes(10),
            1000,
            DataSize::from_bytes(1000),
            Bandwidth::from_kbps(150.0),
            1.0,
        );
        assert!((p.mean_cost.as_secs_f64() - 0.0533).abs() < 1e-3);

        // Φ = 100,000 => ~1.48 hours, the paper's "one and a half hour".
        let p = JobProfile::from_suitability(
            DataSize::from_megabytes(10),
            1000,
            DataSize::from_bytes(1000),
            Bandwidth::from_kbps(150.0),
            100_000.0,
        );
        assert!((p.mean_cost.as_secs_f64() / 3600.0 - 1.48).abs() < 0.01);
    }

    #[test]
    fn suitability_round_trips() {
        let delta = Bandwidth::from_kbps(150.0);
        for phi in [1.0, 10.0, 1e3, 1e5] {
            let p = JobProfile::from_suitability(
                DataSize::from_megabytes(1),
                10,
                DataSize::from_bytes(1000),
                delta,
                phi,
            );
            // Costs are stored at microsecond granularity, so allow the
            // corresponding relative rounding error.
            assert!((p.suitability(delta) / phi - 1.0).abs() < 1e-4, "phi={phi}");
        }
    }

    #[test]
    fn parametric_tasks_move_only_results() {
        let t = Task::parametric(
            TaskId::new(0),
            SimDuration::from_secs(1),
            DataSize::from_bytes(64),
        );
        assert!(t.input_size.is_zero());
        assert_eq!(t.bytes_moved(), DataSize::from_bytes(64));
    }

    #[test]
    fn zero_movement_is_infinitely_suitable() {
        let p = JobProfile {
            image_size: DataSize::ZERO,
            task_count: 1,
            mean_input: DataSize::ZERO,
            mean_result: DataSize::ZERO,
            mean_cost: SimDuration::from_secs(1),
        };
        assert!(p.suitability(Bandwidth::from_kbps(150.0)).is_infinite());
    }

    #[test]
    fn total_cost_sums() {
        assert_eq!(job().total_cost(), SimDuration::from_secs(40));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_job_rejected() {
        let _ = Job::new(JobId::new(1), ImageId::new(1), DataSize::ZERO, vec![]);
    }
}
