//! Seeded synthetic job generators.
//!
//! Experiments need job bags with controlled statistics: constant-cost
//! bags reproduce the paper's homogeneous analysis; uniform and
//! exponential mixes stress the schedulers the way real MTC bags do
//! (BLAST query batches in Table II span five orders of magnitude).

use crate::job::{Job, Task};
use oddci_types::{DataSize, ImageId, JobId, SimDuration, TaskId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of a per-task quantity around a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Every task gets exactly the mean.
    Constant,
    /// Uniform on `[mean·(1-spread), mean·(1+spread)]`, `spread` in `[0,1]`.
    Uniform {
        /// Relative half-width of the interval.
        spread: f64,
    },
    /// Exponential with the given mean (heavy-ish tail).
    Exponential,
}

impl Distribution {
    fn sample(self, mean: f64, rng: &mut SmallRng) -> f64 {
        match self {
            Distribution::Constant => mean,
            Distribution::Uniform { spread } => {
                assert!((0.0..=1.0).contains(&spread), "spread must be in [0,1]");
                if spread == 0.0 {
                    mean
                } else {
                    rng.random_range(mean * (1.0 - spread)..=mean * (1.0 + spread))
                }
            }
            Distribution::Exponential => {
                let u: f64 = rng.random();
                -mean * (1.0 - u).ln()
            }
        }
    }
}

/// Generates jobs with controlled task statistics.
#[derive(Debug, Clone)]
pub struct JobGenerator {
    /// Image size `I` for generated jobs.
    pub image_size: DataSize,
    /// Mean task input size `s̄` in bits.
    pub mean_input: DataSize,
    /// Mean result size `r̄` in bits.
    pub mean_result: DataSize,
    /// Mean task cost `p̄` (reference STB time).
    pub mean_cost: SimDuration,
    /// Distribution of the task cost.
    pub cost_dist: Distribution,
    /// Distribution of input/result sizes.
    pub size_dist: Distribution,
    rng: SmallRng,
    next_job: u64,
}

impl JobGenerator {
    /// Creates a generator with the given means and distributions, seeded
    /// deterministically.
    pub fn new(
        image_size: DataSize,
        mean_input: DataSize,
        mean_result: DataSize,
        mean_cost: SimDuration,
        cost_dist: Distribution,
        size_dist: Distribution,
        seed: u64,
    ) -> Self {
        JobGenerator {
            image_size,
            mean_input,
            mean_result,
            mean_cost,
            cost_dist,
            size_dist,
            rng: SmallRng::seed_from_u64(seed),
            next_job: 0,
        }
    }

    /// A generator for homogeneous (constant) bags — the paper's model.
    pub fn homogeneous(
        image_size: DataSize,
        input: DataSize,
        result: DataSize,
        cost: SimDuration,
        seed: u64,
    ) -> Self {
        JobGenerator::new(
            image_size,
            input,
            result,
            cost,
            Distribution::Constant,
            Distribution::Constant,
            seed,
        )
    }

    /// Generates the next job with `n` tasks.
    pub fn generate(&mut self, n: u64) -> Job {
        assert!(n > 0, "jobs need at least one task");
        let id = JobId::new(self.next_job);
        self.next_job += 1;
        let tasks = (0..n)
            .map(|i| {
                let s = self
                    .size_dist
                    .sample(self.mean_input.bits() as f64, &mut self.rng);
                let r = self
                    .size_dist
                    .sample(self.mean_result.bits() as f64, &mut self.rng)
                    .max(1.0);
                let p = self
                    .cost_dist
                    .sample(self.mean_cost.as_secs_f64(), &mut self.rng)
                    .max(1e-6);
                Task::new(
                    TaskId::new(i),
                    DataSize::from_bits(s.round() as u64),
                    SimDuration::from_secs_f64(p),
                    DataSize::from_bits(r.round() as u64),
                )
            })
            .collect();
        Job::new(id, ImageId::new(id.raw()), self.image_size, tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(cost_dist: Distribution, seed: u64) -> JobGenerator {
        JobGenerator::new(
            DataSize::from_megabytes(10),
            DataSize::from_bytes(500),
            DataSize::from_bytes(500),
            SimDuration::from_secs(60),
            cost_dist,
            Distribution::Constant,
            seed,
        )
    }

    #[test]
    fn constant_bags_are_exact() {
        let mut g = base(Distribution::Constant, 1);
        let job = g.generate(100);
        assert_eq!(job.task_count(), 100);
        for t in &job.tasks {
            assert_eq!(t.cost, SimDuration::from_secs(60));
            assert_eq!(t.input_size, DataSize::from_bytes(500));
        }
        let p = job.profile();
        assert_eq!(p.mean_cost, SimDuration::from_secs(60));
    }

    #[test]
    fn uniform_bags_stay_in_bounds() {
        let mut g = base(Distribution::Uniform { spread: 0.5 }, 2);
        let job = g.generate(1000);
        for t in &job.tasks {
            let p = t.cost.as_secs_f64();
            assert!((30.0..=90.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut g = base(Distribution::Exponential, 3);
        let job = g.generate(20_000);
        let mean = job.profile().mean_cost.as_secs_f64();
        assert!((mean - 60.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn job_ids_increment() {
        let mut g = base(Distribution::Constant, 4);
        assert_eq!(g.generate(1).id, JobId::new(0));
        assert_eq!(g.generate(1).id, JobId::new(1));
    }

    #[test]
    fn same_seed_same_bag() {
        let j1 = base(Distribution::Exponential, 5).generate(50);
        let j2 = base(Distribution::Exponential, 5).generate(50);
        assert_eq!(j1, j2);
        let j3 = base(Distribution::Exponential, 6).generate(50);
        assert_ne!(j1, j3);
    }

    #[test]
    fn costs_are_never_zero() {
        let mut g = base(Distribution::Exponential, 7);
        let job = g.generate(10_000);
        assert!(job.tasks.iter().all(|t| t.cost > SimDuration::ZERO));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_task_generation_rejected() {
        let _ = base(Distribution::Constant, 8).generate(0);
    }
}
