//! A real sequence-alignment kernel: Smith–Waterman and a BLAST-style
//! seed-and-extend search.
//!
//! The paper's application is NCBI BLAST; we cannot ship that binary, so
//! the live runtime executes this kernel instead. It does genuine dynamic
//! programming work with the same computational shape (database scan +
//! local alignment), which is what matters for exercising the end-to-end
//! OddCI path with real CPU load.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Alignment scoring parameters (defaults mirror `blastn`'s +1/−3 with a
/// linear gap penalty of 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scoring {
    /// Score added per matching base.
    pub matched: i32,
    /// Score added (negative) per mismatching base.
    pub mismatch: i32,
    /// Penalty (positive number subtracted) per gap base.
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            matched: 1,
            mismatch: -3,
            gap: 5,
        }
    }
}

/// Smith–Waterman local alignment score between `a` and `b` using linear
/// memory (two DP rows).
pub fn smith_waterman(a: &[u8], b: &[u8], s: Scoring) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0i32; b.len() + 1];
    let mut curr = vec![0i32; b.len() + 1];
    let mut best = 0;
    for &ca in a {
        for j in 1..=b.len() {
            let sub = if ca == b[j - 1] {
                s.matched
            } else {
                s.mismatch
            };
            let diag = prev[j - 1] + sub;
            let up = prev[j] - s.gap;
            let left = curr[j - 1] - s.gap;
            let v = diag.max(up).max(left).max(0);
            curr[j] = v;
            best = best.max(v);
        }
        std::mem::swap(&mut prev, &mut curr);
        curr[0] = 0;
    }
    best
}

/// A hit reported by [`BlastSearch::search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hit {
    /// Offset of the seed in the database sequence.
    pub db_pos: usize,
    /// Offset of the seed in the query.
    pub query_pos: usize,
    /// Smith–Waterman score of the extended alignment window.
    pub score: i32,
}

/// A k-mer indexed database supporting BLAST-style seed-and-extend search.
#[derive(Debug, Clone)]
pub struct BlastSearch {
    db: Vec<u8>,
    k: usize,
    /// k-mer (packed 2-bit) → positions in `db`.
    index: std::collections::HashMap<u64, Vec<u32>>,
    scoring: Scoring,
}

impl BlastSearch {
    /// Indexes `db` with word length `k` (≤ 31 to pack into a u64).
    pub fn index(db: Vec<u8>, k: usize, scoring: Scoring) -> Self {
        assert!((4..=31).contains(&k), "word length must be in 4..=31");
        let mut index: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        if db.len() >= k {
            for i in 0..=db.len() - k {
                if let Some(key) = pack(&db[i..i + k]) {
                    index.entry(key).or_default().push(i as u32);
                }
            }
        }
        BlastSearch {
            db,
            k,
            index,
            scoring,
        }
    }

    /// The indexed database.
    pub fn db(&self) -> &[u8] {
        &self.db
    }

    /// Finds seeds of `query` in the database, extends each in a window of
    /// `window` bases with Smith–Waterman, and returns hits scoring at
    /// least `min_score`, best first.
    pub fn search(&self, query: &[u8], window: usize, min_score: i32) -> Vec<Hit> {
        let mut hits = Vec::new();
        if query.len() < self.k {
            return hits;
        }
        let mut seen = std::collections::HashSet::new();
        for qpos in 0..=query.len() - self.k {
            let Some(key) = pack(&query[qpos..qpos + self.k]) else {
                continue;
            };
            let Some(positions) = self.index.get(&key) else {
                continue;
            };
            for &dpos in positions {
                let dpos = dpos as usize;
                // Deduplicate overlapping seeds extending to the same region.
                let region = dpos / window.max(1);
                if !seen.insert((region, qpos / window.max(1))) {
                    continue;
                }
                let dstart = dpos.saturating_sub(window / 2);
                let dend = (dpos + self.k + window / 2).min(self.db.len());
                let qstart = qpos.saturating_sub(window / 2);
                let qend = (qpos + self.k + window / 2).min(query.len());
                let score =
                    smith_waterman(&query[qstart..qend], &self.db[dstart..dend], self.scoring);
                if score >= min_score {
                    hits.push(Hit {
                        db_pos: dpos,
                        query_pos: qpos,
                        score,
                    });
                }
            }
        }
        hits.sort_by(|x, y| y.score.cmp(&x.score).then(x.db_pos.cmp(&y.db_pos)));
        hits
    }
}

/// Packs a DNA k-mer into 2 bits per base; `None` if it contains a
/// non-ACGT byte.
fn pack(kmer: &[u8]) -> Option<u64> {
    let mut v = 0u64;
    for &b in kmer {
        let code = match b {
            b'A' | b'a' => 0,
            b'C' | b'c' => 1,
            b'G' | b'g' => 2,
            b'T' | b't' => 3,
            _ => return None,
        };
        v = (v << 2) | code;
    }
    Some(v)
}

/// Generates a random DNA sequence of `len` bases (uppercase ACGT).
pub fn random_sequence(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| b"ACGT"[rng.random_range(0..4)]).collect()
}

/// Mutates `seq` with the given per-base substitution rate — used to plant
/// findable homologs in synthetic databases.
pub fn mutate(seq: &[u8], rate: f64, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    seq.iter()
        .map(|&b| {
            if rng.random::<f64>() < rate {
                b"ACGT"[rng.random_range(0..4)]
            } else {
                b
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw_identical_sequences_score_full_length() {
        let s = b"ACGTACGTACGT";
        assert_eq!(smith_waterman(s, s, Scoring::default()), s.len() as i32);
    }

    #[test]
    fn sw_known_small_example() {
        // Classic textbook example with match=3, mismatch=-3, gap=2:
        // TGTTACGG vs GGTTGACTA has optimal local score 13.
        let s = Scoring {
            matched: 3,
            mismatch: -3,
            gap: 2,
        };
        assert_eq!(smith_waterman(b"TGTTACGG", b"GGTTGACTA", s), 13);
    }

    #[test]
    fn sw_disjoint_sequences_score_zero() {
        assert_eq!(smith_waterman(b"AAAA", b"CCCC", Scoring::default()), 0);
    }

    #[test]
    fn sw_empty_inputs() {
        assert_eq!(smith_waterman(b"", b"ACGT", Scoring::default()), 0);
        assert_eq!(smith_waterman(b"ACGT", b"", Scoring::default()), 0);
    }

    #[test]
    fn sw_is_symmetric() {
        let a = random_sequence(80, 1);
        let b = random_sequence(60, 2);
        let s = Scoring::default();
        assert_eq!(smith_waterman(&a, &b, s), smith_waterman(&b, &a, s));
    }

    #[test]
    fn sw_substring_scores_its_length() {
        let db = random_sequence(200, 3);
        let query = db[50..90].to_vec();
        assert_eq!(smith_waterman(&query, &db, Scoring::default()), 40);
    }

    #[test]
    fn search_finds_planted_homolog() {
        let db = random_sequence(20_000, 10);
        // Plant a mutated copy of a known query inside the database.
        let query = random_sequence(200, 11);
        let homolog = mutate(&query, 0.05, 12);
        let mut db2 = db.clone();
        db2.splice(5000..5000, homolog.iter().copied());

        let idx = BlastSearch::index(db2, 11, Scoring::default());
        let hits = idx.search(&query, 100, 25);
        assert!(!hits.is_empty(), "homolog should be found");
        let best = hits[0];
        assert!(
            (4900..5300).contains(&best.db_pos),
            "best hit at {} should be near the planted position",
            best.db_pos
        );
    }

    #[test]
    fn search_on_unrelated_query_finds_nothing_strong() {
        let db = random_sequence(10_000, 20);
        let query = random_sequence(100, 21);
        let idx = BlastSearch::index(db, 12, Scoring::default());
        // A 12-mer exact seed between unrelated random sequences of this
        // size is vanishingly unlikely (10^4 * 89 / 4^12 ≈ 0.05).
        let hits = idx.search(&query, 64, 30);
        assert!(hits.len() <= 1, "unexpected strong hits: {hits:?}");
    }

    #[test]
    fn short_query_yields_no_hits() {
        let idx = BlastSearch::index(random_sequence(1000, 30), 11, Scoring::default());
        assert!(idx.search(b"ACGT", 64, 1).is_empty());
    }

    #[test]
    fn pack_rejects_ambiguity_codes() {
        assert!(pack(b"ACGN").is_none());
        assert_eq!(pack(b"AAAA"), Some(0));
        assert_eq!(pack(b"ACGT"), Some(0b00_01_10_11));
    }

    #[test]
    fn random_sequence_is_deterministic() {
        assert_eq!(random_sequence(64, 5), random_sequence(64, 5));
        assert_ne!(random_sequence(64, 5), random_sequence(64, 6));
    }

    #[test]
    fn mutate_respects_rate_extremes() {
        let s = random_sequence(1000, 7);
        assert_eq!(mutate(&s, 0.0, 8), s);
        let heavy = mutate(&s, 1.0, 9);
        let same = s.iter().zip(&heavy).filter(|(a, b)| a == b).count();
        // With rate 1.0 each base is redrawn uniformly: ~25% stay equal.
        assert!((150..350).contains(&same), "same={same}");
    }
}
