#![forbid(unsafe_code)]

//! MTC workload models.
//!
//! §5.2.1 of the paper defines a job as `J = (I, n, T, R)`: an image of `I`
//! bits, `n` tasks `t = (s, p)` (input size, processing time on a reference
//! set-top box) and result sizes `R`. This crate provides:
//!
//! * [`job`] — the job/task data model, averages, and the **suitability**
//!   metric Φ that drives Figures 6 and 7;
//! * [`generator`] — seeded synthetic job generators (constant, uniform and
//!   exponential task-size/cost mixes);
//! * [`blast`] — the paper's Table II/III BLAST micro-benchmark dataset and
//!   the derived calibration targets;
//! * [`alignment`] — a real Smith–Waterman / seed-and-extend kernel, so the
//!   live runtime executes genuine sequence-alignment work instead of
//!   sleeping.
//!
//! # Example
//!
//! ```
//! use oddci_types::{DataSize, SimDuration};
//! use oddci_workload::JobGenerator;
//!
//! // A homogeneous 100-task job: 4 MB image, 500 B inputs and results,
//! // 60 s of reference-STB compute per task.
//! let mut gen = JobGenerator::homogeneous(
//!     DataSize::from_megabytes(4),
//!     DataSize::from_bytes(500),
//!     DataSize::from_bytes(500),
//!     SimDuration::from_secs(60),
//!     42,
//! );
//! let job = gen.generate(100);
//! let profile = job.profile();
//! assert_eq!(profile.task_count, 100);
//! assert_eq!(profile.mean_cost, SimDuration::from_secs(60));
//! ```

pub mod alignment;
pub mod blast;
pub mod generator;
pub mod job;

pub use blast::{BlastExperiment, BlastMode, TABLE2_EXPERIMENTS, TABLE3_EXPERIMENTS};
pub use generator::{Distribution, JobGenerator};
pub use job::{Job, JobProfile, Task};
