//! The OddCI deployment model — broadcast wakeup.
//!
//! Instantiation time is the wakeup overhead `1.5·I/β` **independent of
//! the pool size** (broadcast reaches every tuned receiver simultaneously),
//! bounded only by the channel audience.

use crate::model::DeploymentModel;
use oddci_analytics::wakeup_mean;
use oddci_types::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Calibration of the OddCI broadcast model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OddciBroadcast {
    /// Unused broadcast capacity β.
    pub beta: Bandwidth,
    /// Receivers tuned across the federation of channels (requirement I
    /// targets hundreds of millions; national DTV audiences support it).
    pub audience: u64,
}

impl Default for OddciBroadcast {
    fn default() -> Self {
        OddciBroadcast {
            beta: Bandwidth::from_mbps(1.0),
            audience: 200_000_000,
        }
    }
}

impl DeploymentModel for OddciBroadcast {
    fn name(&self) -> &'static str {
        "OddCI"
    }

    fn max_scale(&self) -> u64 {
        self.audience
    }

    fn on_demand(&self) -> bool {
        true
    }

    fn efficient_setup(&self) -> bool {
        true // one carousel injection configures everyone
    }

    fn instantiation_time(&self, nodes: u64, image: DataSize) -> Option<SimDuration> {
        if nodes == 0 || nodes > self.audience {
            return None;
        }
        Some(wakeup_mean(image, self.beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_is_scale_free() {
        let o = OddciBroadcast::default();
        let img = DataSize::from_megabytes(10);
        let t10 = o.instantiation_time(10, img).unwrap();
        let t100m = o.instantiation_time(100_000_000, img).unwrap();
        assert_eq!(t10, t100m, "broadcast reaches everyone at once");
    }

    #[test]
    fn matches_the_wakeup_law() {
        let o = OddciBroadcast::default();
        let img = DataSize::from_megabytes(8);
        let t = o.instantiation_time(1_000_000, img).unwrap();
        // 1.5 × 67.1 s ≈ 100.7 s.
        assert!((t.as_secs_f64() - 100.663296).abs() < 1e-3);
    }

    #[test]
    fn bounded_by_audience() {
        let o = OddciBroadcast::default();
        assert!(o
            .instantiation_time(200_000_001, DataSize::from_megabytes(1))
            .is_none());
    }

    #[test]
    fn requirement_flags() {
        let o = OddciBroadcast::default();
        assert!(o.on_demand());
        assert!(o.efficient_setup());
        assert!(o.max_scale() >= 100_000_000);
    }
}
