//! IaaS deployment model (EC2-class cloud, 2009 vintage).
//!
//! §2: IaaS offers on-demand instantiation and efficient setup, but
//! "current implementations allow only a few virtual machines to be
//! automatically instantiated \[and\] concurrent access to the shared
//! storage by millions of clients would certainly produce a bottleneck on
//! the storage server". We model a bounded VM-boot rate plus an image-
//! staging phase limited by shared storage bandwidth.

use crate::model::DeploymentModel;
use oddci_types::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Calibration of the IaaS model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IaasProvider {
    /// Boot latency of one VM.
    pub boot_latency: SimDuration,
    /// VMs the control plane can launch per second.
    pub boot_rate: f64,
    /// Aggregate shared-storage bandwidth serving image reads.
    pub storage_bandwidth: Bandwidth,
    /// Account/provider instance ceiling.
    pub max_vms: u64,
}

impl Default for IaasProvider {
    fn default() -> Self {
        IaasProvider {
            boot_latency: SimDuration::from_secs(90),
            boot_rate: 10.0,
            storage_bandwidth: Bandwidth::from_mbps(10_000.0),
            max_vms: 20_000,
        }
    }
}

impl DeploymentModel for IaasProvider {
    fn name(&self) -> &'static str {
        "IaaS"
    }

    fn max_scale(&self) -> u64 {
        self.max_vms
    }

    fn on_demand(&self) -> bool {
        true
    }

    fn efficient_setup(&self) -> bool {
        true // one image, API-driven provisioning
    }

    fn instantiation_time(&self, nodes: u64, image: DataSize) -> Option<SimDuration> {
        if nodes == 0 || nodes > self.max_vms {
            return None;
        }
        let launch = SimDuration::from_secs_f64(nodes as f64 / self.boot_rate);
        // Every VM streams the image from shared storage.
        let staging =
            DataSize::from_bits(image.bits() * nodes).transfer_time(self.storage_bandwidth);
        Some(self.boot_latency + launch + staging)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleets_boot_in_minutes() {
        let c = IaasProvider::default();
        let t = c
            .instantiation_time(100, DataSize::from_megabytes(10))
            .unwrap();
        assert!(t < SimDuration::from_mins(5), "{t}");
    }

    #[test]
    fn ceiling_enforced() {
        let c = IaasProvider::default();
        assert!(c
            .instantiation_time(20_000, DataSize::from_megabytes(10))
            .is_some());
        assert!(c
            .instantiation_time(20_001, DataSize::from_megabytes(10))
            .is_none());
    }

    #[test]
    fn storage_bottleneck_shows_at_scale() {
        let c = IaasProvider::default();
        let img = DataSize::from_megabytes(10);
        let t_small = c.instantiation_time(100, img).unwrap();
        let t_large = c.instantiation_time(20_000, img).unwrap();
        // 200× nodes, staging + launch scale linearly past the fixed boot latency.
        assert!(t_large.as_secs_f64() > t_small.as_secs_f64() * 10.0);
    }

    #[test]
    fn requirement_flags() {
        let c = IaasProvider::default();
        assert!(c.on_demand());
        assert!(c.efficient_setup());
        assert!(c.max_scale() < 100_000_000);
    }
}
