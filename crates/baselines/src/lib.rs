#![forbid(unsafe_code)]

//! Baseline DCI deployment models for the Table I comparison.
//!
//! §2 of the paper argues that voluntary computing, desktop grids and IaaS
//! each miss at least one of the three requirements (extreme scale,
//! on-demand instantiation, efficient setup). This crate turns that
//! qualitative argument into quantitative *instantiation-time* models, so
//! the Table 1 harness can show, for each technology, how long assembling
//! a pool of N nodes takes — and where it becomes impossible.
//!
//! The numbers parameterizing each model are stated inline with their
//! provenance; they are order-of-magnitude calibrations, which is all the
//! comparison needs (the paper's Table I is itself qualitative).
//!
//! # Example
//!
//! ```
//! use oddci_baselines::{all_models, standard_image, DeploymentModel};
//!
//! // How long does each technology take to assemble 10 000 nodes?
//! for model in all_models() {
//!     match model.instantiation_time(10_000, standard_image()) {
//!         Some(t) => println!("{:<20} {t}", model.name()),
//!         None => println!("{:<20} unreachable at this scale", model.name()),
//!     }
//! }
//! ```

pub mod desktop_grid;
pub mod iaas;
pub mod model;
pub mod oddci;
pub mod voluntary;

pub use desktop_grid::DesktopGrid;
pub use iaas::IaasProvider;
pub use model::{DeploymentModel, InstantiationOutcome};
pub use oddci::OddciBroadcast;
pub use voluntary::VoluntaryComputing;

use oddci_types::DataSize;

/// All four models with their default calibrations, in Table I order.
pub fn all_models() -> Vec<Box<dyn DeploymentModel>> {
    vec![
        Box::new(VoluntaryComputing::default()),
        Box::new(DesktopGrid::default()),
        Box::new(IaasProvider::default()),
        Box::new(OddciBroadcast::default()),
    ]
}

/// The standard comparison scenario: a 10 MB application image.
pub fn standard_image() -> DataSize {
    DataSize::from_megabytes(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_models_in_table_order() {
        let models = all_models();
        assert_eq!(models.len(), 4);
        assert_eq!(models[0].name(), "Voluntary computing");
        assert_eq!(models[3].name(), "OddCI");
    }

    #[test]
    fn only_oddci_and_voluntary_reach_extreme_scale() {
        for m in all_models() {
            let reaches = m.max_scale() >= 100_000_000;
            let expect = matches!(m.name(), "OddCI" | "Voluntary computing");
            assert_eq!(reaches, expect, "{}", m.name());
        }
    }

    #[test]
    fn oddci_is_fastest_at_scale() {
        let image = standard_image();
        let n = 1_000_000;
        let oddci = OddciBroadcast::default()
            .instantiation_time(n, image)
            .expect("oddci reaches 1M");
        for m in all_models() {
            if m.name() == "OddCI" {
                continue;
            }
            // None = cannot reach 1M at all, which also counts as "slower".
            if let Some(t) = m.instantiation_time(n, image) {
                assert!(t > oddci, "{} should be slower at 1M nodes", m.name());
            }
        }
    }
}
