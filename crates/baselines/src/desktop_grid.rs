//! Desktop-grid deployment model (Condor / OurGrid family).
//!
//! §2: desktop grids offer on-demand instantiation but "their main
//! limitations are their slow setup and relatively low scalability. The
//! customization of the processing environment is time consuming, since
//! each resource needs to be individually configured". Scale is capped by
//! cross-domain security/administration friction; the paper notes the
//! largest deployments feature a few thousand machines and that more than
//! a few dozen thousand is unlikely.

use crate::model::DeploymentModel;
use oddci_types::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Calibration of the desktop-grid model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesktopGrid {
    /// Per-node configuration effort (admin touches every machine; a few
    /// minutes each, amortized over scripted rollouts).
    pub per_node_setup: SimDuration,
    /// Concurrent administrators / rollout streams.
    pub parallel_streams: u64,
    /// Staging server uplink shared by all nodes fetching the image.
    pub staging_bandwidth: Bandwidth,
    /// Practical ceiling (§2: "a few dozens of thousands").
    pub max_nodes: u64,
}

impl Default for DesktopGrid {
    fn default() -> Self {
        DesktopGrid {
            per_node_setup: SimDuration::from_secs(120),
            parallel_streams: 20,
            staging_bandwidth: Bandwidth::from_mbps(1000.0),
            max_nodes: 50_000,
        }
    }
}

impl DeploymentModel for DesktopGrid {
    fn name(&self) -> &'static str {
        "Desktop grid"
    }

    fn max_scale(&self) -> u64 {
        self.max_nodes
    }

    fn on_demand(&self) -> bool {
        true
    }

    fn efficient_setup(&self) -> bool {
        false // per-node configuration
    }

    fn instantiation_time(&self, nodes: u64, image: DataSize) -> Option<SimDuration> {
        if nodes == 0 || nodes > self.max_nodes {
            return None;
        }
        // Per-node configuration, parallelized over admin streams.
        let config = self.per_node_setup * nodes.div_ceil(self.parallel_streams);
        // Unicast image staging: every node pulls its own copy through the
        // shared staging uplink.
        let staging =
            DataSize::from_bits(image.bits() * nodes).transfer_time(self.staging_bandwidth);
        Some(config + staging)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_scales_linearly_with_nodes() {
        let g = DesktopGrid::default();
        let image = DataSize::from_megabytes(10);
        let t100 = g.instantiation_time(100, image).unwrap();
        let t1000 = g.instantiation_time(1000, image).unwrap();
        let ratio = t1000.as_secs_f64() / t100.as_secs_f64();
        assert!((9.0..11.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn capped_at_max_nodes() {
        let g = DesktopGrid::default();
        let image = DataSize::from_megabytes(10);
        assert!(g.instantiation_time(50_000, image).is_some());
        assert!(g.instantiation_time(50_001, image).is_none());
        assert!(g.instantiation_time(0, image).is_none());
    }

    #[test]
    fn unicast_staging_grows_with_image_size() {
        let g = DesktopGrid::default();
        let small = g
            .instantiation_time(10_000, DataSize::from_megabytes(1))
            .unwrap();
        let big = g
            .instantiation_time(10_000, DataSize::from_megabytes(100))
            .unwrap();
        // The staging delta is 99 MB × 10k nodes over 1 Gbps ≈ 2.2 hours.
        assert!(big.as_secs_f64() - small.as_secs_f64() > 2.0 * 3600.0);
    }

    #[test]
    fn thousand_node_grid_takes_hours() {
        // Sanity-check the calibration: 1000 nodes ≈ (1000/20)*120 s config
        // + staging ≈ 100 min + 84 s — clearly hours-scale, as §2 claims.
        let g = DesktopGrid::default();
        let t = g
            .instantiation_time(1000, DataSize::from_megabytes(10))
            .unwrap();
        assert!(
            t > SimDuration::from_mins(60) && t < SimDuration::from_mins(600),
            "{t}"
        );
    }
}
