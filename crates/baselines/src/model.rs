//! The deployment-model abstraction shared by all four technologies.

use oddci_types::{DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Result of asking a technology to assemble a pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InstantiationOutcome {
    /// Pool assembled in the given time.
    Ready {
        /// Wall time from request to a fully provisioned pool.
        time: SimDuration,
    },
    /// The technology cannot reach this scale at all.
    Unreachable {
        /// Its practical ceiling.
        max_scale: u64,
    },
}

/// A technology's deployment behaviour.
pub trait DeploymentModel {
    /// Display name (Table I row label).
    fn name(&self) -> &'static str;

    /// Practical upper bound on pool size.
    fn max_scale(&self) -> u64;

    /// Whether pools can be assembled and released per-application on
    /// demand (requirement II).
    fn on_demand(&self) -> bool;

    /// Whether setup needs no per-node / per-volunteer intervention
    /// (requirement III).
    fn efficient_setup(&self) -> bool;

    /// Time to assemble a pool of `nodes` running an application image of
    /// size `image`, or `None` beyond [`max_scale`](Self::max_scale).
    fn instantiation_time(&self, nodes: u64, image: DataSize) -> Option<SimDuration>;

    /// Convenience wrapper returning a typed outcome.
    fn instantiate(&self, nodes: u64, image: DataSize) -> InstantiationOutcome {
        match self.instantiation_time(nodes, image) {
            Some(time) => InstantiationOutcome::Ready { time },
            None => InstantiationOutcome::Unreachable {
                max_scale: self.max_scale(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl DeploymentModel for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn max_scale(&self) -> u64 {
            10
        }
        fn on_demand(&self) -> bool {
            true
        }
        fn efficient_setup(&self) -> bool {
            true
        }
        fn instantiation_time(&self, nodes: u64, _image: DataSize) -> Option<SimDuration> {
            (nodes <= 10).then(|| SimDuration::from_secs(nodes))
        }
    }

    #[test]
    fn instantiate_wraps_option() {
        let m = Fixed;
        assert_eq!(
            m.instantiate(5, DataSize::ZERO),
            InstantiationOutcome::Ready {
                time: SimDuration::from_secs(5)
            }
        );
        assert_eq!(
            m.instantiate(11, DataSize::ZERO),
            InstantiationOutcome::Unreachable { max_scale: 10 }
        );
    }
}
