//! Voluntary-computing deployment model (SETI@home / BOINC family).
//!
//! §2: voluntary computing reaches millions of nodes, but growth is
//! recruitment-driven — "slow and out of the control of the infrastructure
//! provider" — and each new application needs its own campaign; resources
//! attached to one project are not available to others without explicit
//! volunteer action. We model pool growth as a saturating exponential
//! (classic adoption curve) on top of a fixed campaign lead time.

use crate::model::DeploymentModel;
use oddci_types::{DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Calibration of the voluntary-computing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoluntaryComputing {
    /// Preparation before the first volunteer arrives: porting to the
    /// platform, publicity, web presence (the paper calls this significant
    /// effort; weeks is generous to the baseline).
    pub campaign_lead: SimDuration,
    /// Volunteer population the project saturates at.
    pub capacity: u64,
    /// Adoption time constant τ of `N(t) = capacity·(1 − e^(−t/τ))`
    /// (SETI@home took months to reach its first million).
    pub adoption_tau: SimDuration,
}

impl Default for VoluntaryComputing {
    fn default() -> Self {
        VoluntaryComputing {
            campaign_lead: SimDuration::from_secs(14 * 24 * 3600), // two weeks
            capacity: 300_000_000,
            adoption_tau: SimDuration::from_secs(90 * 24 * 3600), // ~3 months
        }
    }
}

impl DeploymentModel for VoluntaryComputing {
    fn name(&self) -> &'static str {
        "Voluntary computing"
    }

    fn max_scale(&self) -> u64 {
        self.capacity
    }

    fn on_demand(&self) -> bool {
        false // pools cannot be assembled/released per application
    }

    fn efficient_setup(&self) -> bool {
        false // per-volunteer install and attach
    }

    fn instantiation_time(&self, nodes: u64, _image: DataSize) -> Option<SimDuration> {
        if nodes == 0 || nodes >= self.capacity {
            return None;
        }
        // Invert the adoption curve: t = −τ·ln(1 − N/capacity).
        let frac = nodes as f64 / self.capacity as f64;
        let t = -self.adoption_tau.as_secs_f64() * (1.0 - frac).ln();
        Some(self.campaign_lead + SimDuration::from_secs_f64(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pools_still_pay_the_campaign_lead() {
        let v = VoluntaryComputing::default();
        let t = v.instantiation_time(100, DataSize::ZERO).unwrap();
        assert!(t >= v.campaign_lead);
    }

    #[test]
    fn growth_is_saturating() {
        let v = VoluntaryComputing::default();
        let t1m = v.instantiation_time(1_000_000, DataSize::ZERO).unwrap();
        let t100m = v.instantiation_time(100_000_000, DataSize::ZERO).unwrap();
        // 100× the nodes costs far more than 100× near saturation... but at
        // the low end the curve is near-linear; both must at least be
        // months apart.
        assert!(t100m.as_secs_f64() - t1m.as_secs_f64() > 20.0 * 24.0 * 3600.0);
    }

    #[test]
    fn capacity_is_unreachable() {
        let v = VoluntaryComputing::default();
        assert!(v.instantiation_time(v.capacity, DataSize::ZERO).is_none());
        assert!(v
            .instantiation_time(v.capacity - 1, DataSize::ZERO)
            .is_some());
    }

    #[test]
    fn million_nodes_takes_weeks_not_seconds() {
        let v = VoluntaryComputing::default();
        let t = v.instantiation_time(1_000_000, DataSize::ZERO).unwrap();
        assert!(t.as_secs_f64() > 14.0 * 24.0 * 3600.0);
    }

    #[test]
    fn requirement_flags() {
        let v = VoluntaryComputing::default();
        assert!(!v.on_demand());
        assert!(!v.efficient_setup());
        assert!(v.max_scale() >= 100_000_000);
    }
}
