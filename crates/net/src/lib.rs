#![forbid(unsafe_code)]

//! The direct channels: individual full-duplex point-to-point links between
//! each processing node and the Controller / Backend (§3.1, Figure 1).
//!
//! In the paper's model every set-top box has an ADSL-class uplink of
//! capacity δ (150 Kbps is the stated lower bound). Tasks, results and
//! heartbeats all ride these links; the broadcast channel is only used for
//! control messages and image distribution.
//!
//! * [`link`] — one node's link: serial use, propagation latency, loss with
//!   retransmission.
//! * [`server`] — the shared *receiving* side (Controller or Backend): an
//!   M/D/1-style capacity model that turns aggregate message rates into
//!   utilization and queueing delay, used to study when heartbeats would
//!   crush the Controller (§3.2's footnote 3, our experiment X2).

pub mod link;
pub mod server;

pub use link::DirectLink;
pub use server::ServerCapacity;
