#![forbid(unsafe_code)]

//! The direct channels: individual full-duplex point-to-point links between
//! each processing node and the Controller / Backend (§3.1, Figure 1).
//!
//! In the paper's model every set-top box has an ADSL-class uplink of
//! capacity δ (150 Kbps is the stated lower bound). Tasks, results and
//! heartbeats all ride these links; the broadcast channel is only used for
//! control messages and image distribution.
//!
//! * [`link`] — one node's link: serial use, propagation latency, loss with
//!   retransmission.
//! * [`server`] — the shared *receiving* side (Controller or Backend): an
//!   M/D/1-style capacity model that turns aggregate message rates into
//!   utilization and queueing delay, used to study when heartbeats would
//!   crush the Controller (§3.2's footnote 3, our experiment X2).
//!
//! # Example
//!
//! ```
//! use oddci_net::ServerCapacity;
//! use oddci_types::{Bandwidth, SimDuration};
//!
//! // A Controller that consolidates 10 000 msgs/s on a 100 Mbps ingress.
//! let server = ServerCapacity::new(10_000.0, Bandwidth::from_mbps(100.0));
//!
//! // 60 000 nodes heartbeating every 15 s arrive at 4 000 msgs/s:
//! let rate = ServerCapacity::arrival_rate(60_000, SimDuration::from_secs(15));
//! assert!(server.utilization(rate) < 1.0);
//! assert!(server.mean_queue_delay(rate).is_some());
//! ```

pub mod link;
pub mod server;

pub use link::DirectLink;
pub use server::ServerCapacity;
