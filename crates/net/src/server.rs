//! Capacity model for the shared receiving side (Controller / Backend).
//!
//! §3.2, footnote 3: the paper defers the question of the Controller
//! becoming a heartbeat bottleneck to future work, but its sizing matters
//! for experiment X2. We model the Controller's ingest as an M/D/1 queue:
//! Poisson arrivals (millions of independent PNAs with unsynchronized
//! heartbeat phases are well approximated by a Poisson stream), constant
//! per-message service time.

use oddci_types::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Ingest capacity of a Controller or Backend endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerCapacity {
    /// Messages the server can process per second (CPU bound).
    pub service_rate_msgs: f64,
    /// Aggregate access-link capacity.
    pub ingress: Bandwidth,
}

impl ServerCapacity {
    /// Creates a capacity description.
    pub fn new(service_rate_msgs: f64, ingress: Bandwidth) -> Self {
        assert!(service_rate_msgs > 0.0, "service rate must be positive");
        ServerCapacity {
            service_rate_msgs,
            ingress,
        }
    }

    /// Aggregate message arrival rate for `nodes` each sending one message
    /// every `interval`.
    pub fn arrival_rate(nodes: u64, interval: SimDuration) -> f64 {
        assert!(!interval.is_zero(), "interval must be positive");
        nodes as f64 / interval.as_secs_f64()
    }

    /// CPU utilization ρ for the given arrival rate; > 1 means overload.
    pub fn utilization(&self, arrival_rate: f64) -> f64 {
        arrival_rate / self.service_rate_msgs
    }

    /// Link utilization for messages of `msg_size` at `arrival_rate`.
    pub fn link_utilization(&self, arrival_rate: f64, msg_size: DataSize) -> f64 {
        arrival_rate * msg_size.bits() as f64 / self.ingress.bps()
    }

    /// Mean waiting time in queue for an M/D/1 system at the given arrival
    /// rate: `Wq = ρ / (2·μ·(1-ρ))`. Returns `None` when the system is
    /// unstable (ρ ≥ 1).
    pub fn mean_queue_delay(&self, arrival_rate: f64) -> Option<SimDuration> {
        let rho = self.utilization(arrival_rate);
        if rho >= 1.0 {
            return None;
        }
        let wq = rho / (2.0 * self.service_rate_msgs * (1.0 - rho));
        Some(SimDuration::from_secs_f64(wq))
    }

    /// Mean total sojourn (queue + service). `None` when unstable.
    pub fn mean_response_time(&self, arrival_rate: f64) -> Option<SimDuration> {
        self.mean_queue_delay(arrival_rate)
            .map(|wq| wq + SimDuration::from_secs_f64(1.0 / self.service_rate_msgs))
    }

    /// The largest node population this server sustains (ρ < `target_rho`)
    /// at one message per `interval` per node.
    pub fn max_nodes(&self, interval: SimDuration, target_rho: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&target_rho),
            "target utilization in [0,1]"
        );
        (self.service_rate_msgs * target_rho * interval.as_secs_f64()).floor() as u64
    }

    /// The shortest heartbeat interval sustainable for `nodes` at
    /// `target_rho` utilization — the knob §3.2 says the Controller tunes
    /// ("the PNA must be appropriately configured by the Controller").
    pub fn min_interval(&self, nodes: u64, target_rho: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&target_rho) && target_rho > 0.0);
        SimDuration::from_secs_f64(nodes as f64 / (self.service_rate_msgs * target_rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ServerCapacity {
        ServerCapacity::new(10_000.0, Bandwidth::from_mbps(100.0))
    }

    #[test]
    fn arrival_rate_scales_with_population() {
        let r = ServerCapacity::arrival_rate(600_000, SimDuration::from_secs(60));
        assert!((r - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_stability() {
        let s = server();
        assert!((s.utilization(5_000.0) - 0.5).abs() < 1e-12);
        assert!(s.mean_queue_delay(5_000.0).is_some());
        assert!(s.mean_queue_delay(10_000.0).is_none(), "rho=1 unstable");
        assert!(s.mean_queue_delay(20_000.0).is_none());
    }

    #[test]
    fn md1_delay_formula() {
        let s = server();
        // rho = 0.5, mu = 1e4: Wq = 0.5 / (2*1e4*0.5) = 50 µs.
        let wq = s.mean_queue_delay(5_000.0).unwrap();
        assert_eq!(wq, SimDuration::from_micros(50));
        // Response = Wq + 1/mu = 50 + 100 = 150 µs.
        assert_eq!(
            s.mean_response_time(5_000.0).unwrap(),
            SimDuration::from_micros(150)
        );
    }

    #[test]
    fn queue_delay_explodes_near_saturation() {
        let s = server();
        let low = s.mean_queue_delay(1_000.0).unwrap();
        let high = s.mean_queue_delay(9_900.0).unwrap();
        assert!(high.as_secs_f64() > low.as_secs_f64() * 50.0);
    }

    #[test]
    fn sizing_inversions_are_consistent() {
        let s = server();
        let interval = SimDuration::from_secs(60);
        let n = s.max_nodes(interval, 0.8);
        assert_eq!(n, 480_000);
        // Inverting: the min interval for that population at the same rho
        // is the original interval.
        let i = s.min_interval(n, 0.8);
        assert!((i.as_secs_f64() - 60.0).abs() < 1e-3);
    }

    #[test]
    fn link_utilization() {
        let s = server();
        // 10k msgs/s * 128 B = 10.24 Mbit/s over 100 Mbps = 0.1024.
        let u = s.link_utilization(10_000.0, DataSize::from_bytes(128));
        assert!((u - 0.1024).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_rate_rejected() {
        let _ = ServerCapacity::new(0.0, Bandwidth::from_mbps(1.0));
    }
}
