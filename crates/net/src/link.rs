//! One node's direct channel.
//!
//! The link is full-duplex: the upstream (node → Controller/Backend) and
//! downstream (→ node) directions have independent capacity δ and are each
//! used serially — a node fetching a task input cannot simultaneously fetch
//! another input, but can be uploading a result meanwhile. Transfers that
//! hit loss are retransmitted whole after a timeout (task/result payloads
//! are single application-level messages in this model).

use oddci_types::{Bandwidth, DataSize, DirectChannelConfig, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Transfer direction over a [`DirectLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Node → Controller/Backend.
    Up,
    /// Controller/Backend → node.
    Down,
}

/// One node's full-duplex point-to-point channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectLink {
    config: DirectChannelConfig,
    busy_until_up: SimTime,
    busy_until_down: SimTime,
    /// Total payload bits moved (both directions), for accounting.
    pub bits_transferred: u64,
    /// Number of retransmissions suffered, for accounting.
    pub retransmissions: u64,
}

impl DirectLink {
    /// Creates an idle link with the given configuration.
    pub fn new(config: DirectChannelConfig) -> Self {
        config.validate().expect("valid direct channel config");
        DirectLink {
            config,
            busy_until_up: SimTime::ZERO,
            busy_until_down: SimTime::ZERO,
            bits_transferred: 0,
            retransmissions: 0,
        }
    }

    /// Link capacity δ.
    pub fn capacity(&self) -> Bandwidth {
        self.config.delta
    }

    /// The configuration this link was built with.
    pub fn config(&self) -> &DirectChannelConfig {
        &self.config
    }

    /// Schedules a transfer of `size` starting no earlier than `now` and
    /// returns its completion instant. The direction stays busy until then.
    ///
    /// Loss is modelled per attempt: with probability `loss_rate` the whole
    /// message is lost and retransmitted after a timeout of one RTT.
    pub fn transfer<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size: DataSize,
        dir: Direction,
        rng: &mut R,
    ) -> SimTime {
        let busy = match dir {
            Direction::Up => &mut self.busy_until_up,
            Direction::Down => &mut self.busy_until_down,
        };
        let start = if *busy > now { *busy } else { now };
        let one_attempt = self.config.latency + size.transfer_time(self.config.delta);
        let mut finish = start + one_attempt;
        // Geometric retransmissions.
        if self.config.loss_rate > 0.0 {
            while rng.random::<f64>() < self.config.loss_rate {
                self.retransmissions += 1;
                // Loss detected after a retransmission timeout of 2 RTTs,
                // then the attempt repeats.
                finish = finish + self.config.latency * 4 + one_attempt;
            }
        }
        *busy = finish;
        self.bits_transferred += size.bits();
        finish
    }

    /// Completion time of a loss-free transfer starting exactly at `now` on
    /// an idle link — the closed-form the analytical model uses.
    pub fn ideal_transfer_time(&self, size: DataSize) -> SimDuration {
        self.config.latency + size.transfer_time(self.config.delta)
    }

    /// When the given direction becomes free.
    pub fn busy_until(&self, dir: Direction) -> SimTime {
        match dir {
            Direction::Up => self.busy_until_up,
            Direction::Down => self.busy_until_down,
        }
    }

    /// Clears queued work (node power-off: in-flight transfers are lost).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until_up = now;
        self.busy_until_down = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lossless() -> DirectLink {
        DirectLink::new(DirectChannelConfig {
            delta: Bandwidth::from_kbps(150.0),
            latency: SimDuration::from_millis(50),
            loss_rate: 0.0,
        })
    }

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        // 1 KB = 8192 bits over 150 kbps ≈ 54.613 ms, plus 50 ms latency.
        let done = link.transfer(
            SimTime::ZERO,
            DataSize::from_kilobytes(1),
            Direction::Up,
            &mut rng,
        );
        let expect = 0.050 + 8192.0 / 150_000.0;
        assert!((done.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn serial_use_queues_transfers() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        let first = link.transfer(SimTime::ZERO, DataSize::from_kilobytes(10), Direction::Up, &mut rng);
        let second = link.transfer(SimTime::ZERO, DataSize::from_kilobytes(10), Direction::Up, &mut rng);
        assert_eq!(second - first, first - SimTime::ZERO, "second waits for first");
    }

    #[test]
    fn directions_are_independent() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        let up = link.transfer(SimTime::ZERO, DataSize::from_kilobytes(10), Direction::Up, &mut rng);
        let down = link.transfer(SimTime::ZERO, DataSize::from_kilobytes(10), Direction::Down, &mut rng);
        assert_eq!(up, down, "full duplex: no cross-direction queueing");
    }

    #[test]
    fn loss_inflates_completion() {
        let cfg = DirectChannelConfig {
            delta: Bandwidth::from_kbps(150.0),
            latency: SimDuration::from_millis(50),
            loss_rate: 0.5,
        };
        let mut lossy = DirectLink::new(cfg);
        let mut rng = SmallRng::seed_from_u64(7);
        let size = DataSize::from_kilobytes(4);
        let mut total_lossy = 0.0;
        let n = 2000;
        for i in 0..n {
            let t0 = SimTime::from_secs(i * 100);
            lossy.reset(t0);
            let done = lossy.transfer(t0, size, Direction::Up, &mut rng);
            total_lossy += (done - t0).as_secs_f64();
        }
        let mean_lossy = total_lossy / n as f64;
        let ideal = lossless().ideal_transfer_time(size).as_secs_f64();
        // E[attempts] = 1/(1-0.5) = 2; plus timeout overhead -> clearly >1.5x.
        assert!(mean_lossy > ideal * 1.5, "mean={mean_lossy} ideal={ideal}");
        assert!(lossy.retransmissions > 0);
    }

    #[test]
    fn accounting_tracks_bits() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        link.transfer(SimTime::ZERO, DataSize::from_bytes(100), Direction::Up, &mut rng);
        link.transfer(SimTime::ZERO, DataSize::from_bytes(50), Direction::Down, &mut rng);
        assert_eq!(link.bits_transferred, 150 * 8);
    }

    #[test]
    fn reset_clears_queue() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        link.transfer(SimTime::ZERO, DataSize::from_megabytes(1), Direction::Up, &mut rng);
        assert!(link.busy_until(Direction::Up) > SimTime::from_secs(10));
        link.reset(SimTime::from_secs(1));
        assert_eq!(link.busy_until(Direction::Up), SimTime::from_secs(1));
    }

    #[test]
    fn transfer_starting_later_respects_now() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        let done =
            link.transfer(SimTime::from_secs(100), DataSize::from_bytes(1), Direction::Up, &mut rng);
        assert!(done > SimTime::from_secs(100));
    }
}
